//! Access-time-interval (ATI) extraction.
//!
//! The ATI is the paper's central metric: the elapsed time between two
//! adjacent accesses (reads/writes) to the same device memory block. Fig. 3
//! studies the ATI distribution; Fig. 4 pairs every ATI with its block's
//! size to find the swappable outliers.

use pinpoint_trace::{BlockId, EventKind, MemoryKind, Trace};

/// One access-time interval of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtiRecord {
    /// The block the interval belongs to.
    pub block: BlockId,
    /// Block size in bytes.
    pub size: usize,
    /// Content tag of the block.
    pub mem_kind: MemoryKind,
    /// The interval, in nanoseconds.
    pub interval_ns: u64,
    /// Time of the interval's closing access (x-position in Fig. 4).
    pub end_time_ns: u64,
    /// Kind of the closing access (read or write) — the "behavior" the
    /// paper's Fig. 3b violins split by.
    pub closing_kind: EventKind,
}

/// All ATIs of a trace, in closing-access time order.
///
/// The sorted interval values are computed once at construction, so the
/// distribution queries ([`AtiDataset::fraction_at_or_below`],
/// [`AtiDataset::sorted_intervals_ns`], [`AtiDataset::cdf`]) never re-scan
/// or re-sort the records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AtiDataset {
    records: Vec<AtiRecord>,
    /// Interval values in ascending order, built once at construction.
    sorted_intervals: Vec<u64>,
}

impl AtiDataset {
    /// Extracts every ATI from a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut records = Vec::new();
        for lt in trace.lifetimes().values() {
            for w in lt.accesses.windows(2) {
                records.push(AtiRecord {
                    block: lt.block,
                    size: lt.size,
                    mem_kind: lt.mem_kind,
                    interval_ns: w[1].0 - w[0].0,
                    end_time_ns: w[1].0,
                    closing_kind: w[1].1,
                });
            }
        }
        records.sort_by_key(|r| (r.end_time_ns, r.block));
        Self::from_records(records)
    }

    /// Builds a dataset around pre-extracted records, computing the sorted
    /// interval cache in one pass.
    pub(crate) fn from_records(records: Vec<AtiRecord>) -> Self {
        let mut sorted_intervals: Vec<u64> = records.iter().map(|r| r.interval_ns).collect();
        sorted_intervals.sort_unstable();
        AtiDataset {
            records,
            sorted_intervals,
        }
    }

    /// All records, ordered by closing-access time.
    pub fn records(&self) -> &[AtiRecord] {
        &self.records
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no intervals were observed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The interval values only, in record order.
    pub fn intervals_ns(&self) -> Vec<u64> {
        self.records.iter().map(|r| r.interval_ns).collect()
    }

    /// The interval values in ascending order, from the construction-time
    /// cache — no per-call clone or sort.
    pub fn sorted_intervals_ns(&self) -> &[u64] {
        &self.sorted_intervals
    }

    /// The interval CDF, reusing the construction-time sorted cache.
    pub fn cdf(&self) -> crate::cdf::EmpiricalCdf {
        crate::cdf::EmpiricalCdf::from_sorted(self.sorted_intervals.clone())
    }

    /// Fraction of intervals at or below `threshold_ns` (the paper's
    /// "90 % of ATIs are below 25 µs" style statement). Binary search on
    /// the sorted cache.
    pub fn fraction_at_or_below(&self, threshold_ns: u64) -> f64 {
        if self.sorted_intervals.is_empty() {
            return 0.0;
        }
        let n = self
            .sorted_intervals
            .partition_point(|&v| v <= threshold_ns);
        n as f64 / self.sorted_intervals.len() as f64
    }

    /// Records whose closing access is of the given kind (read vs write —
    /// the per-behavior split of Fig. 3b).
    pub fn of_closing_kind(&self, kind: EventKind) -> AtiDataset {
        Self::from_records(
            self.records
                .iter()
                .copied()
                .filter(|r| r.closing_kind == kind)
                .collect(),
        )
    }

    /// Records restricted to one memory kind.
    pub fn of_kind(&self, kind: MemoryKind) -> AtiDataset {
        Self::from_records(
            self.records
                .iter()
                .copied()
                .filter(|r| r.mem_kind == kind)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::EventKind;

    fn trace_with_accesses(times: &[(u64, BlockId)]) -> Trace {
        let mut t = Trace::new();
        let mut seen = std::collections::BTreeSet::new();
        for &(_, b) in times {
            if seen.insert(b) {
                t.record(
                    0,
                    EventKind::Malloc,
                    b,
                    1024,
                    0,
                    MemoryKind::Activation,
                    None,
                );
            }
        }
        let mut sorted = times.to_vec();
        sorted.sort();
        for (time, b) in sorted {
            t.record(
                time,
                EventKind::Read,
                b,
                1024,
                0,
                MemoryKind::Activation,
                None,
            );
        }
        t
    }

    #[test]
    fn intervals_are_adjacent_differences_per_block() {
        let t = trace_with_accesses(&[
            (10, BlockId(0)),
            (35, BlockId(0)),
            (40, BlockId(0)),
            (20, BlockId(1)),
            (120, BlockId(1)),
        ]);
        let d = AtiDataset::from_trace(&t);
        let mut intervals = d.intervals_ns();
        intervals.sort();
        assert_eq!(intervals, vec![5, 25, 100]);
    }

    #[test]
    fn fraction_at_or_below_matches_paper_statement_shape() {
        let t = trace_with_accesses(&[
            (0, BlockId(0)),
            (10, BlockId(0)),
            (20, BlockId(0)),
            (30, BlockId(0)),
            (40, BlockId(0)),
            (0, BlockId(1)),
            (1_000_000, BlockId(1)),
        ]);
        let d = AtiDataset::from_trace(&t);
        assert_eq!(d.len(), 5);
        assert!((d.fraction_at_or_below(10) - 0.8).abs() < 1e-12);
        assert_eq!(d.fraction_at_or_below(1_000_000), 1.0);
    }

    #[test]
    fn empty_trace_yields_empty_dataset() {
        let d = AtiDataset::from_trace(&Trace::new());
        assert!(d.is_empty());
        assert_eq!(d.fraction_at_or_below(100), 0.0);
    }

    #[test]
    fn closing_kind_splits_reads_from_writes() {
        let mut t = Trace::new();
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            64,
            0,
            MemoryKind::Activation,
            None,
        );
        t.record(
            10,
            EventKind::Write,
            BlockId(0),
            64,
            0,
            MemoryKind::Activation,
            None,
        );
        t.record(
            30,
            EventKind::Read,
            BlockId(0),
            64,
            0,
            MemoryKind::Activation,
            None,
        );
        t.record(
            70,
            EventKind::Write,
            BlockId(0),
            64,
            0,
            MemoryKind::Activation,
            None,
        );
        let d = AtiDataset::from_trace(&t);
        assert_eq!(d.len(), 2);
        let reads = d.of_closing_kind(EventKind::Read);
        let writes = d.of_closing_kind(EventKind::Write);
        assert_eq!(reads.intervals_ns(), vec![20]);
        assert_eq!(writes.intervals_ns(), vec![40]);
    }

    #[test]
    fn kind_filter() {
        let mut t = Trace::new();
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            64,
            0,
            MemoryKind::Weight,
            None,
        );
        t.record(
            1,
            EventKind::Read,
            BlockId(0),
            64,
            0,
            MemoryKind::Weight,
            None,
        );
        t.record(
            5,
            EventKind::Read,
            BlockId(0),
            64,
            0,
            MemoryKind::Weight,
            None,
        );
        let d = AtiDataset::from_trace(&t);
        assert_eq!(d.of_kind(MemoryKind::Weight).len(), 1);
        assert_eq!(d.of_kind(MemoryKind::Activation).len(), 0);
    }
}
