//! Memory-occupation breakdown (Figs. 5–7).
//!
//! Splits the peak device footprint into the paper's three categories —
//! input data, parameters, intermediate results — and tracks the occupancy
//! timeline that peak comes from.

use pinpoint_trace::{Category, EventKind, Trace};

/// One row of a breakdown figure.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Workload label, e.g. `"alexnet/cifar100/bs128"`.
    pub label: String,
    /// Peak total footprint in bytes.
    pub peak_bytes: u64,
    /// Input-data bytes at the peak instant.
    pub input_bytes: u64,
    /// Parameter bytes at the peak instant.
    pub parameter_bytes: u64,
    /// Intermediate-result bytes at the peak instant.
    pub intermediate_bytes: u64,
}

impl BreakdownRow {
    /// Computes the row for a trace.
    pub fn from_trace(label: impl Into<String>, trace: &Trace) -> Self {
        let peak = trace.peak_live_bytes();
        BreakdownRow {
            label: label.into(),
            peak_bytes: peak.peak_total_bytes,
            input_bytes: peak.bytes(Category::InputData),
            parameter_bytes: peak.bytes(Category::Parameters),
            intermediate_bytes: peak.bytes(Category::Intermediates),
        }
    }

    /// Fractions `(input, parameters, intermediates)` of the peak.
    pub fn fractions(&self) -> (f64, f64, f64) {
        if self.peak_bytes == 0 {
            return (0.0, 0.0, 0.0);
        }
        let p = self.peak_bytes as f64;
        (
            self.input_bytes as f64 / p,
            self.parameter_bytes as f64 / p,
            self.intermediate_bytes as f64 / p,
        )
    }
}

/// A point of the occupancy timeline: live bytes right after an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyPoint {
    /// Event time.
    pub time_ns: u64,
    /// Total live bytes after the event.
    pub live_bytes: u64,
}

/// The full occupancy-over-time curve of a trace (changes at every
/// malloc/free).
pub fn occupancy_timeline(trace: &Trace) -> Vec<OccupancyPoint> {
    let mut out = Vec::new();
    let mut live: i64 = 0;
    for e in trace.events() {
        match e.kind {
            EventKind::Malloc => live += e.size as i64,
            EventKind::Free => live -= e.size as i64,
            _ => continue,
        }
        out.push(OccupancyPoint {
            time_ns: e.time_ns,
            live_bytes: live.max(0) as u64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::{BlockId, MemoryKind};

    fn mixed_trace() -> Trace {
        let mut t = Trace::new();
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            100,
            0,
            MemoryKind::Weight,
            None,
        );
        t.record(
            1,
            EventKind::Malloc,
            BlockId(1),
            50,
            100,
            MemoryKind::Input,
            None,
        );
        t.record(
            2,
            EventKind::Malloc,
            BlockId(2),
            850,
            200,
            MemoryKind::Activation,
            None,
        );
        t.record(
            3,
            EventKind::Free,
            BlockId(2),
            850,
            200,
            MemoryKind::Activation,
            None,
        );
        t.record(
            4,
            EventKind::Free,
            BlockId(1),
            50,
            100,
            MemoryKind::Input,
            None,
        );
        t
    }

    #[test]
    fn row_splits_peak_by_category() {
        let row = BreakdownRow::from_trace("test", &mixed_trace());
        assert_eq!(row.peak_bytes, 1000);
        assert_eq!(row.input_bytes, 50);
        assert_eq!(row.parameter_bytes, 100);
        assert_eq!(row.intermediate_bytes, 850);
        let (i, p, m) = row.fractions();
        assert!((i - 0.05).abs() < 1e-12);
        assert!((p - 0.10).abs() < 1e-12);
        assert!((m - 0.85).abs() < 1e-12);
    }

    #[test]
    fn timeline_rises_and_falls() {
        let tl = occupancy_timeline(&mixed_trace());
        let bytes: Vec<u64> = tl.iter().map(|p| p.live_bytes).collect();
        assert_eq!(bytes, vec![100, 150, 1000, 150, 100]);
    }

    #[test]
    fn empty_trace_yields_zero_row() {
        let row = BreakdownRow::from_trace("empty", &Trace::new());
        assert_eq!(row.peak_bytes, 0);
        assert_eq!(row.fractions(), (0.0, 0.0, 0.0));
    }
}
