//! Empirical cumulative distribution functions (Fig. 3a).

/// An empirical CDF over `u64` samples (nanosecond intervals, byte sizes).
///
/// # Examples
///
/// ```
/// use pinpoint_analysis::EmpiricalCdf;
///
/// let cdf = EmpiricalCdf::new(vec![10, 20, 30, 40]);
/// assert_eq!(cdf.percentile(0.5), 20);
/// assert_eq!(cdf.fraction_at_or_below(25), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmpiricalCdf {
    sorted: Vec<u64>,
}

impl EmpiricalCdf {
    /// Builds the CDF (sorts the samples).
    pub fn new(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        EmpiricalCdf { sorted: samples }
    }

    /// Builds the CDF from already-sorted samples, skipping the sort.
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) if `samples` is not ascending.
    pub fn from_sorted(samples: Vec<u64>) -> Self {
        debug_assert!(
            samples.windows(2).all(|w| w[0] <= w[1]),
            "from_sorted requires ascending samples"
        );
        EmpiricalCdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest and largest sample, if any.
    pub fn range(&self) -> Option<(u64, u64)> {
        Some((*self.sorted.first()?, *self.sorted.last()?))
    }

    /// The `p`-quantile (nearest-rank), `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on an empty CDF or `p` outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(!self.sorted.is_empty(), "percentile of empty CDF");
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        if p == 0.0 {
            return self.sorted[0];
        }
        let rank = (p * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at_or_below(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// `(value, cumulative_fraction)` points for plotting, one per sample.
    pub fn points(&self) -> Vec<(u64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }

    /// Evenly spaced summary rows `(value, fraction)` for text reports:
    /// `steps + 1` points from p=0 to p=1.
    pub fn summary_rows(&self, steps: usize) -> Vec<(u64, f64)> {
        (0..=steps)
            .map(|i| {
                let p = i as f64 / steps as f64;
                (self.percentile(p), p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let c = EmpiricalCdf::new(vec![5, 1, 3, 2, 4]);
        assert_eq!(c.percentile(0.0), 1);
        assert_eq!(c.percentile(0.2), 1);
        assert_eq!(c.percentile(0.5), 3);
        assert_eq!(c.percentile(0.9), 5);
        assert_eq!(c.percentile(1.0), 5);
    }

    #[test]
    fn fractions_count_ties() {
        let c = EmpiricalCdf::new(vec![10, 10, 10, 20]);
        assert_eq!(c.fraction_at_or_below(10), 0.75);
        assert_eq!(c.fraction_at_or_below(9), 0.0);
        assert_eq!(c.fraction_at_or_below(20), 1.0);
    }

    #[test]
    fn points_are_monotone() {
        let c = EmpiricalCdf::new(vec![3, 1, 2]);
        let pts = c.points();
        assert_eq!(pts, vec![(1, 1.0 / 3.0), (2, 2.0 / 3.0), (3, 1.0)]);
    }

    #[test]
    fn summary_rows_span_the_range() {
        let c = EmpiricalCdf::new((1..=100).collect());
        let rows = c.summary_rows(4);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].0, 1);
        assert_eq!(rows[4].0, 100);
        assert_eq!(rows[2].1, 0.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_percentile_panics() {
        EmpiricalCdf::new(vec![]).percentile(0.5);
    }
}
