//! PCIe-contention analysis of swap plans.
//!
//! Equation 1 bounds each swap against its *own* access gap, but every
//! decision shares one PCIe link (one DMA engine per direction, as on real
//! GPUs). This module schedules a plan's transfers on those two engines and
//! checks that every prefetch still meets its deadline — and can thin an
//! infeasible plan down to a feasible subset.

use crate::planner::{SwapDecision, SwapPlan};
use pinpoint_device::TransferModel;

/// One scheduled transfer pair of a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledSwap {
    /// The decision being scheduled.
    pub decision: SwapDecision,
    /// When the eviction copy actually finishes on the d2h engine.
    pub d2h_done_ns: u64,
    /// When the prefetch copy actually finishes on the h2d engine.
    pub h2d_done_ns: u64,
    /// Whether the prefetch met its deadline (`needed_at`).
    pub on_time: bool,
}

/// Result of scheduling a plan on the shared link.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionReport {
    /// Per-decision schedule, in deadline order.
    pub schedule: Vec<ScheduledSwap>,
    /// Whether every prefetch met its deadline.
    pub feasible: bool,
    /// Busy fraction of the d2h engine over the span of the plan.
    pub d2h_busy_fraction: f64,
    /// Busy fraction of the h2d engine over the span of the plan.
    pub h2d_busy_fraction: f64,
}

impl ContentionReport {
    /// Decisions whose prefetch would arrive late.
    pub fn late(&self) -> impl Iterator<Item = &ScheduledSwap> {
        self.schedule.iter().filter(|s| !s.on_time)
    }
}

/// Schedules a plan's transfers on one d2h and one h2d engine.
///
/// Evictions run FIFO in eviction order; prefetches run earliest-deadline-
/// first, each starting no earlier than its eviction's completion and its
/// latest safe start. A decision is on time when its prefetch completes by
/// `needed_at`.
pub fn check_contention(plan: &SwapPlan, tm: &TransferModel) -> ContentionReport {
    schedule_decisions(&plan.decisions, tm)
}

fn schedule_decisions(decisions: &[SwapDecision], tm: &TransferModel) -> ContentionReport {
    // d2h engine: FIFO by eviction time
    let mut by_evict: Vec<&SwapDecision> = decisions.iter().collect();
    by_evict.sort_by_key(|d| (d.evict_at_ns, d.block));
    let mut d2h_free = 0u64;
    let mut d2h_busy = 0u64;
    let mut d2h_done: Vec<(SwapDecision, u64)> = Vec::with_capacity(by_evict.len());
    for d in by_evict {
        let start = d.evict_at_ns.max(d2h_free);
        let dur = tm.d2h_time_ns(d.size);
        d2h_free = start + dur;
        d2h_busy += dur;
        d2h_done.push((*d, d2h_free));
    }
    // h2d engine: EDF by needed_at
    d2h_done.sort_by_key(|(d, _)| (d.needed_at_ns, d.block));
    let mut h2d_free = 0u64;
    let mut h2d_busy = 0u64;
    let mut schedule = Vec::with_capacity(d2h_done.len());
    for (d, d2h_done_ns) in d2h_done {
        let dur = tm.h2d_time_ns(d.size);
        // start as soon as the data is on the host and the engine is free
        let start = d2h_done_ns.max(h2d_free);
        let done = start + dur;
        h2d_free = done;
        h2d_busy += dur;
        schedule.push(ScheduledSwap {
            decision: d,
            d2h_done_ns,
            h2d_done_ns: done,
            on_time: done <= d.needed_at_ns,
        });
    }
    let span = decisions
        .iter()
        .map(|d| d.needed_at_ns)
        .max()
        .unwrap_or(0)
        .saturating_sub(decisions.iter().map(|d| d.evict_at_ns).min().unwrap_or(0))
        .max(1);
    ContentionReport {
        feasible: schedule.iter().all(|s| s.on_time),
        d2h_busy_fraction: d2h_busy as f64 / span as f64,
        h2d_busy_fraction: h2d_busy as f64 / span as f64,
        schedule,
    }
}

/// Greedily thins a plan until the shared-link schedule is feasible:
/// decisions are considered largest-saving first, and each is kept only if
/// the kept set still schedules on time.
///
/// The returned plan's peak estimate is recomputed pessimistically as the
/// baseline peak minus nothing — callers should re-apply
/// [`crate::planner::apply`] to measure the thinned plan's true peak.
pub fn thin_to_feasible(plan: &SwapPlan, tm: &TransferModel) -> SwapPlan {
    let mut candidates: Vec<SwapDecision> = plan.decisions.clone();
    candidates.sort_by_key(|d| std::cmp::Reverse(d.size));
    let mut kept: Vec<SwapDecision> = Vec::new();
    for d in candidates {
        kept.push(d);
        if !schedule_decisions(&kept, tm).feasible {
            kept.pop();
        }
    }
    kept.sort_by_key(|d| (d.evict_at_ns, d.block));
    let transfer_bytes = kept.iter().map(|d| 2 * d.size as u64).sum();
    SwapPlan {
        decisions: kept,
        baseline_peak_bytes: plan.baseline_peak_bytes,
        planned_peak_bytes: plan.baseline_peak_bytes,
        transfer_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(
        block: u64,
        size: usize,
        evict_at: u64,
        needed_at: u64,
        tm: &TransferModel,
    ) -> SwapDecision {
        SwapDecision {
            block: pinpoint_trace::BlockId(block),
            size,
            evict_at_ns: evict_at,
            needed_at_ns: needed_at,
            out_from_ns: evict_at + tm.d2h_time_ns(size),
            out_until_ns: needed_at - tm.h2d_time_ns(size),
        }
    }

    fn tm() -> TransferModel {
        TransferModel::titan_x_pascal_pinned()
    }

    #[test]
    fn single_eq1_safe_decision_is_feasible() {
        let tm = tm();
        // 100 MB over a 1 s gap: round trip ≈ 31 ms ≪ gap
        let plan = SwapPlan {
            decisions: vec![decision(0, 100_000_000, 0, 1_000_000_000, &tm)],
            baseline_peak_bytes: 0,
            planned_peak_bytes: 0,
            transfer_bytes: 0,
        };
        let r = check_contention(&plan, &tm);
        assert!(r.feasible, "{r:?}");
        assert!(r.d2h_busy_fraction < 0.1);
    }

    #[test]
    fn oversubscribed_link_misses_deadlines() {
        let tm = tm();
        // ten 500 MB blocks all needing the round trip in the same 200 ms
        // window: each alone passes Eq. 1? 500MB needs ~158 ms round trip,
        // so give each a 400 ms gap — individually fine, together impossible
        let decisions: Vec<SwapDecision> = (0..10)
            .map(|i| decision(i, 500_000_000, 1_000 * i, 400_000_000 + 1_000 * i, &tm))
            .collect();
        let plan = SwapPlan {
            decisions,
            baseline_peak_bytes: 0,
            planned_peak_bytes: 0,
            transfer_bytes: 0,
        };
        let r = check_contention(&plan, &tm);
        assert!(!r.feasible);
        assert!(
            r.late().count() >= 5,
            "most must miss: {}",
            r.late().count()
        );
        assert!(r.d2h_busy_fraction > 0.9);
    }

    #[test]
    fn thinning_restores_feasibility() {
        let tm = tm();
        let decisions: Vec<SwapDecision> = (0..10)
            .map(|i| decision(i, 500_000_000, 1_000 * i, 400_000_000 + 1_000 * i, &tm))
            .collect();
        let plan = SwapPlan {
            decisions,
            baseline_peak_bytes: 10_000_000_000,
            planned_peak_bytes: 0,
            transfer_bytes: 0,
        };
        let thinned = thin_to_feasible(&plan, &tm);
        assert!(!thinned.decisions.is_empty(), "some swaps must survive");
        assert!(thinned.decisions.len() < 10, "some must be dropped");
        assert!(check_contention(&thinned, &tm).feasible);
    }

    #[test]
    fn empty_plan_is_trivially_feasible() {
        let plan = SwapPlan {
            decisions: vec![],
            baseline_peak_bytes: 0,
            planned_peak_bytes: 0,
            transfer_bytes: 0,
        };
        let r = check_contention(&plan, &tm());
        assert!(r.feasible);
        assert_eq!(r.d2h_busy_fraction, 0.0);
    }
}
