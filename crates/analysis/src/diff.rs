//! Trace comparison: quantifies how two training runs' memory behaviors
//! differ (allocator policies, checkpointing densities, batch sizes, code
//! versions — any A/B over the same workload).

use crate::ati::AtiDataset;
use crate::breakdown::BreakdownRow;
use crate::iterative::detect;
use pinpoint_trace::Trace;

/// Side-by-side summary of one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delta {
    /// The metric in trace A.
    pub a: f64,
    /// The metric in trace B.
    pub b: f64,
}

impl Delta {
    fn new(a: f64, b: f64) -> Self {
        Delta { a, b }
    }

    /// `b / a`, or `NaN` when `a == 0`.
    pub fn ratio(&self) -> f64 {
        self.b / self.a
    }

    /// Relative change `(b - a) / a` as a fraction.
    pub fn relative_change(&self) -> f64 {
        (self.b - self.a) / self.a
    }
}

/// The structural diff of two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Event counts.
    pub events: Delta,
    /// Peak live bytes.
    pub peak_bytes: Delta,
    /// Total simulated duration (ns).
    pub duration_ns: Delta,
    /// Median access-time interval (ns); 0 when a trace has no intervals.
    pub median_ati_ns: Delta,
    /// Mean iteration period (ns); 0 when not periodic / unmarked.
    pub period_ns: Delta,
    /// Intermediate-result fraction of the peak.
    pub intermediate_fraction: Delta,
}

impl TraceDiff {
    /// True when every metric matches within `tol` relative tolerance.
    pub fn is_same_within(&self, tol: f64) -> bool {
        [
            self.events,
            self.peak_bytes,
            self.duration_ns,
            self.median_ati_ns,
            self.period_ns,
            self.intermediate_fraction,
        ]
        .iter()
        .all(|d| {
            if d.a == 0.0 && d.b == 0.0 {
                true
            } else if d.a == 0.0 {
                false
            } else {
                d.relative_change().abs() <= tol
            }
        })
    }
}

fn median_ati(trace: &Trace) -> f64 {
    let d = AtiDataset::from_trace(trace);
    let v = d.sorted_intervals_ns();
    if v.is_empty() {
        return 0.0;
    }
    v[v.len() / 2] as f64
}

/// Computes the structural diff of two traces.
pub fn diff_traces(a: &Trace, b: &Trace) -> TraceDiff {
    let (pa, pb) = (a.peak_live_bytes(), b.peak_live_bytes());
    let (ba, bb) = (
        BreakdownRow::from_trace("a", a),
        BreakdownRow::from_trace("b", b),
    );
    TraceDiff {
        events: Delta::new(a.len() as f64, b.len() as f64),
        peak_bytes: Delta::new(pa.peak_total_bytes as f64, pb.peak_total_bytes as f64),
        duration_ns: Delta::new(a.end_time_ns() as f64, b.end_time_ns() as f64),
        median_ati_ns: Delta::new(median_ati(a), median_ati(b)),
        period_ns: Delta::new(detect(a).mean_period_ns, detect(b).mean_period_ns),
        intermediate_fraction: Delta::new(ba.fractions().2, bb.fractions().2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::{BlockId, EventKind, MemoryKind};

    fn trace(scale: usize) -> Trace {
        let mut t = Trace::new();
        let mut clock = 0u64;
        for i in 0..4u64 {
            t.mark(clock, format!("iter:{i}"));
            let b = BlockId(i);
            t.record(
                clock,
                EventKind::Malloc,
                b,
                1024 * scale,
                0,
                MemoryKind::Activation,
                None,
            );
            clock += 10_000;
            t.record(
                clock,
                EventKind::Write,
                b,
                1024 * scale,
                0,
                MemoryKind::Activation,
                None,
            );
            clock += 10_000;
            t.record(
                clock,
                EventKind::Read,
                b,
                1024 * scale,
                0,
                MemoryKind::Activation,
                None,
            );
            t.record(
                clock,
                EventKind::Free,
                b,
                1024 * scale,
                0,
                MemoryKind::Activation,
                None,
            );
            clock += 5_000;
        }
        t
    }

    #[test]
    fn identical_traces_diff_to_zero() {
        let d = diff_traces(&trace(1), &trace(1));
        assert!(d.is_same_within(0.0));
        assert_eq!(d.peak_bytes.ratio(), 1.0);
    }

    #[test]
    fn scaled_trace_shows_peak_ratio() {
        let d = diff_traces(&trace(1), &trace(4));
        assert_eq!(d.peak_bytes.ratio(), 4.0);
        assert_eq!(d.events.ratio(), 1.0);
        assert!(!d.is_same_within(0.1));
        assert!((d.peak_bytes.relative_change() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_vs_nonempty_is_not_same() {
        let d = diff_traces(&Trace::new(), &trace(1));
        assert!(!d.is_same_within(0.5));
    }
}
