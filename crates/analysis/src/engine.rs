//! Fused one-decode analysis engine.
//!
//! The paper derives all of its characterization results (Figs. 2–7) from
//! *one* trace, yet running the passes one at a time re-reads that trace
//! once per pass. This module fuses any set of passes over a **single
//! scan**: each pass is an [`EventFold`] (per-chunk `push`, associative
//! `merge`, final `finish`), and a [`FusedPipeline`] registers folds,
//! prunes chunks with the **union** of their predicates, decodes each
//! surviving chunk exactly once, fans chunks out across
//! `pinpoint-parallel` workers, and merges the per-chunk partial states
//! back **in chunk order** — so results are bit-identical at any thread
//! count, the repo's established determinism invariant.
//!
//! The five paper passes ship as ready-made folds: [`AtiFold`],
//! [`PeakFold`], [`BreakdownFold`], [`GanttFold`], [`OutlierFold`]. The
//! per-pass entry points in [`crate::ati_from_store`] & co. are thin
//! wrappers over single-fold pipelines.

use crate::ati::{AtiDataset, AtiRecord};
use crate::breakdown::BreakdownRow;
use crate::gantt::GanttRect;
use crate::outlier::{sift, OutlierCriteria, OutlierReport};
use pinpoint_store::{
    ChunkMeta, ColumnBatch, Predicate, ReadPolicy, StoreError, StoreReader, DEFAULT_CHUNK_EVENTS,
};
use pinpoint_trace::{BlockId, Category, EventKind, MemEvent, MemoryKind, PeakUsage, Trace};
use std::any::Any;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Seek};
use std::marker::PhantomData;

/// One analysis pass expressed as a chunk-parallel fold.
///
/// The engine decodes a chunk of events, calls [`push`](Self::push) for
/// each event into a fresh per-chunk [`Acc`](Self::Acc), then combines
/// per-chunk accumulators **left-to-right in chunk order** with
/// [`merge`](Self::merge), and finally converts the fully merged
/// accumulator into the pass's result with [`finish`](Self::finish).
///
/// # Contract
///
/// * `merge` must be **associative** with `push` order preserved: merging
///   chunk A's accumulator (earlier events) with chunk B's (later events)
///   must equal pushing A's events then B's into one accumulator. The
///   engine always passes the earlier accumulator as `a`.
/// * [`predicate`](Self::predicate) must be **sound**: an event that does
///   not match the predicate must not affect the result. The engine uses
///   it both to prune whole chunks (via the union across registered
///   folds) and to skip single events for this fold.
pub trait EventFold: Send + Sync {
    /// Per-chunk partial state.
    type Acc: Send + 'static;
    /// Final result of the pass.
    type Output: Send + 'static;

    /// The events this fold needs to observe (see the trait contract).
    fn predicate(&self) -> Predicate;
    /// Creates an empty accumulator for one chunk.
    fn new_acc(&self) -> Self::Acc;
    /// Folds one event into a chunk accumulator.
    fn push(&self, acc: &mut Self::Acc, e: &MemEvent);
    /// Combines two accumulators; `a` covers strictly earlier events.
    fn merge(&self, a: Self::Acc, b: Self::Acc) -> Self::Acc;
    /// Converts the fully merged accumulator into the pass result.
    fn finish(&self, acc: Self::Acc) -> Self::Output;

    /// Folds one decoded chunk, column-batch style. `pred` is always this
    /// fold's own [`predicate`](Self::predicate); the engine passes it so
    /// overrides don't have to recompute it per chunk.
    ///
    /// The default materializes each event and filters with `pred` —
    /// semantically identical to the per-event path. Folds whose
    /// predicate can be tested straight off a column override this to
    /// skip events without ever building a [`MemEvent`] (see
    /// [`PeakFold`], which rules out accesses with one byte test per
    /// event) — and must then also override
    /// [`columnar`](Self::columnar) to return `true`, or the engine's
    /// shared per-event loop is used and the override never runs.
    /// Overrides must stay bit-identical to the default.
    fn push_batch(&self, acc: &mut Self::Acc, batch: &ColumnBatch, pred: &Predicate) {
        for i in 0..batch.len() {
            let e = batch.event(i);
            if pred.matches_event(&e) {
                self.push(acc, &e);
            }
        }
    }

    /// Whether [`push_batch`](Self::push_batch) is overridden with a
    /// columnar implementation. The engine materializes each event
    /// **once per chunk** and shares it among every non-columnar fold in
    /// the pipeline; columnar folds are handed the raw batch instead,
    /// so a five-fold report never builds an event more than once.
    fn columnar(&self) -> bool {
        false
    }
}

/// Type-erased accumulator, so one pipeline can carry folds with
/// different `Acc` types.
type DynAcc = Box<dyn Any + Send>;

/// Object-safe mirror of [`EventFold`]; implemented for every fold via
/// the blanket impl below.
trait DynFold: Send + Sync {
    fn predicate_dyn(&self) -> Predicate;
    fn new_acc_dyn(&self) -> DynAcc;
    fn push_dyn(&self, acc: &mut DynAcc, e: &MemEvent);
    fn push_batch_dyn(&self, acc: &mut DynAcc, batch: &ColumnBatch, pred: &Predicate);
    fn columnar_dyn(&self) -> bool;
    fn merge_dyn(&self, a: DynAcc, b: DynAcc) -> DynAcc;
    fn finish_dyn(&self, acc: DynAcc) -> DynAcc;
}

impl<F: EventFold> DynFold for F {
    fn predicate_dyn(&self) -> Predicate {
        self.predicate()
    }
    fn new_acc_dyn(&self) -> DynAcc {
        Box::new(self.new_acc())
    }
    fn push_dyn(&self, acc: &mut DynAcc, e: &MemEvent) {
        let acc = acc.downcast_mut::<F::Acc>().expect("fold acc type");
        self.push(acc, e);
    }
    fn push_batch_dyn(&self, acc: &mut DynAcc, batch: &ColumnBatch, pred: &Predicate) {
        let acc = acc.downcast_mut::<F::Acc>().expect("fold acc type");
        self.push_batch(acc, batch, pred);
    }
    fn columnar_dyn(&self) -> bool {
        self.columnar()
    }
    fn merge_dyn(&self, a: DynAcc, b: DynAcc) -> DynAcc {
        let a = a.downcast::<F::Acc>().expect("fold acc type");
        let b = b.downcast::<F::Acc>().expect("fold acc type");
        Box::new(self.merge(*a, *b))
    }
    fn finish_dyn(&self, acc: DynAcc) -> DynAcc {
        let acc = acc.downcast::<F::Acc>().expect("fold acc type");
        Box::new(self.finish(*acc))
    }
}

/// Typed receipt for a registered fold; redeem it with
/// [`FusedOutputs::take`] after the pipeline runs.
pub struct FoldHandle<O> {
    index: usize,
    _output: PhantomData<fn() -> O>,
}

impl<O> Clone for FoldHandle<O> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<O> Copy for FoldHandle<O> {}

impl<O> fmt::Debug for FoldHandle<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FoldHandle")
            .field("index", &self.index)
            .finish()
    }
}

/// Scan accounting for one fused run — how much pruning and decoding the
/// union predicate bought, and (under [`ReadPolicy::Salvage`]) exactly
/// what corruption cost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FusedStats {
    /// Chunks in the store (or synthesized from the in-memory trace).
    pub chunks_total: usize,
    /// Chunks actually decoded — each exactly once, however many folds ran.
    pub chunks_decoded: usize,
    /// Chunks skipped via the footer index and the union predicate.
    pub chunks_pruned: usize,
    /// Of the pruned chunks, how many were rejected *specifically* by the
    /// v3 per-chunk op-label bitset — every other zone-map test would
    /// have let them through. Always 0 when no registered fold constrains
    /// the op label, and on pre-v3 stores (their index defaults to the
    /// all-labels bitset).
    pub chunks_pruned_by_label: usize,
    /// Events scanned across all decoded chunks.
    pub events_scanned: u64,
    /// Chunks read but dropped as corrupt (always 0 under
    /// [`ReadPolicy::Strict`] — a corrupt chunk is an error there).
    pub chunks_skipped: usize,
    /// Events lost with the dropped chunks, per the index counts.
    pub events_lost: u64,
    /// Detail of the first corruption encountered, in chunk order.
    pub first_error: Option<String>,
}

/// Results of a fused run: one output slot per registered fold, plus
/// scan statistics.
pub struct FusedOutputs {
    outputs: Vec<Option<DynAcc>>,
    stats: FusedStats,
}

impl fmt::Debug for FusedOutputs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FusedOutputs")
            .field("outputs", &self.outputs.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FusedOutputs {
    /// Removes and returns the output of the fold behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle came from a different pipeline or the output
    /// was already taken.
    pub fn take<O: 'static>(&mut self, handle: FoldHandle<O>) -> O {
        let boxed = self
            .outputs
            .get_mut(handle.index)
            .and_then(Option::take)
            .expect("fold output present (taken once, handle from this run)");
        *boxed.downcast::<O>().expect("handle output type")
    }

    /// Scan accounting for the run.
    pub fn stats(&self) -> &FusedStats {
        &self.stats
    }
}

/// A set of registered folds run over **one** decode of a trace.
///
/// See the module docs for the full picture; in short:
///
/// ```
/// use pinpoint_analysis::{AtiFold, FusedPipeline, PeakFold};
/// # use pinpoint_trace::Trace;
/// let mut pipe = FusedPipeline::new();
/// let ati = pipe.register(AtiFold);
/// let peak = pipe.register(PeakFold);
/// let mut out = pipe.run_trace(&Trace::new(), 1);
/// let (dataset, usage) = (out.take(ati), out.take(peak));
/// # assert!(dataset.is_empty());
/// # assert_eq!(usage.peak_total_bytes, 0);
/// ```
#[derive(Default)]
pub struct FusedPipeline {
    folds: Vec<Box<dyn DynFold>>,
    read_policy: Option<ReadPolicy>,
    cancel: pinpoint_store::CancelToken,
}

impl fmt::Debug for FusedPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FusedPipeline")
            .field("folds", &self.folds.len())
            .finish()
    }
}

impl FusedPipeline {
    /// An empty pipeline; register folds, then run it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fold; redeem the returned handle for its output after
    /// a run.
    pub fn register<F: EventFold + 'static>(&mut self, fold: F) -> FoldHandle<F::Output> {
        let index = self.folds.len();
        self.folds.push(Box::new(fold));
        FoldHandle {
            index,
            _output: PhantomData,
        }
    }

    /// Number of registered folds.
    pub fn len(&self) -> usize {
        self.folds.len()
    }

    /// True when no folds are registered.
    pub fn is_empty(&self) -> bool {
        self.folds.is_empty()
    }

    /// Overrides the read policy for [`run_store`](Self::run_store); by
    /// default the pipeline inherits the reader's own policy. Under
    /// [`ReadPolicy::Salvage`], corrupt chunks are dropped with exact
    /// accounting in [`FusedStats`] instead of failing the run.
    pub fn set_read_policy(&mut self, policy: ReadPolicy) {
        self.read_policy = Some(policy);
    }

    /// Installs a cooperative [`CancelToken`](pinpoint_store::CancelToken)
    /// polled at per-chunk merge boundaries by
    /// [`run_store`](Self::run_store) and [`run_chunks`](Self::run_chunks)
    /// (callers scanning through a reader get wave-granular checkpoints
    /// too via [`StoreReader::set_cancel`]). Once it fires, the run stops
    /// mid-store and returns [`StoreError::Cancelled`] — under either
    /// read policy, because an abandoned request is not a damaged store.
    pub fn set_cancel(&mut self, token: pinpoint_store::CancelToken) {
        self.cancel = token;
    }

    /// The union of every registered fold's predicate — the coarsest
    /// filter that is still sound for all of them, used for chunk-index
    /// pruning. Returns the match-everything predicate when the pipeline
    /// is empty.
    pub fn union_predicate(&self) -> Predicate {
        self.folds
            .iter()
            .map(|f| f.predicate_dyn())
            .reduce(|a, b| a.union(&b))
            .unwrap_or_else(Predicate::any)
    }

    /// Runs every registered fold over a `.ptrc` store in **one pass**:
    /// chunks not matching the union predicate are pruned via the footer
    /// index, each surviving chunk is verified (CRC on v2 stores) and
    /// decoded exactly once, and per-chunk partial states merge in chunk
    /// order — bit-identical results at any `threads` count.
    ///
    /// The effective read policy is the pipeline override
    /// ([`set_read_policy`](Self::set_read_policy)) or, absent one, the
    /// reader's own. Under [`ReadPolicy::Salvage`], corrupt chunks are
    /// dropped with exact accounting (`chunks_skipped`, `events_lost`,
    /// `first_error`) instead of failing the run; the fold results are
    /// then bit-identical — at any thread count — to a run over a store
    /// containing only the surviving chunks.
    ///
    /// # Errors
    ///
    /// I/O errors always; corruption errors under [`ReadPolicy::Strict`].
    pub fn run_store<R: Read + Seek>(
        &self,
        reader: &mut StoreReader<R>,
        threads: usize,
    ) -> io::Result<FusedOutputs> {
        let _run_span = pinpoint_obs::tracer().span_with("engine.run", self.folds.len() as u64);
        let policy = self.read_policy.unwrap_or_else(|| reader.policy());
        let chunks_total = reader.num_chunks();
        let mut stats = FusedStats {
            chunks_total,
            ..FusedStats::default()
        };
        let mut candidates: Vec<usize> = Vec::new();
        if !self.folds.is_empty() {
            let _prune_span = pinpoint_obs::tracer().span("engine.prune");
            let union = self.union_predicate();
            for (i, m) in reader.footer().chunks.iter().enumerate() {
                if union.matches_chunk(m) {
                    candidates.push(i);
                } else if union.pruned_by_label(m) {
                    stats.chunks_pruned_by_label += 1;
                }
            }
        }
        stats.chunks_pruned = chunks_total - candidates.len();
        let preds: Vec<Predicate> = self.folds.iter().map(|f| f.predicate_dyn()).collect();
        let folds = &self.folds;
        let mut merged: Option<Vec<DynAcc>> = None;
        // scan_chunks runs verify+decode+batch-fold on worker threads
        // against pooled scratch buffers, then hands results back in
        // chunk order: the per-chunk verdicts (and thus the salvage
        // accounting) fold deterministically whatever the thread count,
        // and the steady-state scan allocates nothing per chunk
        reader
            .scan_chunks(
                &candidates,
                threads,
                |_, _, batch| (fold_chunk_batch(folds, &preds, batch), batch.len() as u64),
                |i, meta, res| match res {
                    _ if self.cancel.is_cancelled() => Err(StoreError::Cancelled),
                    Ok((accs, n)) => {
                        stats.chunks_decoded += 1;
                        stats.events_scanned += n;
                        let _merge_span =
                            pinpoint_obs::tracer().span_with("engine.merge", i as u64);
                        merged = merge_accs(folds, merged.take(), accs);
                        Ok(())
                    }
                    Err(e) if policy == ReadPolicy::Salvage && e.is_corruption() => {
                        stats.chunks_skipped += 1;
                        stats.events_lost += meta.count;
                        if stats.first_error.is_none() {
                            stats.first_error = Some(e.to_string());
                        }
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
            )
            .map_err(io::Error::from)?;
        Ok(self.finalize(merged, stats))
    }

    /// Runs every registered fold over an externally supplied chunk set —
    /// the cache-backed twin of [`run_store`](Self::run_store), built for
    /// consumers (the `pinpoint-serve` daemon) that hold decoded
    /// [`ColumnBatch`]es in a shared cache instead of re-reading the file.
    ///
    /// `index` is the store's chunk index (file order); candidates are
    /// pruned with the union predicate exactly like `run_store`, and each
    /// surviving chunk is requested once from `fetch` — typically a cache
    /// lookup that decodes on miss — on a worker thread. Per-chunk partial
    /// states merge in chunk order, so results (including the salvage
    /// accounting under [`ReadPolicy::Salvage`], where a `fetch` that
    /// returns a corruption error becomes a skipped chunk) are
    /// bit-identical to `run_store` over the same store at any `threads`
    /// count, whatever mix of cache hits and misses serves the batches.
    ///
    /// # Errors
    ///
    /// I/O errors from `fetch` always; corruption errors under
    /// [`ReadPolicy::Strict`].
    pub fn run_chunks<F>(
        &self,
        index: &[ChunkMeta],
        threads: usize,
        policy: ReadPolicy,
        fetch: F,
    ) -> Result<FusedOutputs, StoreError>
    where
        F: Fn(usize, &ChunkMeta) -> Result<std::sync::Arc<ColumnBatch>, StoreError> + Sync,
    {
        let _run_span = pinpoint_obs::tracer().span_with("engine.run", self.folds.len() as u64);
        let chunks_total = index.len();
        let mut stats = FusedStats {
            chunks_total,
            ..FusedStats::default()
        };
        let mut candidates: Vec<usize> = Vec::new();
        if !self.folds.is_empty() {
            let _prune_span = pinpoint_obs::tracer().span("engine.prune");
            let union = self.union_predicate();
            for (i, m) in index.iter().enumerate() {
                if union.matches_chunk(m) {
                    candidates.push(i);
                } else if union.pruned_by_label(m) {
                    stats.chunks_pruned_by_label += 1;
                }
            }
        }
        stats.chunks_pruned = chunks_total - candidates.len();
        let preds: Vec<Predicate> = self.folds.iter().map(|f| f.predicate_dyn()).collect();
        let folds = &self.folds;
        let mapped = pinpoint_parallel::map_ordered(candidates, threads, |i| {
            let _chunk_span = pinpoint_obs::tracer().span_with("engine.chunk", i as u64);
            let batch = {
                let _fetch_span = pinpoint_obs::tracer().span_with("engine.fetch", i as u64);
                fetch(i, &index[i])
            };
            let res =
                batch.map(|batch| (fold_chunk_batch(folds, &preds, &batch), batch.len() as u64));
            (i, res)
        });
        let mut merged: Option<Vec<DynAcc>> = None;
        for (i, res) in mapped {
            self.cancel.check()?;
            match res {
                Ok((accs, n)) => {
                    stats.chunks_decoded += 1;
                    stats.events_scanned += n;
                    let _merge_span = pinpoint_obs::tracer().span_with("engine.merge", i as u64);
                    merged = merge_accs(folds, merged.take(), accs);
                }
                Err(e) if policy == ReadPolicy::Salvage && e.is_corruption() => {
                    stats.chunks_skipped += 1;
                    stats.events_lost += index[i].count;
                    if stats.first_error.is_none() {
                        stats.first_error = Some(e.to_string());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(self.finalize(merged, stats))
    }

    /// Runs every registered fold over an in-memory trace in one pass,
    /// splitting the event list into fixed-size chunks for the same
    /// parallel map + in-order merge as [`run_store`](Self::run_store)
    /// (fixed boundaries, so results are thread-count invariant). No
    /// chunk pruning happens here — there is no index — but per-fold
    /// event predicates still apply.
    pub fn run_trace(&self, trace: &Trace, threads: usize) -> FusedOutputs {
        let _run_span = pinpoint_obs::tracer().span_with("engine.run", self.folds.len() as u64);
        let chunks: Vec<&[MemEvent]> = trace.events().chunks(DEFAULT_CHUNK_EVENTS).collect();
        let chunks_total = chunks.len();
        let preds: Vec<Predicate> = self.folds.iter().map(|f| f.predicate_dyn()).collect();
        let folds = &self.folds;
        let (merged, events_scanned) = pinpoint_parallel::map_reduce_ordered(
            chunks,
            threads,
            (None, 0u64),
            |events: &[MemEvent]| (fold_chunk(folds, &preds, events), events.len() as u64),
            |(acc, n), (accs, len)| (merge_accs(folds, acc, accs), n + len),
        );
        self.finalize(
            merged,
            FusedStats {
                chunks_total,
                chunks_decoded: chunks_total,
                events_scanned,
                ..FusedStats::default()
            },
        )
    }

    /// Merged accumulators → outputs (empty input → empty-fold outputs).
    fn finalize(&self, merged: Option<Vec<DynAcc>>, stats: FusedStats) -> FusedOutputs {
        let _finish_span = pinpoint_obs::tracer().span("engine.finish");
        let accs = merged.unwrap_or_else(|| self.folds.iter().map(|f| f.new_acc_dyn()).collect());
        let outputs = self
            .folds
            .iter()
            .zip(accs)
            .map(|(f, a)| Some(f.finish_dyn(a)))
            .collect();
        FusedOutputs { outputs, stats }
    }
}

/// Folds one decoded column batch into fresh per-fold accumulators.
///
/// Columnar folds consume the batch directly (never building an event);
/// all remaining folds share a single materialization loop, so each
/// event is built at most once per chunk however many folds registered.
fn fold_chunk_batch(
    folds: &[Box<dyn DynFold>],
    preds: &[Predicate],
    batch: &ColumnBatch,
) -> Vec<DynAcc> {
    let _fold_span = pinpoint_obs::tracer().span_with("engine.fold", batch.len() as u64);
    let mut accs: Vec<DynAcc> = folds.iter().map(|f| f.new_acc_dyn()).collect();
    let mut shared: Vec<usize> = Vec::new();
    for (j, fold) in folds.iter().enumerate() {
        if fold.columnar_dyn() {
            fold.push_batch_dyn(&mut accs[j], batch, &preds[j]);
        } else {
            shared.push(j);
        }
    }
    if !shared.is_empty() {
        for i in 0..batch.len() {
            let e = batch.event(i);
            for &j in &shared {
                if preds[j].matches_event(&e) {
                    folds[j].push_dyn(&mut accs[j], &e);
                }
            }
        }
    }
    accs
}

/// Folds one chunk of already-materialized events into fresh per-fold
/// accumulators (the [`FusedPipeline::run_trace`] path).
fn fold_chunk(folds: &[Box<dyn DynFold>], preds: &[Predicate], events: &[MemEvent]) -> Vec<DynAcc> {
    let _fold_span = pinpoint_obs::tracer().span_with("engine.fold", events.len() as u64);
    let mut accs: Vec<DynAcc> = folds.iter().map(|f| f.new_acc_dyn()).collect();
    for e in events {
        for ((fold, pred), acc) in folds.iter().zip(preds).zip(&mut accs) {
            if pred.matches_event(e) {
                fold.push_dyn(acc, e);
            }
        }
    }
    accs
}

/// In-order reduce step: merge the next chunk's accumulators into the
/// running ones (earlier chunks on the left).
fn merge_accs(
    folds: &[Box<dyn DynFold>],
    acc: Option<Vec<DynAcc>>,
    next: Vec<DynAcc>,
) -> Option<Vec<DynAcc>> {
    Some(match acc {
        None => next,
        Some(prev) => prev
            .into_iter()
            .zip(next)
            .zip(folds)
            .map(|((a, b), f)| f.merge_dyn(a, b))
            .collect(),
    })
}

// ---------------------------------------------------------------------------
// The five paper passes as folds.
// ---------------------------------------------------------------------------

/// Per-block state the ATI fold keeps — O(1) per live block, not every
/// access (this is what bounds `ati_from_store` memory).
#[derive(Debug, Clone, Copy)]
struct AtiBlockState {
    /// Size/kind fallback from the block's first event of any kind
    /// (mirrors `Trace::lifetimes()` entry initialization).
    fallback_size: usize,
    fallback_kind: MemoryKind,
    /// Last malloc's (size, kind); overrides the fallback.
    malloc_meta: Option<(usize, MemoryKind)>,
    /// First access in this accumulator's span (bridge target on merge).
    first_access: Option<(u64, EventKind)>,
    /// Most recent access (the open end of the next interval).
    last_access: Option<(u64, EventKind)>,
}

/// An interval observed before the block's final size/kind are known;
/// completed into an [`AtiRecord`] at `finish`.
#[derive(Debug, Clone, Copy)]
struct PendingAti {
    block: BlockId,
    interval_ns: u64,
    end_time_ns: u64,
    closing_kind: EventKind,
}

/// Accumulator of [`AtiFold`]: per-block scalar state plus the intervals
/// closed so far, in per-block chronological order.
#[derive(Debug, Default)]
pub struct AtiAcc {
    blocks: BTreeMap<BlockId, AtiBlockState>,
    pending: Vec<PendingAti>,
}

/// Access-time-interval extraction as a fold — the fused twin of
/// [`AtiDataset::from_trace`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AtiFold;

fn ati_push(acc: &mut AtiAcc, e: &MemEvent) {
    let st = acc.blocks.entry(e.block).or_insert(AtiBlockState {
        fallback_size: e.size,
        fallback_kind: e.mem_kind,
        malloc_meta: None,
        first_access: None,
        last_access: None,
    });
    match e.kind {
        EventKind::Malloc => st.malloc_meta = Some((e.size, e.mem_kind)),
        EventKind::Free => {}
        EventKind::Read | EventKind::Write => {
            if let Some((prev, _)) = st.last_access {
                acc.pending.push(PendingAti {
                    block: e.block,
                    interval_ns: e.time_ns - prev,
                    end_time_ns: e.time_ns,
                    closing_kind: e.kind,
                });
            }
            if st.first_access.is_none() {
                st.first_access = Some((e.time_ns, e.kind));
            }
            st.last_access = Some((e.time_ns, e.kind));
        }
    }
}

fn ati_merge(mut a: AtiAcc, b: AtiAcc) -> AtiAcc {
    let AtiAcc {
        blocks: b_blocks,
        pending: b_pending,
    } = b;
    for (block, sb) in b_blocks {
        match a.blocks.entry(block) {
            Entry::Vacant(v) => {
                v.insert(sb);
            }
            Entry::Occupied(mut o) => {
                let sa = o.get_mut();
                // Bridge the interval spanning the two accumulators'
                // event spans: A's last access → B's first.
                if let (Some((ta, _)), Some((tb, kb))) = (sa.last_access, sb.first_access) {
                    a.pending.push(PendingAti {
                        block,
                        interval_ns: tb - ta,
                        end_time_ns: tb,
                        closing_kind: kb,
                    });
                }
                sa.malloc_meta = sb.malloc_meta.or(sa.malloc_meta);
                if sa.first_access.is_none() {
                    sa.first_access = sb.first_access;
                }
                if sb.last_access.is_some() {
                    sa.last_access = sb.last_access;
                }
            }
        }
    }
    // A's intervals, then the bridges (closed by B's first accesses),
    // then B's: per-block chronological order is preserved, which the
    // final stable sort relies on for bit-identity with the sequential
    // pass.
    a.pending.extend(b_pending);
    a
}

/// Completes pending intervals with each block's final size/kind and
/// builds the dataset exactly like the sequential pass.
fn ati_dataset(acc: AtiAcc) -> AtiDataset {
    let mut records: Vec<AtiRecord> = acc
        .pending
        .iter()
        .map(|p| {
            let st = &acc.blocks[&p.block];
            let (size, mem_kind) = st
                .malloc_meta
                .unwrap_or((st.fallback_size, st.fallback_kind));
            AtiRecord {
                block: p.block,
                size,
                mem_kind,
                interval_ns: p.interval_ns,
                end_time_ns: p.end_time_ns,
                closing_kind: p.closing_kind,
            }
        })
        .collect();
    records.sort_by_key(|r| (r.end_time_ns, r.block));
    AtiDataset::from_records(records)
}

impl EventFold for AtiFold {
    type Acc = AtiAcc;
    type Output = AtiDataset;

    /// Everything: accesses close intervals, mallocs set size/kind, and
    /// even a leading free initializes the block's fallback metadata
    /// (mirroring `Trace::lifetimes()`).
    fn predicate(&self) -> Predicate {
        Predicate::any()
    }
    fn new_acc(&self) -> AtiAcc {
        AtiAcc::default()
    }
    fn push(&self, acc: &mut AtiAcc, e: &MemEvent) {
        ati_push(acc, e);
    }
    fn merge(&self, a: AtiAcc, b: AtiAcc) -> AtiAcc {
        ati_merge(a, b)
    }
    fn finish(&self, acc: AtiAcc) -> AtiDataset {
        ati_dataset(acc)
    }
}

/// Accumulator of [`PeakFold`]: the span's net allocation delta plus the
/// best peak candidate relative to the span start.
#[derive(Debug, Default)]
pub struct PeakAcc {
    /// Net live-byte change per category over the span.
    delta: BTreeMap<Category, i64>,
    /// Net live-byte change overall.
    delta_total: i64,
    /// Earliest maximum of the running total within the span, with the
    /// per-category live map at that instant (both relative to the span
    /// start).
    peak: Option<(i64, BTreeMap<Category, i64>)>,
}

/// Peak-footprint extraction as a fold — the fused twin of
/// `Trace::peak_live_bytes()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeakFold;

fn peak_push(acc: &mut PeakAcc, e: &MemEvent) {
    let cat = e.mem_kind.category();
    match e.kind {
        EventKind::Malloc => {
            *acc.delta.entry(cat).or_insert(0) += e.size as i64;
            acc.delta_total += e.size as i64;
            let better = acc.peak.as_ref().is_none_or(|(p, _)| acc.delta_total > *p);
            if better {
                acc.peak = Some((acc.delta_total, acc.delta.clone()));
            }
        }
        EventKind::Free => {
            *acc.delta.entry(cat).or_insert(0) -= e.size as i64;
            acc.delta_total -= e.size as i64;
        }
        EventKind::Read | EventKind::Write => {}
    }
}

/// Columnar twin of [`peak_push`] shared by [`PeakFold`] and
/// [`BreakdownFold`]: the meta column's 2-bit kind code (malloc = 0,
/// free = 1) rules out accesses with one byte test, so in access-heavy
/// traces — the paper's regime — the vast majority of events are skipped
/// without ever being materialized.
fn peak_push_batch(acc: &mut PeakAcc, batch: &ColumnBatch, pred: &Predicate) {
    let meta = batch.meta();
    for (i, &m) in meta.iter().enumerate() {
        if m & 0b11 > 1 {
            continue;
        }
        let e = batch.event(i);
        if pred.matches_event(&e) {
            peak_push(acc, &e);
        }
    }
}

fn peak_merge(a: PeakAcc, mut b: PeakAcc) -> PeakAcc {
    // Rebase B's candidate onto A's closing totals; keep A's candidate
    // on ties so the *earliest* maximum wins, like the sequential scan.
    let cand_b = b.peak.take().map(|(pt, pc)| {
        let mut abs = a.delta.clone();
        for (c, v) in pc {
            *abs.entry(c).or_insert(0) += v;
        }
        (a.delta_total + pt, abs)
    });
    let peak = match (a.peak, cand_b) {
        (Some(pa), Some(pb)) => Some(if pb.0 > pa.0 { pb } else { pa }),
        (x, y) => x.or(y),
    };
    let mut delta = a.delta;
    for (c, v) in b.delta {
        *delta.entry(c).or_insert(0) += v;
    }
    PeakAcc {
        delta,
        delta_total: a.delta_total + b.delta_total,
        peak,
    }
}

/// Builds the final [`PeakUsage`] exactly like the sequential scan
/// (candidates that never exceed zero report an all-zero peak).
fn peak_usage(acc: PeakAcc) -> PeakUsage {
    let (peak_total, at_peak) = match acc.peak {
        Some((p, cats)) if p > 0 => (p, cats),
        _ => (0, BTreeMap::new()),
    };
    PeakUsage {
        peak_total_bytes: peak_total.max(0) as u64,
        at_peak_by_category: Category::ALL
            .iter()
            .map(|c| (*c, at_peak.get(c).copied().unwrap_or(0).max(0) as u64))
            .collect(),
    }
}

impl EventFold for PeakFold {
    type Acc = PeakAcc;
    type Output = PeakUsage;

    /// Only allocation events move the live total — chunks of pure
    /// accesses are prunable for this fold.
    fn predicate(&self) -> Predicate {
        Predicate::any()
            .with_kind(EventKind::Malloc)
            .with_kind(EventKind::Free)
    }
    fn new_acc(&self) -> PeakAcc {
        PeakAcc::default()
    }
    fn push(&self, acc: &mut PeakAcc, e: &MemEvent) {
        peak_push(acc, e);
    }
    fn merge(&self, a: PeakAcc, b: PeakAcc) -> PeakAcc {
        peak_merge(a, b)
    }
    fn finish(&self, acc: PeakAcc) -> PeakUsage {
        peak_usage(acc)
    }
    fn push_batch(&self, acc: &mut PeakAcc, batch: &ColumnBatch, pred: &Predicate) {
        peak_push_batch(acc, batch, pred);
    }
    fn columnar(&self) -> bool {
        true
    }
}

/// One breakdown-figure row as a fold — the fused twin of
/// [`BreakdownRow::from_trace`]. Shares [`PeakAcc`] with [`PeakFold`].
#[derive(Debug, Clone)]
pub struct BreakdownFold {
    /// Row label (the profile/config name in Figs. 5–7).
    pub label: String,
}

impl EventFold for BreakdownFold {
    type Acc = PeakAcc;
    type Output = BreakdownRow;

    fn predicate(&self) -> Predicate {
        PeakFold.predicate()
    }
    fn new_acc(&self) -> PeakAcc {
        PeakAcc::default()
    }
    fn push(&self, acc: &mut PeakAcc, e: &MemEvent) {
        peak_push(acc, e);
    }
    fn merge(&self, a: PeakAcc, b: PeakAcc) -> PeakAcc {
        peak_merge(a, b)
    }
    fn push_batch(&self, acc: &mut PeakAcc, batch: &ColumnBatch, pred: &Predicate) {
        peak_push_batch(acc, batch, pred);
    }
    fn columnar(&self) -> bool {
        true
    }
    fn finish(&self, acc: PeakAcc) -> BreakdownRow {
        let peak = peak_usage(acc);
        BreakdownRow {
            label: self.label.clone(),
            peak_bytes: peak.peak_total_bytes,
            input_bytes: peak.bytes(Category::InputData),
            parameter_bytes: peak.bytes(Category::Parameters),
            intermediate_bytes: peak.bytes(Category::Intermediates),
        }
    }
}

/// Per-block state of the Gantt fold, mirroring one
/// `Trace::lifetimes()` entry without the access list.
#[derive(Debug, Clone, Copy)]
struct GanttBlockState {
    /// (time, size, offset, kind) of the block's first event of any kind.
    first: (u64, usize, usize, MemoryKind),
    /// Last malloc's (time, size, offset, kind); overrides `first`.
    malloc: Option<(u64, usize, usize, MemoryKind)>,
    /// Last free's time.
    free_time_ns: Option<u64>,
}

/// Accumulator of [`GanttFold`].
#[derive(Debug, Default)]
pub struct GanttAcc {
    blocks: BTreeMap<BlockId, GanttBlockState>,
    /// Time of the last event seen (lifetime end of never-freed blocks).
    end_time_ns: Option<u64>,
}

/// Gantt-rectangle extraction as a fold — the fused twin of
/// [`crate::gantt_rects`], restricted to lifetimes intersecting
/// `[t_start, t_end]`.
#[derive(Debug, Clone, Copy)]
pub struct GanttFold {
    /// Window start (inclusive).
    pub t_start: u64,
    /// Window end (inclusive).
    pub t_end: u64,
}

impl EventFold for GanttFold {
    type Acc = GanttAcc;
    type Output = Vec<GanttRect>;

    /// Everything: never-freed blocks extend to the trace's last event of
    /// *any* kind, and a block's fallback geometry comes from its first
    /// event of any kind — so even chunks outside the window matter.
    fn predicate(&self) -> Predicate {
        Predicate::any()
    }
    fn new_acc(&self) -> GanttAcc {
        GanttAcc::default()
    }
    fn push(&self, acc: &mut GanttAcc, e: &MemEvent) {
        acc.end_time_ns = Some(e.time_ns);
        let st = acc.blocks.entry(e.block).or_insert(GanttBlockState {
            first: (e.time_ns, e.size, e.offset, e.mem_kind),
            malloc: None,
            free_time_ns: None,
        });
        match e.kind {
            EventKind::Malloc => st.malloc = Some((e.time_ns, e.size, e.offset, e.mem_kind)),
            EventKind::Free => st.free_time_ns = Some(e.time_ns),
            EventKind::Read | EventKind::Write => {}
        }
    }
    fn merge(&self, mut a: GanttAcc, b: GanttAcc) -> GanttAcc {
        for (block, sb) in b.blocks {
            match a.blocks.entry(block) {
                Entry::Vacant(v) => {
                    v.insert(sb);
                }
                Entry::Occupied(mut o) => {
                    let sa = o.get_mut();
                    sa.malloc = sb.malloc.or(sa.malloc);
                    sa.free_time_ns = sb.free_time_ns.or(sa.free_time_ns);
                }
            }
        }
        a.end_time_ns = b.end_time_ns.or(a.end_time_ns);
        a
    }
    fn finish(&self, acc: GanttAcc) -> Vec<GanttRect> {
        let end = acc.end_time_ns.unwrap_or(0);
        let mut rects: Vec<GanttRect> = acc
            .blocks
            .iter()
            .map(|(block, st)| {
                let (t0_ns, size, offset, mem_kind) = st.malloc.unwrap_or(st.first);
                GanttRect {
                    block: *block,
                    t0_ns,
                    t1_ns: st.free_time_ns.unwrap_or(end),
                    offset,
                    size,
                    mem_kind,
                }
            })
            .filter(|r| r.t1_ns >= self.t_start && r.t0_ns <= self.t_end)
            .collect();
        rects.sort_by_key(|r| (r.t0_ns, r.offset));
        rects
    }
}

/// Fig. 4 outlier sifting as a fold — the fused twin of
/// [`AtiDataset::from_trace`] + [`sift`]. Shares [`AtiAcc`] with
/// [`AtiFold`].
#[derive(Debug, Clone, Copy)]
pub struct OutlierFold {
    /// The high-ATI × large-size thresholds to sift with.
    pub criteria: OutlierCriteria,
}

impl EventFold for OutlierFold {
    type Acc = AtiAcc;
    type Output = OutlierReport;

    fn predicate(&self) -> Predicate {
        AtiFold.predicate()
    }
    fn new_acc(&self) -> AtiAcc {
        AtiAcc::default()
    }
    fn push(&self, acc: &mut AtiAcc, e: &MemEvent) {
        ati_push(acc, e);
    }
    fn merge(&self, a: AtiAcc, b: AtiAcc) -> AtiAcc {
        ati_merge(a, b)
    }
    fn finish(&self, acc: AtiAcc) -> OutlierReport {
        sift(&ati_dataset(acc), self.criteria)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::Trace;

    fn mixed_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..30u64 {
            let b = BlockId(i % 7);
            t.record(
                i * 10,
                EventKind::Malloc,
                b,
                ((i % 7 + 1) * 100) as usize,
                (i * 64) as usize,
                MemoryKind::Activation,
                None,
            );
            t.record(
                i * 10 + 3,
                EventKind::Write,
                b,
                ((i % 7 + 1) * 100) as usize,
                (i * 64) as usize,
                MemoryKind::Activation,
                None,
            );
            t.record(
                i * 10 + 7,
                EventKind::Read,
                b,
                ((i % 7 + 1) * 100) as usize,
                (i * 64) as usize,
                MemoryKind::Activation,
                None,
            );
            if i % 3 == 0 {
                t.record(
                    i * 10 + 9,
                    EventKind::Free,
                    b,
                    ((i % 7 + 1) * 100) as usize,
                    (i * 64) as usize,
                    MemoryKind::Activation,
                    None,
                );
            }
        }
        t
    }

    #[test]
    fn fused_trace_run_matches_standalone_passes() {
        let t = mixed_trace();
        let mut pipe = FusedPipeline::new();
        let ati = pipe.register(AtiFold);
        let peak = pipe.register(PeakFold);
        let end = t.end_time_ns();
        let gantt = pipe.register(GanttFold {
            t_start: 0,
            t_end: end,
        });
        for threads in [1, 4] {
            let mut out = pipe.run_trace(&t, threads);
            assert_eq!(
                out.take(ati),
                AtiDataset::from_trace(&t),
                "threads={threads}"
            );
            assert_eq!(out.take(peak), t.peak_live_bytes(), "threads={threads}");
            assert_eq!(
                out.take(gantt),
                crate::gantt_rects(&t, 0, end),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn a_fired_cancel_token_aborts_fused_runs_under_any_policy() {
        let t = mixed_trace();
        let mut bytes = Vec::new();
        pinpoint_store::write_store_chunked(&t, &mut bytes, 16).unwrap();
        let mut reader = StoreReader::new(std::io::Cursor::new(bytes.clone())).unwrap();
        let shared = pinpoint_store::SharedStoreReader::from_bytes(bytes).unwrap();
        let mut pipe = FusedPipeline::new();
        let peak = pipe.register(PeakFold);
        pipe.set_read_policy(ReadPolicy::Salvage);
        pipe.set_cancel(pinpoint_store::CancelToken::new(|| true));
        let err = pipe.run_store(&mut reader, 1).unwrap_err();
        assert!(err.to_string().contains("cancelled"), "{err}");
        let index = shared.footer().chunks.clone();
        let err = pipe
            .run_chunks(&index, 1, ReadPolicy::Salvage, |i, _| {
                shared.decode_chunk(i).map(std::sync::Arc::new)
            })
            .unwrap_err();
        assert!(matches!(err, StoreError::Cancelled), "{err}");

        // a fetch that observes its own deadline propagates Cancelled
        // even under Salvage — the serve daemon's checkpoint path
        pipe.set_cancel(pinpoint_store::CancelToken::never());
        let err = pipe
            .run_chunks(&index, 1, ReadPolicy::Salvage, |_, _| {
                Err(StoreError::Cancelled)
            })
            .unwrap_err();
        assert!(matches!(err, StoreError::Cancelled), "{err}");

        // disarmed, the same pipeline answers fully again
        let mut out = pipe
            .run_chunks(&index, 1, ReadPolicy::Salvage, |i, _| {
                shared.decode_chunk(i).map(std::sync::Arc::new)
            })
            .unwrap();
        assert_eq!(out.take(peak), t.peak_live_bytes());
    }

    #[test]
    fn union_predicate_is_the_hull_of_registered_folds() {
        let mut pipe = FusedPipeline::new();
        pipe.register(PeakFold);
        pipe.register(BreakdownFold { label: "x".into() });
        // alloc-only folds keep the alloc-only mask...
        let u = pipe.union_predicate();
        assert_eq!(u, PeakFold.predicate());
        // ...until an everything-fold joins.
        pipe.register(AtiFold);
        assert_eq!(pipe.union_predicate(), Predicate::any());
    }

    #[test]
    fn empty_pipeline_and_empty_trace_are_fine() {
        let pipe = FusedPipeline::new();
        let out = pipe.run_trace(&Trace::new(), 4);
        assert_eq!(out.stats().chunks_total, 0);

        let mut pipe = FusedPipeline::new();
        let peak = pipe.register(PeakFold);
        let mut out = pipe.run_trace(&Trace::new(), 4);
        assert_eq!(out.take(peak).peak_total_bytes, 0);
    }
}
