//! Gantt-chart extraction and fragmentation measurement (Fig. 2).
//!
//! Each rectangle is one block: x-extent from malloc to free (lifetime),
//! y-extent from device offset to offset+size. Blank vertical space between
//! live rectangles is device memory fragmentation.

use pinpoint_trace::{BlockId, MemoryKind, Trace};

/// One rectangle of the Gantt chart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GanttRect {
    /// Block identity.
    pub block: BlockId,
    /// Lifetime start (malloc time).
    pub t0_ns: u64,
    /// Lifetime end (free time, or trace end for never-freed blocks).
    pub t1_ns: u64,
    /// Device offset (y start).
    pub offset: usize,
    /// Size in bytes (y extent).
    pub size: usize,
    /// Content tag.
    pub mem_kind: MemoryKind,
}

/// Extracts the Gantt rectangles of all blocks whose lifetime intersects
/// `[t_start, t_end]`, sorted by start time then offset.
pub fn gantt_rects(trace: &Trace, t_start: u64, t_end: u64) -> Vec<GanttRect> {
    let end = trace.end_time_ns();
    let mut rects: Vec<GanttRect> = trace
        .lifetimes()
        .values()
        .map(|lt| GanttRect {
            block: lt.block,
            t0_ns: lt.malloc_time_ns,
            t1_ns: lt.free_time_ns.unwrap_or(end),
            offset: lt.offset,
            size: lt.size,
            mem_kind: lt.mem_kind,
        })
        .filter(|r| r.t1_ns >= t_start && r.t0_ns <= t_end)
        .collect();
    rects.sort_by_key(|r| (r.t0_ns, r.offset));
    rects
}

/// Fragmentation of the device address space at instant `t`: the live
/// rectangles at `t`, the gaps between them, and summary ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentationSnapshot {
    /// Time of the snapshot.
    pub time_ns: u64,
    /// Bytes occupied by live blocks.
    pub live_bytes: usize,
    /// Extent of the address space in use (max offset+size of live blocks).
    pub span_bytes: usize,
    /// Gap bytes inside the span (blank y-space in Fig. 2).
    pub gap_bytes: usize,
    /// Number of distinct gaps.
    pub gap_count: usize,
}

impl FragmentationSnapshot {
    /// Fraction of the in-use span that is gaps (0 when nothing is live).
    pub fn gap_fraction(&self) -> f64 {
        if self.span_bytes == 0 {
            0.0
        } else {
            self.gap_bytes as f64 / self.span_bytes as f64
        }
    }
}

/// Computes the fragmentation snapshot at instant `t` from Gantt rects.
pub fn fragmentation_at(rects: &[GanttRect], t: u64) -> FragmentationSnapshot {
    let mut live: Vec<&GanttRect> = rects
        .iter()
        .filter(|r| r.t0_ns <= t && t < r.t1_ns)
        .collect();
    live.sort_by_key(|r| r.offset);
    let mut live_bytes = 0usize;
    let mut gap_bytes = 0usize;
    let mut gap_count = 0usize;
    let mut cursor = None::<usize>;
    let mut span_end = 0usize;
    for r in &live {
        live_bytes += r.size;
        if let Some(end) = cursor {
            if r.offset > end {
                gap_bytes += r.offset - end;
                gap_count += 1;
            }
        }
        cursor = Some(cursor.map_or(r.offset + r.size, |e| e.max(r.offset + r.size)));
        span_end = span_end.max(r.offset + r.size);
    }
    let span_start = live.first().map(|r| r.offset).unwrap_or(0);
    FragmentationSnapshot {
        time_ns: t,
        live_bytes,
        span_bytes: span_end.saturating_sub(span_start),
        gap_bytes,
        gap_count,
    }
}

/// Sweeps fragmentation over `samples` evenly spaced instants of the trace
/// and returns the snapshot with the worst gap fraction.
pub fn worst_fragmentation(trace: &Trace, samples: usize) -> FragmentationSnapshot {
    let rects = gantt_rects(trace, 0, trace.end_time_ns());
    let end = trace.end_time_ns().max(1);
    let mut worst = fragmentation_at(&rects, 0);
    for i in 1..=samples {
        let t = end * i as u64 / samples.max(1) as u64;
        let snap = fragmentation_at(&rects, t);
        if snap.gap_fraction() > worst.gap_fraction() {
            worst = snap;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::EventKind;

    fn block(t: &mut Trace, id: u64, t0: u64, t1: Option<u64>, offset: usize, size: usize) {
        t.record(
            t0,
            EventKind::Malloc,
            BlockId(id),
            size,
            offset,
            MemoryKind::Activation,
            None,
        );
        if let Some(t1) = t1 {
            t.record(
                t1,
                EventKind::Free,
                BlockId(id),
                size,
                offset,
                MemoryKind::Activation,
                None,
            );
        }
    }

    #[test]
    fn rects_cover_window_intersections() {
        let mut t = Trace::new();
        block(&mut t, 0, 0, Some(10), 0, 100);
        block(&mut t, 1, 5, Some(50), 200, 100);
        block(&mut t, 2, 60, None, 0, 100);
        let rects = gantt_rects(&t, 0, 20);
        assert_eq!(rects.len(), 2);
        let rects_all = gantt_rects(&t, 0, u64::MAX);
        assert_eq!(rects_all.len(), 3);
        // never-freed block extends to trace end
        assert_eq!(rects_all[2].t1_ns, t.end_time_ns());
    }

    #[test]
    fn fragmentation_counts_gaps_between_live_blocks() {
        let mut t = Trace::new();
        block(&mut t, 0, 0, Some(1000), 0, 100);
        block(&mut t, 1, 0, Some(1000), 200, 100); // gap of 100 at [100, 200)
        block(&mut t, 2, 0, Some(1000), 300, 100); // contiguous with block 1
        let rects = gantt_rects(&t, 0, u64::MAX);
        let snap = fragmentation_at(&rects, 500);
        assert_eq!(snap.live_bytes, 300);
        assert_eq!(snap.span_bytes, 400);
        assert_eq!(snap.gap_bytes, 100);
        assert_eq!(snap.gap_count, 1);
        assert!((snap.gap_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_instant_has_zero_fragmentation() {
        let mut t = Trace::new();
        block(&mut t, 0, 10, Some(20), 0, 100);
        let rects = gantt_rects(&t, 0, u64::MAX);
        let snap = fragmentation_at(&rects, 5);
        assert_eq!(snap.live_bytes, 0);
        assert_eq!(snap.gap_fraction(), 0.0);
    }

    #[test]
    fn worst_fragmentation_finds_the_gap() {
        let mut t = Trace::new();
        block(&mut t, 0, 0, Some(100), 0, 100);
        block(&mut t, 1, 0, Some(200), 100, 100);
        block(&mut t, 2, 0, Some(200), 200, 100);
        // after t=100 block 0's slot is a hole below blocks 1 and 2? no —
        // hole is *before* the first live block, which span ignores; make a
        // middle hole instead: free block 1 early
        let mut t2 = Trace::new();
        block(&mut t2, 0, 0, Some(200), 0, 100);
        block(&mut t2, 1, 0, Some(100), 100, 100);
        block(&mut t2, 2, 0, Some(200), 200, 100);
        let worst = worst_fragmentation(&t2, 10);
        assert!(worst.gap_fraction() > 0.3, "{worst:?}");
        let _ = t;
    }
}
