//! Iterative-pattern detection (the paper's first observation).
//!
//! Fig. 2 shows that training iterations produce the same memory behaviors
//! at the same offsets, period after period. This module verifies that
//! claim programmatically: it splits a trace at its iteration markers and
//! compares the per-iteration event signatures.

use pinpoint_trace::{EventKind, Trace};

/// Result of the periodicity check.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeReport {
    /// Iterations found (marker count with the `iter:` prefix).
    pub iterations: usize,
    /// Steady-state iterations (from the second onward) whose event
    /// signature matches the second iteration exactly.
    pub matching_iterations: usize,
    /// Whether every steady-state iteration matched.
    pub periodic: bool,
    /// Mean steady-state period in nanoseconds.
    pub mean_period_ns: f64,
    /// Coefficient of variation of the period (jitter measure).
    pub period_cv: f64,
    /// Events per steady-state iteration.
    pub events_per_iteration: usize,
}

/// One iteration's signature: the ordered `(kind, size, offset)` triples of
/// its events. Offsets included deliberately — the caching allocator should
/// reuse the *same addresses* every iteration.
fn signature(trace: &Trace, i: usize) -> Vec<(EventKind, usize, usize)> {
    trace
        .events_of_marker(i)
        .iter()
        .map(|e| (e.kind, e.size, e.offset))
        .collect()
}

/// Checks whether a training trace is iteration-periodic.
///
/// Iteration 0 is excluded from matching (it warms the allocator cache,
/// exactly as in the paper's first iteration).
pub fn detect(trace: &Trace) -> IterativeReport {
    let iter_markers: Vec<usize> = (0..trace.markers().len())
        .filter(|&i| trace.markers()[i].label.starts_with("iter:"))
        .collect();
    let iterations = iter_markers.len();
    if iterations < 3 {
        return IterativeReport {
            iterations,
            matching_iterations: 0,
            periodic: false,
            mean_period_ns: 0.0,
            period_cv: 0.0,
            events_per_iteration: 0,
        };
    }
    let reference = signature(trace, iter_markers[1]);
    let mut matching = 0usize;
    for &m in &iter_markers[1..] {
        if signature(trace, m) == reference {
            matching += 1;
        }
    }
    // periods between consecutive iteration markers (steady state)
    let times: Vec<u64> = iter_markers
        .iter()
        .map(|&m| trace.markers()[m].time_ns)
        .collect();
    let periods: Vec<f64> = times[1..]
        .windows(2)
        .map(|w| (w[1] - w[0]) as f64)
        .collect();
    let mean = periods.iter().sum::<f64>() / periods.len() as f64;
    let var = periods.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / periods.len() as f64;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    IterativeReport {
        iterations,
        matching_iterations: matching,
        periodic: matching == iterations - 1,
        mean_period_ns: mean,
        period_cv: cv,
        events_per_iteration: reference.len(),
    }
}

/// Marker-free period detection: finds the dominant repetition length of
/// the trace's *malloc signature sequence* by exact autocorrelation.
///
/// The paper's traces come from instrumentation without explicit iteration
/// markers; this recovers the period directly from the behaviors. Returns
/// the smallest lag `p` (in malloc events) such that, ignoring a warm-up
/// prefix of one period, `signature[i] == signature[i + p]` for all
/// comparable `i` — or `None` when no lag up to `max_lag` repeats.
pub fn period_from_mallocs(trace: &Trace, max_lag: usize) -> Option<usize> {
    let sig: Vec<(usize, usize)> = trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Malloc)
        .map(|e| (e.size, e.offset))
        .collect();
    if sig.len() < 4 {
        return None;
    }
    for lag in 1..=max_lag.min(sig.len() / 2) {
        // skip one period of warm-up, then require exact repetition
        let start = lag;
        if sig.len() - start < 2 * lag {
            break;
        }
        if (start..sig.len() - lag).all(|i| sig[i] == sig[i + lag]) {
            return Some(lag);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::{BlockId, MemoryKind};

    fn periodic_trace(iters: usize) -> Trace {
        let mut t = Trace::new();
        let mut clock = 0u64;
        for i in 0..iters {
            t.mark(clock, format!("iter:{i}"));
            let b = BlockId(i as u64);
            t.record(
                clock,
                EventKind::Malloc,
                b,
                4096,
                0,
                MemoryKind::Activation,
                None,
            );
            clock += 10_000;
            t.record(
                clock,
                EventKind::Write,
                b,
                4096,
                0,
                MemoryKind::Activation,
                None,
            );
            clock += 15_000;
            t.record(
                clock,
                EventKind::Read,
                b,
                4096,
                0,
                MemoryKind::Activation,
                None,
            );
            t.record(
                clock,
                EventKind::Free,
                b,
                4096,
                0,
                MemoryKind::Activation,
                None,
            );
            clock += 5_000;
        }
        t
    }

    #[test]
    fn detects_perfect_periodicity() {
        let t = periodic_trace(5);
        let r = detect(&t);
        assert!(r.periodic);
        assert_eq!(r.iterations, 5);
        assert_eq!(r.matching_iterations, 4);
        assert_eq!(r.events_per_iteration, 4);
        assert!((r.mean_period_ns - 30_000.0).abs() < 1.0);
        assert!(r.period_cv < 1e-9);
    }

    #[test]
    fn detects_a_break_in_the_pattern() {
        let mut t = periodic_trace(4);
        // a rogue extra allocation in the last iteration
        let end = t.end_time_ns();
        t.record(
            end,
            EventKind::Malloc,
            BlockId(999),
            1 << 20,
            1 << 20,
            MemoryKind::Other,
            None,
        );
        let r = detect(&t);
        assert!(!r.periodic);
        assert_eq!(r.matching_iterations, 2); // iters 1, 2 match; 3 does not
    }

    #[test]
    fn too_few_iterations_is_not_periodic() {
        let t = periodic_trace(2);
        assert!(!detect(&t).periodic);
    }

    #[test]
    fn period_recovered_without_markers() {
        // 3 mallocs per iteration with distinct sizes; 6 iterations
        let mut t = Trace::new();
        let mut clock = 0u64;
        let mut id = 0u64;
        for _ in 0..6 {
            for (k, size) in [512usize, 4096, 1024].iter().enumerate() {
                let b = BlockId(id);
                id += 1;
                t.record(
                    clock,
                    EventKind::Malloc,
                    b,
                    *size,
                    k * 8192,
                    MemoryKind::Activation,
                    None,
                );
                clock += 1_000;
                t.record(
                    clock,
                    EventKind::Free,
                    b,
                    *size,
                    k * 8192,
                    MemoryKind::Activation,
                    None,
                );
            }
        }
        assert_eq!(period_from_mallocs(&t, 16), Some(3));
    }

    #[test]
    fn period_detection_tolerates_warmup() {
        // iteration 0 has an extra warm-up malloc; steady state = 2/iter
        let mut t = Trace::new();
        let mut clock = 0u64;
        let mut id = 0u64;
        let push = |t: &mut Trace, clock: &mut u64, id: &mut u64, size: usize, off: usize| {
            t.record(
                *clock,
                EventKind::Malloc,
                BlockId(*id),
                size,
                off,
                MemoryKind::Activation,
                None,
            );
            *clock += 500;
            t.record(
                *clock,
                EventKind::Free,
                BlockId(*id),
                size,
                off,
                MemoryKind::Activation,
                None,
            );
            *id += 1;
        };
        push(&mut t, &mut clock, &mut id, 99_999, 0); // warm-up only
        for _ in 0..5 {
            push(&mut t, &mut clock, &mut id, 512, 0);
            push(&mut t, &mut clock, &mut id, 2048, 4096);
        }
        // lag 1 fails (sizes alternate); lag 2 holds after skipping the
        // first period
        assert_eq!(period_from_mallocs(&t, 8), Some(2));
    }

    #[test]
    fn aperiodic_sequences_yield_none() {
        let mut t = Trace::new();
        for i in 0..10u64 {
            t.record(
                i * 100,
                EventKind::Malloc,
                BlockId(i),
                512 * (i as usize + 1), // strictly growing sizes
                0,
                MemoryKind::Activation,
                None,
            );
        }
        assert_eq!(period_from_mallocs(&t, 5), None);
    }

    #[test]
    fn offset_change_breaks_periodicity() {
        // same sizes but different offsets (a non-caching allocator) must
        // not count as the Fig. 2 pattern
        let mut t = Trace::new();
        let mut clock = 0u64;
        for i in 0..4u64 {
            t.mark(clock, format!("iter:{i}"));
            let b = BlockId(i);
            let offset = (i as usize) * 4096; // drifting addresses
            t.record(
                clock,
                EventKind::Malloc,
                b,
                4096,
                offset,
                MemoryKind::Activation,
                None,
            );
            clock += 10_000;
            t.record(
                clock,
                EventKind::Free,
                b,
                4096,
                offset,
                MemoryKind::Activation,
                None,
            );
            clock += 5_000;
        }
        assert!(!detect(&t).periodic);
    }
}
