//! Gaussian kernel density estimation and violin-plot statistics (Fig. 3b).

/// Summary statistics + density trace of one violin (Hintze & Nelson [8]).
#[derive(Debug, Clone, PartialEq)]
pub struct ViolinStats {
    /// Sample count.
    pub count: usize,
    /// Minimum sample.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum sample.
    pub max: f64,
    /// `(x, density)` pairs of the Gaussian KDE evaluated on an even grid
    /// over `[min, max]`.
    pub density: Vec<(f64, f64)>,
}

/// Computes violin statistics for `samples` with a KDE evaluated at
/// `grid_points` positions. Bandwidth follows Silverman's rule of thumb.
///
/// Returns `None` for an empty sample set.
pub fn violin(samples: &[f64], grid_points: usize) -> Option<ViolinStats> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    violin_sorted(&sorted, grid_points)
}

/// [`violin`] for samples already in ascending order (e.g. straight from
/// [`crate::AtiDataset::sorted_intervals_ns`]) — skips the per-call sort.
///
/// # Panics
///
/// Panics (debug builds only) if `sorted` is not ascending.
pub fn violin_sorted(sorted: &[f64], grid_points: usize) -> Option<ViolinStats> {
    if sorted.is_empty() || grid_points == 0 {
        return None;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "violin_sorted requires ascending samples"
    );
    let n = sorted.len();
    let quantile = |p: f64| -> f64 {
        let idx = p * (n - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            sorted[lo] + (sorted[hi] - sorted[lo]) * (idx - lo as f64)
        }
    };
    let (min, max) = (sorted[0], sorted[n - 1]);
    let mean: f64 = sorted.iter().sum::<f64>() / n as f64;
    let var: f64 = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    let std = var.sqrt();
    // Silverman's rule; fall back to a span-based width for degenerate data
    let mut bandwidth = 1.06 * std * (n as f64).powf(-0.2);
    if bandwidth <= 0.0 {
        bandwidth = ((max - min) / grid_points as f64).max(1.0);
    }
    let density = kde_on_grid(sorted, min, max, grid_points, bandwidth);
    Some(ViolinStats {
        count: n,
        min,
        q1: quantile(0.25),
        median: quantile(0.5),
        q3: quantile(0.75),
        max,
        density,
    })
}

/// Evaluates a Gaussian KDE on an even grid.
pub fn kde_on_grid(
    samples: &[f64],
    lo: f64,
    hi: f64,
    grid_points: usize,
    bandwidth: f64,
) -> Vec<(f64, f64)> {
    assert!(bandwidth > 0.0, "bandwidth must be positive");
    let n = samples.len() as f64;
    let norm = 1.0 / (n * bandwidth * (2.0 * std::f64::consts::PI).sqrt());
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    (0..grid_points)
        .map(|i| {
            let x = if grid_points == 1 {
                (lo + hi) / 2.0
            } else {
                lo + span * i as f64 / (grid_points - 1) as f64
            };
            let d: f64 = samples
                .iter()
                .map(|&s| {
                    let z = (x - s) / bandwidth;
                    (-0.5 * z * z).exp()
                })
                .sum::<f64>()
                * norm;
            (x, d)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_known_data() {
        let v = violin(&[1.0, 2.0, 3.0, 4.0, 5.0], 16).unwrap();
        assert_eq!(v.count, 5);
        assert_eq!(v.min, 1.0);
        assert_eq!(v.median, 3.0);
        assert_eq!(v.q1, 2.0);
        assert_eq!(v.q3, 4.0);
        assert_eq!(v.max, 5.0);
    }

    #[test]
    fn density_integrates_to_roughly_one() {
        // concentrated cluster like the paper's 10–25 µs band
        let samples: Vec<f64> = (0..500)
            .map(|i| 15_000.0 + (i % 100) as f64 * 100.0)
            .collect();
        let v = violin(&samples, 256).unwrap();
        // trapezoid integral over the evaluated span
        let mut integral = 0.0;
        for w in v.density.windows(2) {
            integral += (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0;
        }
        assert!((0.8..1.1).contains(&integral), "integral = {integral}");
    }

    #[test]
    fn density_peaks_near_the_mode() {
        let mut samples = vec![10.0; 90];
        samples.extend(vec![100.0; 10]);
        let v = violin(&samples, 128).unwrap();
        let peak = v
            .density
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(peak.0 < 30.0, "mode should be near 10, got {}", peak.0);
    }

    #[test]
    fn degenerate_single_value_still_works() {
        let v = violin(&[42.0, 42.0, 42.0], 8).unwrap();
        assert_eq!(v.median, 42.0);
        assert!(v.density.iter().all(|(_, d)| d.is_finite()));
    }

    #[test]
    fn empty_is_none() {
        assert!(violin(&[], 8).is_none());
        assert!(violin(&[1.0], 0).is_none());
    }
}
