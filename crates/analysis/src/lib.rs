//! # pinpoint-analysis
//!
//! Trace analysis for the `pinpoint` reproduction of *"Pinpointing the
//! Memory Behaviors of DNN Training"* (ISPASS 2021) — every quantitative
//! lens the paper applies to its traces:
//!
//! * [`AtiDataset`] — access-time-interval extraction (the central metric);
//! * [`EmpiricalCdf`] — the Fig. 3a CDF;
//! * [`violin`] — the Fig. 3b violin (Gaussian KDE + quartiles);
//! * [`gantt_rects`] / [`fragmentation_at`] — the Fig. 2 Gantt chart and
//!   its blank-space fragmentation measure;
//! * [`detect`] — the iterative-pattern check behind the paper's first
//!   observation;
//! * [`BreakdownRow`] — the Figs. 5–7 occupation breakdown;
//! * [`sift`] — the Fig. 4 outlier sifting (high ATI × large size);
//! * [`assess`] — Equation-1 swap feasibility per behavior;
//! * [`plan`] / [`apply`] — the paper's §IV future work: an automatic,
//!   zero-overhead swap planner driven by the observed access patterns,
//!   plus a transform that materializes a plan into a measurable trace;
//! * [`op_stats`] — per-operator memory-traffic attribution;
//! * [`check_contention`] / [`thin_to_feasible`] — shared-PCIe-link
//!   scheduling of a swap plan (Equation 1 is per-gap; the link is not).
//!
//! Every pass above works on an in-memory [`Trace`](pinpoint_trace::Trace);
//! the [`ati_from_store`] / [`breakdown_from_store`] / [`gantt_from_store`]
//! / [`outliers_from_store`] twins run the same passes straight off an
//! on-disk `.ptrc` store, one chunk at a time, with bit-identical results.
//! Under the hood both directions go through the [`FusedPipeline`] engine,
//! which runs *any* set of passes (expressed as [`EventFold`]s) over a
//! single decode of the trace, pruning chunks with the union of the
//! passes' predicates and merging per-chunk partial states
//! deterministically — register several folds to pay for one scan total
//! instead of one scan per pass.
//!
//! # Examples
//!
//! ```
//! use pinpoint_analysis::{AtiDataset, EmpiricalCdf};
//! use pinpoint_trace::{Trace, EventKind, MemoryKind, BlockId};
//!
//! let mut t = Trace::new();
//! t.record(0, EventKind::Malloc, BlockId(0), 4096, 0, MemoryKind::Activation, None);
//! t.record(1_000, EventKind::Write, BlockId(0), 4096, 0, MemoryKind::Activation, None);
//! t.record(21_000, EventKind::Read, BlockId(0), 4096, 0, MemoryKind::Activation, None);
//!
//! let atis = AtiDataset::from_trace(&t);
//! let cdf = EmpiricalCdf::new(atis.intervals_ns());
//! assert_eq!(cdf.percentile(1.0), 20_000); // a 20 µs ATI
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ati;
mod breakdown;
mod cdf;
mod contention;
mod diff;
mod engine;
mod gantt;
mod iterative;
mod kde;
mod op_stats;
mod outlier;
mod planner;
mod report;
mod store;
mod svg;
mod swap;

pub use ati::{AtiDataset, AtiRecord};
pub use breakdown::{occupancy_timeline, BreakdownRow, OccupancyPoint};
pub use cdf::EmpiricalCdf;
pub use contention::{check_contention, thin_to_feasible, ContentionReport, ScheduledSwap};
pub use diff::{diff_traces, Delta, TraceDiff};
pub use engine::{
    AtiAcc, AtiFold, BreakdownFold, EventFold, FoldHandle, FusedOutputs, FusedPipeline, FusedStats,
    GanttAcc, GanttFold, OutlierFold, PeakAcc, PeakFold,
};
pub use gantt::{
    fragmentation_at, gantt_rects, worst_fragmentation, FragmentationSnapshot, GanttRect,
};
pub use iterative::{detect, period_from_mallocs, IterativeReport};
pub use kde::{kde_on_grid, violin, violin_sorted, ViolinStats};
pub use op_stats::{op_stats, OpMemoryStats};
pub use outlier::{sift, OutlierCriteria, OutlierReport};
pub use planner::{apply, plan, SwapDecision, SwapPlan};
pub use report::{
    query_json, query_json_into, report_json, report_json_into, RenderScratch, TraceReport,
};
pub use store::{
    ati_from_store, breakdown_from_store, gantt_from_store, outliers_from_store, peak_from_store,
};
pub use svg::{gantt_svg, SvgConfig};
pub use swap::{assess, SwapFeasibilityReport, SwapVerdict};
