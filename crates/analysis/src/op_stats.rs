//! Per-op memory-traffic attribution.
//!
//! The trace annotates every behavior with the kernel responsible; this
//! module aggregates by op label, answering "which operators touch the most
//! device memory?" — the operator-level view the paper's future-work cost
//! model would consume.

use pinpoint_trace::{EventKind, Trace};

/// Aggregated memory traffic of one op label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMemoryStats {
    /// The op label (e.g. `"fc0.matmul"`).
    pub label: String,
    /// Read events attributed to the op.
    pub reads: usize,
    /// Write events attributed to the op.
    pub writes: usize,
    /// Mallocs the op triggered (first-touch allocations).
    pub mallocs: usize,
    /// Bytes of blocks read.
    pub bytes_read: u64,
    /// Bytes of blocks written.
    pub bytes_written: u64,
}

impl OpMemoryStats {
    /// Total bytes touched (read + written).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Aggregates the trace's behaviors by op label, sorted by total bytes
/// touched (descending). Events without an op label (frees, markers'
/// neighbors) are skipped.
pub fn op_stats(trace: &Trace) -> Vec<OpMemoryStats> {
    let mut by_label: Vec<OpMemoryStats> = trace
        .labels()
        .iter()
        .map(|l| OpMemoryStats {
            label: l.clone(),
            reads: 0,
            writes: 0,
            mallocs: 0,
            bytes_read: 0,
            bytes_written: 0,
        })
        .collect();
    for e in trace.events() {
        let Some(idx) = e.op_label else { continue };
        let s = &mut by_label[idx as usize];
        match e.kind {
            EventKind::Read => {
                s.reads += 1;
                s.bytes_read += e.size as u64;
            }
            EventKind::Write => {
                s.writes += 1;
                s.bytes_written += e.size as u64;
            }
            EventKind::Malloc => s.mallocs += 1,
            EventKind::Free => {}
        }
    }
    by_label.retain(|s| s.reads + s.writes + s.mallocs > 0);
    by_label.sort_by(|a, b| {
        b.bytes_total()
            .cmp(&a.bytes_total())
            .then(a.label.cmp(&b.label))
    });
    by_label
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::{BlockId, MemoryKind};

    #[test]
    fn aggregates_by_label_and_sorts_by_traffic() {
        let mut t = Trace::new();
        let mm = t.intern_label("matmul");
        let relu = t.intern_label("relu");
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            1000,
            0,
            MemoryKind::Activation,
            Some(mm),
        );
        t.record(
            1,
            EventKind::Write,
            BlockId(0),
            1000,
            0,
            MemoryKind::Activation,
            Some(mm),
        );
        t.record(
            2,
            EventKind::Read,
            BlockId(0),
            1000,
            0,
            MemoryKind::Activation,
            Some(relu),
        );
        t.record(
            3,
            EventKind::Read,
            BlockId(0),
            1000,
            0,
            MemoryKind::Activation,
            Some(mm),
        );
        t.record(
            4,
            EventKind::Free,
            BlockId(0),
            1000,
            0,
            MemoryKind::Activation,
            None,
        );
        let stats = op_stats(&t);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].label, "matmul");
        assert_eq!(stats[0].bytes_total(), 2000);
        assert_eq!(stats[0].mallocs, 1);
        assert_eq!(stats[1].label, "relu");
        assert_eq!(stats[1].reads, 1);
    }

    #[test]
    fn unlabeled_events_are_skipped() {
        let mut t = Trace::new();
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            64,
            0,
            MemoryKind::Other,
            None,
        );
        assert!(op_stats(&t).is_empty());
    }

    #[test]
    fn labels_with_no_events_are_dropped() {
        let mut t = Trace::new();
        let _ = t.intern_label("phantom");
        let real = t.intern_label("real");
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            64,
            0,
            MemoryKind::Other,
            Some(real),
        );
        let stats = op_stats(&t);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].label, "real");
    }
}
