//! Outlier sifting (Fig. 4): memory behaviors with high ATI *and* large
//! block size — "the major contributors in terms of reducing the memory
//! pressure of DNN training".

use crate::ati::{AtiDataset, AtiRecord};

/// Thresholds defining an outlier behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutlierCriteria {
    /// Minimum access-time interval.
    pub min_ati_ns: u64,
    /// Minimum block size in bytes.
    pub min_size_bytes: usize,
}

impl OutlierCriteria {
    /// The paper's Fig. 4 thresholds: ATI > 0.8 s and size > 600 MB.
    pub fn paper_fig4() -> Self {
        OutlierCriteria {
            min_ati_ns: 800_000_000,
            min_size_bytes: 600_000_000,
        }
    }

    /// Whether a record qualifies.
    pub fn matches(&self, r: &AtiRecord) -> bool {
        r.interval_ns > self.min_ati_ns && r.size > self.min_size_bytes
    }
}

/// Outlier-sifting result.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierReport {
    /// Criteria used.
    pub criteria: OutlierCriteria,
    /// Total behaviors examined.
    pub total_behaviors: usize,
    /// The qualifying outlier behaviors.
    pub outliers: Vec<AtiRecord>,
}

impl OutlierReport {
    /// Fraction of behaviors that are outliers.
    pub fn outlier_fraction(&self) -> f64 {
        if self.total_behaviors == 0 {
            0.0
        } else {
            self.outliers.len() as f64 / self.total_behaviors as f64
        }
    }

    /// The single largest-ATI outlier (the paper's red-marked point).
    pub fn most_extreme(&self) -> Option<&AtiRecord> {
        self.outliers.iter().max_by_key(|r| r.interval_ns)
    }
}

/// Sifts a dataset for outliers under `criteria`.
pub fn sift(dataset: &AtiDataset, criteria: OutlierCriteria) -> OutlierReport {
    let outliers: Vec<AtiRecord> = dataset
        .records()
        .iter()
        .copied()
        .filter(|r| criteria.matches(r))
        .collect();
    OutlierReport {
        criteria,
        total_behaviors: dataset.len(),
        outliers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::{BlockId, EventKind, MemoryKind, Trace};

    fn dataset_with_outlier() -> AtiDataset {
        let mut t = Trace::new();
        // small fast block: 4 KB, 20 µs intervals
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            4096,
            0,
            MemoryKind::Activation,
            None,
        );
        for i in 1..=10u64 {
            t.record(
                i * 20_000,
                EventKind::Read,
                BlockId(0),
                4096,
                0,
                MemoryKind::Activation,
                None,
            );
        }
        // huge slow block: 1.2 GB, 840 ms interval (the paper's red point)
        t.record(
            0,
            EventKind::Malloc,
            BlockId(1),
            1_200_000_000,
            1 << 30,
            MemoryKind::Other,
            None,
        );
        let mut t2 = Trace::new();
        // rebuild in time order (Trace::validate requires it)
        let mut events: Vec<_> = t.events().to_vec();
        events.push(pinpoint_trace::MemEvent {
            time_ns: 1_000,
            kind: EventKind::Write,
            block: BlockId(1),
            size: 1_200_000_000,
            offset: 1 << 30,
            mem_kind: MemoryKind::Other,
            op_label: None,
        });
        events.push(pinpoint_trace::MemEvent {
            time_ns: 840_212_000,
            kind: EventKind::Read,
            block: BlockId(1),
            size: 1_200_000_000,
            offset: 1 << 30,
            mem_kind: MemoryKind::Other,
            op_label: None,
        });
        events.sort_by_key(|e| e.time_ns);
        for e in events {
            t2.push(e);
        }
        AtiDataset::from_trace(&t2)
    }

    #[test]
    fn paper_criteria_finds_only_the_big_slow_block() {
        let d = dataset_with_outlier();
        let report = sift(&d, OutlierCriteria::paper_fig4());
        assert_eq!(report.total_behaviors, 10); // 9 small + 1 big interval
        assert_eq!(report.outliers.len(), 1);
        let worst = report.most_extreme().unwrap();
        assert_eq!(worst.block, BlockId(1));
        assert_eq!(worst.interval_ns, 840_211_000);
        assert!(report.outlier_fraction() < 0.2);
    }

    #[test]
    fn both_conditions_required() {
        let d = dataset_with_outlier();
        // require huge ATI but tiny size: small blocks still fail the ATI bar
        let report = sift(
            &d,
            OutlierCriteria {
                min_ati_ns: 800_000_000,
                min_size_bytes: 0,
            },
        );
        assert_eq!(report.outliers.len(), 1);
        // require big size but no ATI bar: still only the big block
        let report2 = sift(
            &d,
            OutlierCriteria {
                min_ati_ns: 0,
                min_size_bytes: 600_000_000,
            },
        );
        assert_eq!(report2.outliers.len(), 1);
    }

    #[test]
    fn empty_dataset_has_no_outliers() {
        let report = sift(&AtiDataset::default(), OutlierCriteria::paper_fig4());
        assert_eq!(report.outlier_fraction(), 0.0);
        assert!(report.most_extreme().is_none());
    }
}
