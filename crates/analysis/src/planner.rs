//! The swap planner — the paper's stated future work, implemented.
//!
//! §IV: *"we plan to propose a more general approach that takes the memory
//! access patterns as input to automatically address the device memory
//! pressure issues of DNN training with small runtime overhead."*
//!
//! This planner takes a trace, applies Equation 1 (with the per-transfer
//! latency refinement) to every access gap of every block, and schedules
//! evict/prefetch pairs for the gaps where the round trip fits — i.e. zero
//! added critical-path time by construction. It then estimates the peak
//! footprint reduction by re-running the occupancy sweep with the planned
//! out-of-device windows subtracted.

use pinpoint_device::TransferModel;
use pinpoint_trace::{BlockId, EventKind, Trace};

/// One planned swap: evict the block after an access, prefetch it back
/// before the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapDecision {
    /// The block to swap.
    pub block: BlockId,
    /// Block size in bytes.
    pub size: usize,
    /// Time of the access after which eviction starts.
    pub evict_at_ns: u64,
    /// Time of the next access, before which the prefetch must complete.
    pub needed_at_ns: u64,
    /// Start of the out-of-device window (eviction finished).
    pub out_from_ns: u64,
    /// End of the out-of-device window (prefetch starts).
    pub out_until_ns: u64,
}

impl SwapDecision {
    /// Length of the access gap being exploited.
    pub fn interval_ns(&self) -> u64 {
        self.needed_at_ns - self.evict_at_ns
    }

    /// Device bytes freed during the out-of-device window.
    pub fn bytes_saved(&self) -> usize {
        self.size
    }
}

/// A complete swap plan with its estimated effect.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapPlan {
    /// Planned evict/prefetch pairs, in eviction-time order.
    pub decisions: Vec<SwapDecision>,
    /// Peak live bytes without swapping.
    pub baseline_peak_bytes: u64,
    /// Peak live bytes with the plan applied.
    pub planned_peak_bytes: u64,
    /// Total PCIe traffic the plan adds (2 × size per decision).
    pub transfer_bytes: u64,
}

impl SwapPlan {
    /// Absolute peak reduction in bytes.
    pub fn savings_bytes(&self) -> u64 {
        self.baseline_peak_bytes
            .saturating_sub(self.planned_peak_bytes)
    }

    /// Peak reduction as a fraction of the baseline peak.
    pub fn savings_fraction(&self) -> f64 {
        if self.baseline_peak_bytes == 0 {
            0.0
        } else {
            self.savings_bytes() as f64 / self.baseline_peak_bytes as f64
        }
    }
}

/// Builds a zero-overhead swap plan for a trace.
///
/// `min_interval_ns` skips gaps too short to be worth considering (the
/// paper's observation that sub-25 µs ATIs admit only ~79 KB swaps makes
/// small gaps useless; 1 ms is a reasonable floor).
pub fn plan(trace: &Trace, transfer: &TransferModel, min_interval_ns: u64) -> SwapPlan {
    let mut decisions = Vec::new();
    for lt in trace.lifetimes().values() {
        for w in lt.accesses.windows(2) {
            let (t0, t1) = (w[0].0, w[1].0);
            let gap = t1 - t0;
            if gap < min_interval_ns {
                continue;
            }
            let bound = transfer.max_swap_bytes_with_latency(gap);
            if (lt.size as f64) <= bound {
                let d2h = transfer.d2h_time_ns(lt.size);
                let h2d = transfer.h2d_time_ns(lt.size);
                decisions.push(SwapDecision {
                    block: lt.block,
                    size: lt.size,
                    evict_at_ns: t0,
                    needed_at_ns: t1,
                    out_from_ns: t0 + d2h,
                    out_until_ns: t1.saturating_sub(h2d),
                });
            }
        }
    }
    decisions.sort_by_key(|d| (d.evict_at_ns, d.block));
    let baseline_peak_bytes = peak_of(trace, &[]);
    let planned_peak_bytes = peak_of(trace, &decisions);
    let transfer_bytes = decisions.iter().map(|d| 2 * d.size as u64).sum();
    SwapPlan {
        decisions,
        baseline_peak_bytes,
        planned_peak_bytes,
        transfer_bytes,
    }
}

/// Occupancy peak of a trace with the decisions' out-of-device windows
/// subtracted. Ties resolve releases before acquisitions (the allocator can
/// reuse memory freed at the same instant).
fn peak_of(trace: &Trace, decisions: &[SwapDecision]) -> u64 {
    let mut deltas: Vec<(u64, i64)> = Vec::new();
    for e in trace.events() {
        match e.kind {
            EventKind::Malloc => deltas.push((e.time_ns, e.size as i64)),
            EventKind::Free => deltas.push((e.time_ns, -(e.size as i64))),
            _ => {}
        }
    }
    for d in decisions {
        if d.out_until_ns > d.out_from_ns {
            deltas.push((d.out_from_ns, -(d.size as i64)));
            deltas.push((d.out_until_ns, d.size as i64));
        }
    }
    deltas.sort_by_key(|&(t, delta)| (t, delta));
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, delta) in deltas {
        live += delta;
        peak = peak.max(live);
    }
    peak.max(0) as u64
}

/// Materializes a [`SwapPlan`] into a transformed trace, as if the runtime
/// had executed the evictions and prefetches:
///
/// * at each decision's `out_from` the device copy is freed (its d2h
///   completed);
/// * at `out_until` a fresh block is allocated at the same offset and the
///   prefetch's h2d write lands at `needed_at`;
/// * every later behavior of the logical block moves to the fresh block id
///   (a re-malloc is a new block, per the paper's methodology).
///
/// The result validates under [`Trace::validate`] and its measured peak
/// equals the plan's estimate — turning the planner's prediction into an
/// observable trace.
pub fn apply(trace: &Trace, plan: &SwapPlan) -> Trace {
    use pinpoint_trace::MemEvent;
    // decisions per block, in time order
    let mut per_block: std::collections::BTreeMap<BlockId, Vec<&SwapDecision>> =
        std::collections::BTreeMap::new();
    for d in &plan.decisions {
        per_block.entry(d.block).or_default().push(d);
    }
    let mut next_id = trace
        .events()
        .iter()
        .map(|e| e.block.0)
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    // generation ids per block: gen[0] = original id, gen[j] created by
    // decision j
    let mut gen_ids: std::collections::BTreeMap<BlockId, Vec<BlockId>> =
        std::collections::BTreeMap::new();
    for (&b, ds) in &per_block {
        let mut ids = vec![b];
        for _ in ds {
            ids.push(BlockId(next_id));
            next_id += 1;
        }
        gen_ids.insert(b, ids);
    }
    let mut out = Trace::new();
    let swap_out_label = "swap.evict";
    let swap_in_label = "swap.prefetch";
    // assemble: (time, order, event); order breaks timestamp ties so that
    // prefetch writes precede the access that needs them
    let mut staged: Vec<(u64, u8, MemEvent)> = Vec::new();
    let mut label_map: Vec<Option<String>> = Vec::new();
    for e in trace.events() {
        let mut e = e.clone();
        if let Some(ds) = per_block.get(&e.block) {
            let generation = ds.iter().filter(|d| d.needed_at_ns <= e.time_ns).count();
            e.block = gen_ids[&e.block][generation];
        }
        label_map.push(e.op_label.and_then(|i| trace.label(i).map(str::to_string)));
        staged.push((e.time_ns, 1, e));
    }
    for (&b, ds) in &per_block {
        let proto = trace
            .events()
            .iter()
            .find(|e| e.block == b)
            .expect("decision references a traced block");
        for (j, d) in ds.iter().enumerate() {
            let old_id = gen_ids[&b][j];
            let new_id = gen_ids[&b][j + 1];
            let mk = |time_ns, kind, block| MemEvent {
                time_ns,
                kind,
                block,
                size: proto.size,
                offset: proto.offset,
                mem_kind: proto.mem_kind,
                op_label: None,
            };
            // d2h read of the evicted copy at eviction start
            label_map.push(Some(swap_out_label.to_string()));
            staged.push((d.evict_at_ns, 2, mk(d.evict_at_ns, EventKind::Read, old_id)));
            label_map.push(None);
            staged.push((d.out_from_ns, 0, mk(d.out_from_ns, EventKind::Free, old_id)));
            label_map.push(None);
            staged.push((
                d.out_until_ns,
                0,
                mk(d.out_until_ns, EventKind::Malloc, new_id),
            ));
            label_map.push(Some(swap_in_label.to_string()));
            staged.push((
                d.needed_at_ns,
                0,
                mk(d.needed_at_ns, EventKind::Write, new_id),
            ));
        }
    }
    let mut order: Vec<usize> = (0..staged.len()).collect();
    order.sort_by_key(|&i| (staged[i].0, staged[i].1));
    for &i in &order {
        let mut e = staged[i].2.clone();
        e.op_label = label_map[i].as_deref().map(|l| out.intern_label(l));
        out.push(e);
    }
    // markers are intentionally dropped: event indices shift under the
    // transform, and the result is an analysis artifact, not a replay input
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::MemoryKind;

    /// A big block idle for a long gap while a heavy working set churns
    /// *inside* the out-of-device window (evicting 1 GB at 6.4 GB/s takes
    /// ~156 ms, so the churn starts at 250 ms).
    fn trace_with_idle_giant() -> Trace {
        let mut t = Trace::new();
        let big = BlockId(0);
        let size = 1_000_000_000usize; // 1 GB
        t.record(0, EventKind::Malloc, big, size, 0, MemoryKind::Other, None);
        t.record(
            1_000,
            EventKind::Write,
            big,
            size,
            0,
            MemoryKind::Other,
            None,
        );
        // churning working set while the giant is idle
        for i in 0..5u64 {
            let b = BlockId(10 + i);
            let at = 250_000_000 + i * 50_000_000;
            t.record(
                at,
                EventKind::Malloc,
                b,
                800_000_000,
                2 << 30,
                MemoryKind::Activation,
                None,
            );
            t.record(
                at + 1_000_000,
                EventKind::Write,
                b,
                800_000_000,
                2 << 30,
                MemoryKind::Activation,
                None,
            );
            t.record(
                at + 10_000_000,
                EventKind::Free,
                b,
                800_000_000,
                2 << 30,
                MemoryKind::Activation,
                None,
            );
        }
        // the giant is touched again after ~900 ms
        t.record(
            900_000_000,
            EventKind::Read,
            big,
            size,
            0,
            MemoryKind::Other,
            None,
        );
        t.record(
            900_001_000,
            EventKind::Free,
            big,
            size,
            0,
            MemoryKind::Other,
            None,
        );
        t
    }

    #[test]
    fn planner_swaps_the_idle_giant() {
        let t = trace_with_idle_giant();
        let tm = TransferModel::titan_x_pascal_pinned();
        let p = plan(&t, &tm, 1_000_000);
        assert_eq!(p.decisions.len(), 1);
        let d = p.decisions[0];
        assert_eq!(d.block, BlockId(0));
        assert!(d.interval_ns() > 800_000_000);
        // churn must fall inside the out-of-device window
        assert!(d.out_from_ns < 250_000_000, "out from {}", d.out_from_ns);
        assert!(d.out_until_ns > 460_000_000, "out until {}", d.out_until_ns);
        // baseline peak: giant + one churn block; planned: giant alone
        assert_eq!(p.baseline_peak_bytes, 1_800_000_000);
        assert_eq!(p.planned_peak_bytes, 1_000_000_000);
        assert_eq!(p.savings_bytes(), 800_000_000);
        assert!((p.savings_fraction() - 4.0 / 9.0).abs() < 1e-9);
        assert_eq!(p.transfer_bytes, 2_000_000_000);
    }

    #[test]
    fn short_gaps_produce_no_decisions() {
        let mut t = Trace::new();
        let b = BlockId(0);
        t.record(
            0,
            EventKind::Malloc,
            b,
            1 << 20,
            0,
            MemoryKind::Activation,
            None,
        );
        for i in 1..50u64 {
            t.record(
                i * 20_000,
                EventKind::Read,
                b,
                1 << 20,
                0,
                MemoryKind::Activation,
                None,
            );
        }
        let p = plan(&t, &TransferModel::titan_x_pascal_pinned(), 1_000_000);
        assert!(p.decisions.is_empty());
        assert_eq!(p.savings_bytes(), 0);
    }

    #[test]
    fn plan_is_zero_overhead_by_construction() {
        let t = trace_with_idle_giant();
        let tm = TransferModel::titan_x_pascal_pinned();
        let p = plan(&t, &tm, 1_000_000);
        for d in &p.decisions {
            let round_trip = tm.d2h_time_ns(d.size) + tm.h2d_time_ns(d.size);
            assert!(
                round_trip <= d.interval_ns(),
                "decision would slow training: {round_trip} > {}",
                d.interval_ns()
            );
            assert!(d.out_from_ns <= d.out_until_ns);
        }
    }

    #[test]
    fn empty_trace_trivial_plan() {
        let p = plan(&Trace::new(), &TransferModel::default(), 0);
        assert!(p.decisions.is_empty());
        assert_eq!(p.baseline_peak_bytes, 0);
    }

    #[test]
    fn applied_plan_yields_valid_trace_with_the_planned_peak() {
        let t = trace_with_idle_giant();
        let tm = TransferModel::titan_x_pascal_pinned();
        let p = plan(&t, &tm, 1_000_000);
        let transformed = apply(&t, &p);
        transformed
            .validate()
            .expect("transformed trace well-formed");
        // the measured peak of the transformed trace equals the estimate
        assert_eq!(
            transformed.peak_live_bytes().peak_total_bytes,
            p.planned_peak_bytes
        );
        // one decision adds: evict read, free, malloc, prefetch write
        assert_eq!(transformed.len(), t.len() + 4 * p.decisions.len());
        // the swapped block's later accesses moved to a fresh block id
        let lt = transformed.lifetimes();
        let giants: Vec<_> = lt.values().filter(|l| l.size == 1_000_000_000).collect();
        assert_eq!(giants.len(), 2, "original + prefetched generation");
        assert!(giants.iter().all(|g| g.free_time_ns.is_some()));
    }

    #[test]
    fn applying_an_empty_plan_is_identity_on_events() {
        let t = trace_with_idle_giant();
        let empty = SwapPlan {
            decisions: vec![],
            baseline_peak_bytes: 0,
            planned_peak_bytes: 0,
            transfer_bytes: 0,
        };
        let out = apply(&t, &empty);
        assert_eq!(out.len(), t.len());
        for (a, b) in out.events().iter().zip(t.events()) {
            assert_eq!(a.block, b.block);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.time_ns, b.time_ns);
        }
    }
}
