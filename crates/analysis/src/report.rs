//! [`TraceReport`]: every analysis pass of the paper computed over
//! **one** decode of a trace via the fused engine, plus the canonical
//! JSON renderings shared by the CLI and the `pinpoint-serve` daemon.
//!
//! The JSON here is the *wire contract* between the offline tool and the
//! server: both call the same [`report_json`] / [`query_json`] builders,
//! and both feed them results from the same deterministic engine — so a
//! daemon response is byte-identical to the offline subcommand's output
//! on the same store, at any thread count, whatever mix of cache hits
//! served the chunks. To keep that guarantee trivial to audit, the
//! builders emit integers and strings only (no floats), field order is
//! fixed, and every string goes through the in-repo JSON escaper.

use crate::ati::AtiDataset;
use crate::breakdown::BreakdownRow;
use crate::engine::{
    AtiFold, BreakdownFold, FoldHandle, FusedPipeline, FusedStats, GanttFold, OutlierFold, PeakFold,
};
use crate::gantt::GanttRect;
use crate::outlier::{OutlierCriteria, OutlierReport};
use pinpoint_store::{ChunkMeta, ColumnBatch, QueryResult, ReadPolicy, StoreError, StoreReader};
use pinpoint_trace::export::{kind_name, mem_kind_name, write_event_json};
use pinpoint_trace::{json, PeakUsage, Trace};
use std::fmt::Write as _;
use std::io::{self, Read, Seek};
use std::sync::Arc;

/// Every analysis pass of the paper — ATI, peak, breakdown, Gantt,
/// outliers — computed over **one** decode of the trace by the fused
/// engine (the five standalone passes would each rescan it).
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Access-time intervals (Figs. 3–4 input).
    pub ati: AtiDataset,
    /// Peak footprint split by category.
    pub peak: PeakUsage,
    /// Occupation-breakdown row (Figs. 5–7 shape).
    pub breakdown: BreakdownRow,
    /// Gantt rectangles of every block lifetime (Fig. 2).
    pub gantt: Vec<GanttRect>,
    /// Fig. 4 outliers under the given criteria.
    pub outliers: OutlierReport,
    /// Scan accounting: chunks decoded (each exactly once) vs pruned.
    pub stats: FusedStats,
}

/// Builds the five-fold pipeline shared by every `TraceReport` entry
/// point. Handles come back in registration order.
#[allow(clippy::type_complexity)]
fn report_pipeline(
    criteria: OutlierCriteria,
) -> (
    FusedPipeline,
    (
        FoldHandle<AtiDataset>,
        FoldHandle<PeakUsage>,
        FoldHandle<BreakdownRow>,
        FoldHandle<Vec<GanttRect>>,
        FoldHandle<OutlierReport>,
    ),
) {
    let mut pipe = FusedPipeline::new();
    let ati = pipe.register(AtiFold);
    let peak = pipe.register(PeakFold);
    let breakdown = pipe.register(BreakdownFold {
        label: "trace".to_string(),
    });
    let gantt = pipe.register(GanttFold {
        t_start: 0,
        t_end: u64::MAX,
    });
    let outliers = pipe.register(OutlierFold { criteria });
    (pipe, (ati, peak, breakdown, gantt, outliers))
}

impl TraceReport {
    /// Runs all five passes over a `.ptrc` store in one fused scan: each
    /// chunk is decoded exactly once, however many passes consume it.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from the store.
    pub fn from_store<R: Read + Seek>(
        reader: &mut StoreReader<R>,
        criteria: OutlierCriteria,
        threads: usize,
    ) -> io::Result<Self> {
        let (pipe, (ati, peak, breakdown, gantt, outliers)) = report_pipeline(criteria);
        let mut out = pipe.run_store(reader, threads)?;
        Ok(TraceReport {
            ati: out.take(ati),
            peak: out.take(peak),
            breakdown: out.take(breakdown),
            gantt: out.take(gantt),
            outliers: out.take(outliers),
            stats: out.stats().clone(),
        })
    }

    /// Runs all five passes over an in-memory trace in one fused scan —
    /// bit-identical to [`TraceReport::from_store`] on the same trace.
    pub fn from_trace(trace: &Trace, criteria: OutlierCriteria, threads: usize) -> Self {
        let (pipe, (ati, peak, breakdown, gantt, outliers)) = report_pipeline(criteria);
        let mut out = pipe.run_trace(trace, threads);
        TraceReport {
            ati: out.take(ati),
            peak: out.take(peak),
            breakdown: out.take(breakdown),
            gantt: out.take(gantt),
            outliers: out.take(outliers),
            stats: out.stats().clone(),
        }
    }

    /// Runs all five passes over an externally supplied chunk set via
    /// [`FusedPipeline::run_chunks`] — the serve-daemon path, where
    /// `fetch` is a chunk-cache lookup that decodes on miss.
    /// Bit-identical to [`TraceReport::from_store`] on the same store at
    /// any `threads` count, whatever mix of cache hits serves the
    /// batches.
    ///
    /// # Errors
    ///
    /// I/O errors from `fetch` always; corruption errors under
    /// [`ReadPolicy::Strict`].
    pub fn from_chunks<F>(
        index: &[ChunkMeta],
        criteria: OutlierCriteria,
        threads: usize,
        policy: ReadPolicy,
        fetch: F,
    ) -> Result<Self, StoreError>
    where
        F: Fn(usize, &ChunkMeta) -> Result<Arc<ColumnBatch>, StoreError> + Sync,
    {
        let (pipe, (ati, peak, breakdown, gantt, outliers)) = report_pipeline(criteria);
        let mut out = pipe.run_chunks(index, threads, policy, fetch)?;
        Ok(TraceReport {
            ati: out.take(ati),
            peak: out.take(peak),
            breakdown: out.take(breakdown),
            gantt: out.take(gantt),
            outliers: out.take(outliers),
            stats: out.stats().clone(),
        })
    }
}

fn write_opt_str(s: &mut String, v: Option<&str>) {
    match v {
        Some(v) => json::write_str(s, v),
        None => s.push_str("null"),
    }
}

fn write_fused_stats(s: &mut String, st: &FusedStats) {
    let _ = write!(
        s,
        "{{\"chunks_total\":{},\"chunks_pruned\":{},\"chunks_pruned_by_label\":{},\
         \"chunks_decoded\":{},\"chunks_skipped\":{},\"events_scanned\":{},\
         \"events_lost\":{},\"first_error\":",
        st.chunks_total,
        st.chunks_pruned,
        st.chunks_pruned_by_label,
        st.chunks_decoded,
        st.chunks_skipped,
        st.events_scanned,
        st.events_lost,
    );
    write_opt_str(s, st.first_error.as_deref());
    s.push('}');
}

/// Reusable scratch for the JSON renderers, mirroring the store's
/// `DecodeScratch` pattern: one long-lived buffer per worker, cleared and
/// refilled on every render, so a steady-state render allocates nothing
/// once the buffer has grown to the working-set size.
///
/// [`RenderScratch::report`] and [`RenderScratch::query`] produce exactly
/// the bytes of [`report_json`] / [`query_json`] — the scratch only
/// changes where the `String` lives, never a byte of the wire contract.
#[derive(Debug, Default)]
pub struct RenderScratch {
    buf: String,
}

impl RenderScratch {
    /// An empty scratch; the buffer grows on first use and is kept.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders a report into the reused buffer; same bytes as
    /// [`report_json`].
    pub fn report(&mut self, d: &TraceReport, max_rects: usize) -> &str {
        self.buf.clear();
        report_json_into(d, max_rects, &mut self.buf);
        &self.buf
    }

    /// Renders a query result into the reused buffer; same bytes as
    /// [`query_json`].
    pub fn query(&mut self, q: &QueryResult, limit: usize) -> &str {
        self.buf.clear();
        query_json_into(q, limit, &mut self.buf);
        &self.buf
    }

    /// Current buffer capacity, for allocation-hygiene assertions.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// Renders a [`TraceReport`] as deterministic JSON — the body of the
/// CLI's `report --json` and of the daemon's `POST /stores/{name}/report`
/// response. Integers and strings only; Gantt rectangles are truncated to
/// `max_rects` (with the total always present), everything else is
/// complete.
pub fn report_json(d: &TraceReport, max_rects: usize) -> String {
    let mut s = String::with_capacity(1024 + d.gantt.len().min(max_rects) * 96);
    report_json_into(d, max_rects, &mut s);
    s
}

/// Appends [`report_json`]'s bytes to `s` — the scratch-reuse entry point
/// behind [`RenderScratch`].
pub fn report_json_into(d: &TraceReport, max_rects: usize, s: &mut String) {
    s.push_str("{\"stats\":");
    write_fused_stats(s, &d.stats);
    let _ = write!(
        s,
        ",\"peak\":{{\"total_bytes\":{},\"input_bytes\":{},\"parameter_bytes\":{},\
         \"intermediate_bytes\":{}}}",
        d.peak.peak_total_bytes,
        d.peak.bytes(pinpoint_trace::Category::InputData),
        d.peak.bytes(pinpoint_trace::Category::Parameters),
        d.peak.bytes(pinpoint_trace::Category::Intermediates),
    );
    s.push_str(",\"breakdown\":{\"label\":");
    json::write_str(s, &d.breakdown.label);
    let _ = write!(
        s,
        ",\"peak_bytes\":{},\"input_bytes\":{},\"parameter_bytes\":{},\"intermediate_bytes\":{}}}",
        d.breakdown.peak_bytes,
        d.breakdown.input_bytes,
        d.breakdown.parameter_bytes,
        d.breakdown.intermediate_bytes,
    );
    let (p50, p90, p99) = if d.ati.is_empty() {
        (0, 0, 0)
    } else {
        let cdf = d.ati.cdf();
        (
            cdf.percentile(0.5),
            cdf.percentile(0.9),
            cdf.percentile(0.99),
        )
    };
    let _ = write!(
        s,
        ",\"ati\":{{\"count\":{},\"p50_ns\":{p50},\"p90_ns\":{p90},\"p99_ns\":{p99}}}",
        d.ati.len(),
    );
    let _ = write!(
        s,
        ",\"outliers\":{{\"total_behaviors\":{},\"min_ati_ns\":{},\"min_size_bytes\":{},\
         \"outliers\":[",
        d.outliers.total_behaviors,
        d.outliers.criteria.min_ati_ns,
        d.outliers.criteria.min_size_bytes,
    );
    for (i, o) in d.outliers.outliers.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"block\":{},\"size\":{},\"interval_ns\":{},\"end_time_ns\":{},\
             \"mem_kind\":\"{}\",\"closing_kind\":\"{}\"}}",
            o.block.0,
            o.size,
            o.interval_ns,
            o.end_time_ns,
            mem_kind_name(o.mem_kind),
            kind_name(o.closing_kind),
        );
    }
    let _ = write!(s, "]}},\"gantt\":{{\"total\":{},\"rects\":[", d.gantt.len());
    for (i, r) in d.gantt.iter().take(max_rects).enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"block\":{},\"t0_ns\":{},\"t1_ns\":{},\"offset\":{},\"size\":{},\
             \"mem_kind\":\"{}\"}}",
            r.block.0,
            r.t0_ns,
            r.t1_ns,
            r.offset,
            r.size,
            mem_kind_name(r.mem_kind),
        );
    }
    s.push_str("]}}");
}

/// Renders a [`QueryResult`] as deterministic JSON — the body of the
/// CLI's `query --json` and of the daemon's `POST /stores/{name}/query`
/// response. Events are truncated to `limit` (the `matched` total is
/// always present) and use the exact trace-export wire layout.
pub fn query_json(q: &QueryResult, limit: usize) -> String {
    let n = q.events.len().min(limit);
    let mut s = String::with_capacity(256 + n * 128);
    query_json_into(q, limit, &mut s);
    s
}

/// Appends [`query_json`]'s bytes to `s` — the scratch-reuse entry point
/// behind [`RenderScratch`].
pub fn query_json_into(q: &QueryResult, limit: usize, s: &mut String) {
    let n = q.events.len().min(limit);
    let st = &q.stats;
    let _ = write!(
        s,
        "{{\"stats\":{{\"chunks_total\":{},\"chunks_pruned\":{},\"chunks_pruned_by_label\":{},\
         \"chunks_decoded\":{},\"chunks_skipped\":{},\"events_lost\":{},\"first_error\":",
        st.chunks_total,
        st.chunks_pruned,
        st.chunks_pruned_by_label,
        st.chunks_decoded,
        st.chunks_skipped,
        st.events_lost,
    );
    write_opt_str(s, st.first_error.as_deref());
    let _ = write!(
        s,
        "}},\"matched\":{},\"returned\":{n},\"events\":[",
        q.events.len()
    );
    for (i, e) in q.events.iter().take(limit).enumerate() {
        if i > 0 {
            s.push(',');
        }
        write_event_json(s, e);
    }
    s.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_store::{write_store_chunked, Predicate};
    use pinpoint_trace::{BlockId, EventKind, MemoryKind};

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..120u64 {
            let b = BlockId(i % 11);
            t.record(
                i * 50,
                EventKind::Malloc,
                b,
                ((i % 11 + 1) * 1000) as usize,
                (i * 128) as usize,
                MemoryKind::Activation,
                None,
            );
            t.record(
                i * 50 + 20,
                EventKind::Write,
                b,
                ((i % 11 + 1) * 1000) as usize,
                (i * 128) as usize,
                MemoryKind::Activation,
                None,
            );
            if i % 4 == 0 {
                t.record(
                    i * 50 + 40,
                    EventKind::Free,
                    b,
                    ((i % 11 + 1) * 1000) as usize,
                    (i * 128) as usize,
                    MemoryKind::Activation,
                    None,
                );
            }
        }
        t
    }

    fn criteria() -> OutlierCriteria {
        OutlierCriteria {
            min_ati_ns: 100,
            min_size_bytes: 2000,
        }
    }

    #[test]
    fn from_chunks_is_bit_identical_to_from_store() {
        let t = sample_trace();
        let mut bytes = Vec::new();
        write_store_chunked(&t, &mut bytes, 16).unwrap();
        let mut r = StoreReader::new(std::io::Cursor::new(bytes.clone())).unwrap();
        let want = TraceReport::from_store(&mut r, criteria(), 1).unwrap();
        let shared = pinpoint_store::SharedStoreReader::from_bytes(bytes).unwrap();
        let index = shared.footer().chunks.clone();
        for threads in [1, 4] {
            let got = TraceReport::from_chunks(
                &index,
                criteria(),
                threads,
                ReadPolicy::Strict,
                |i, _| shared.decode_chunk(i).map(Arc::new),
            )
            .unwrap();
            assert_eq!(report_json(&got, 30), report_json(&want, 30), "t={threads}");
            assert_eq!(got.stats, want.stats, "t={threads}");
        }
    }

    #[test]
    fn report_json_is_deterministic_and_truncates_gantt() {
        let t = sample_trace();
        let d = TraceReport::from_trace(&t, criteria(), 1);
        let a = report_json(&d, 5);
        let b = report_json(&TraceReport::from_trace(&t, criteria(), 4), 5);
        assert_eq!(a, b, "thread count must not change a byte");
        assert!(a.contains("\"total\":11"), "{a}");
        assert_eq!(a.matches("\"t0_ns\"").count(), 5, "truncated to 5 rects");
        assert!(a.starts_with("{\"stats\":{\"chunks_total\":"));
    }

    #[test]
    fn render_scratch_matches_allocating_renderers_and_reuses_its_buffer() {
        let t = sample_trace();
        let d = TraceReport::from_trace(&t, criteria(), 1);
        let mut bytes = Vec::new();
        write_store_chunked(&t, &mut bytes, 16).unwrap();
        let mut r = StoreReader::new(std::io::Cursor::new(bytes)).unwrap();
        let q = r.query(&Predicate::any(), 1).unwrap();
        let mut scratch = RenderScratch::new();
        assert_eq!(scratch.report(&d, 5), report_json(&d, 5));
        assert_eq!(scratch.query(&q, 7), query_json(&q, 7));
        // steady state: re-rendering the same shapes must not regrow
        let cap = scratch.capacity();
        for _ in 0..4 {
            scratch.report(&d, 5);
            scratch.query(&q, 7);
        }
        assert_eq!(scratch.capacity(), cap, "steady-state render reallocated");
        assert_eq!(scratch.report(&d, 5), report_json(&d, 5));
    }

    #[test]
    fn query_json_matches_export_event_layout() {
        let t = sample_trace();
        let mut bytes = Vec::new();
        write_store_chunked(&t, &mut bytes, 16).unwrap();
        let mut r = StoreReader::new(std::io::Cursor::new(bytes)).unwrap();
        let q = r
            .query(&Predicate::any().with_kind(EventKind::Free), 1)
            .unwrap();
        let s = query_json(&q, 3);
        assert!(s.contains("\"matched\":30"), "{s}");
        assert!(s.contains("\"returned\":3"), "{s}");
        assert!(
            s.contains("\"kind\":\"Free\",\"block\":0,\"size\":1000"),
            "{s}"
        );
        // the export path renders the identical event bytes
        let mut expect = String::new();
        write_event_json(&mut expect, &q.events[0]);
        assert!(s.contains(&expect), "{s}\nvs\n{expect}");
    }
}
