//! From-store analysis entry points: run the paper's passes directly off a
//! `.ptrc` trace store, one chunk resident at a time.
//!
//! Every builder here folds the event stream with exactly the state the
//! in-memory [`Trace`](pinpoint_trace::Trace) pass keeps, so results are
//! bit-identical to materializing the trace first — the cross-format
//! equivalence tests assert as much — while never holding more than one
//! decoded chunk of events.

use crate::ati::{AtiDataset, AtiRecord};
use crate::breakdown::BreakdownRow;
use crate::gantt::GanttRect;
use crate::outlier::{sift, OutlierCriteria, OutlierReport};
use pinpoint_store::StoreReader;
use pinpoint_trace::{BlockId, BlockLifetime, Category, EventKind, MemEvent, PeakUsage};
use std::collections::BTreeMap;
use std::io::{self, Read, Seek};

/// Streaming fold equivalent to `Trace::lifetimes()` + `end_time_ns()`.
#[derive(Debug, Default)]
struct LifetimeFold {
    map: BTreeMap<BlockId, BlockLifetime>,
    end_time_ns: u64,
}

impl LifetimeFold {
    fn push(&mut self, e: &MemEvent) {
        self.end_time_ns = e.time_ns;
        let entry = self.map.entry(e.block).or_insert_with(|| BlockLifetime {
            block: e.block,
            size: e.size,
            offset: e.offset,
            mem_kind: e.mem_kind,
            malloc_time_ns: e.time_ns,
            free_time_ns: None,
            accesses: Vec::new(),
        });
        match e.kind {
            EventKind::Malloc => {
                entry.malloc_time_ns = e.time_ns;
                entry.size = e.size;
                entry.offset = e.offset;
                entry.mem_kind = e.mem_kind;
            }
            EventKind::Free => entry.free_time_ns = Some(e.time_ns),
            EventKind::Read | EventKind::Write => {
                entry.accesses.push((e.time_ns, e.kind));
            }
        }
    }
}

fn lifetimes_from_store<R: Read + Seek>(reader: &mut StoreReader<R>) -> io::Result<LifetimeFold> {
    let mut fold = LifetimeFold::default();
    reader.for_each_event(|e| fold.push(&e))?;
    Ok(fold)
}

/// Extracts every ATI from a store — the streaming twin of
/// [`AtiDataset::from_trace`].
///
/// # Errors
///
/// I/O or corruption errors from the store.
pub fn ati_from_store<R: Read + Seek>(reader: &mut StoreReader<R>) -> io::Result<AtiDataset> {
    let fold = lifetimes_from_store(reader)?;
    let mut records = Vec::new();
    for lt in fold.map.values() {
        for w in lt.accesses.windows(2) {
            records.push(AtiRecord {
                block: lt.block,
                size: lt.size,
                mem_kind: lt.mem_kind,
                interval_ns: w[1].0 - w[0].0,
                end_time_ns: w[1].0,
                closing_kind: w[1].1,
            });
        }
    }
    records.sort_by_key(|r| (r.end_time_ns, r.block));
    Ok(AtiDataset::from_records(records))
}

/// Computes the peak-footprint split from a store — the streaming twin of
/// `Trace::peak_live_bytes()`.
///
/// # Errors
///
/// I/O or corruption errors from the store.
pub fn peak_from_store<R: Read + Seek>(reader: &mut StoreReader<R>) -> io::Result<PeakUsage> {
    let mut live: BTreeMap<Category, i64> = BTreeMap::new();
    let mut total: i64 = 0;
    let mut peak_total: i64 = 0;
    let mut at_peak: BTreeMap<Category, i64> = BTreeMap::new();
    reader.for_each_event(|e| {
        let cat = e.mem_kind.category();
        match e.kind {
            EventKind::Malloc => {
                *live.entry(cat).or_insert(0) += e.size as i64;
                total += e.size as i64;
                if total > peak_total {
                    peak_total = total;
                    at_peak = live.clone();
                }
            }
            EventKind::Free => {
                *live.entry(cat).or_insert(0) -= e.size as i64;
                total -= e.size as i64;
            }
            _ => {}
        }
    })?;
    Ok(PeakUsage {
        peak_total_bytes: peak_total.max(0) as u64,
        at_peak_by_category: Category::ALL
            .iter()
            .map(|c| (*c, at_peak.get(c).copied().unwrap_or(0).max(0) as u64))
            .collect(),
    })
}

/// Computes a breakdown-figure row from a store — the streaming twin of
/// [`BreakdownRow::from_trace`].
///
/// # Errors
///
/// I/O or corruption errors from the store.
pub fn breakdown_from_store<R: Read + Seek>(
    label: impl Into<String>,
    reader: &mut StoreReader<R>,
) -> io::Result<BreakdownRow> {
    let peak = peak_from_store(reader)?;
    Ok(BreakdownRow {
        label: label.into(),
        peak_bytes: peak.peak_total_bytes,
        input_bytes: peak.bytes(Category::InputData),
        parameter_bytes: peak.bytes(Category::Parameters),
        intermediate_bytes: peak.bytes(Category::Intermediates),
    })
}

/// Extracts Gantt rectangles intersecting `[t_start, t_end]` from a store —
/// the streaming twin of [`crate::gantt_rects`].
///
/// # Errors
///
/// I/O or corruption errors from the store.
pub fn gantt_from_store<R: Read + Seek>(
    reader: &mut StoreReader<R>,
    t_start: u64,
    t_end: u64,
) -> io::Result<Vec<GanttRect>> {
    let fold = lifetimes_from_store(reader)?;
    let end = fold.end_time_ns;
    let mut rects: Vec<GanttRect> = fold
        .map
        .values()
        .map(|lt| GanttRect {
            block: lt.block,
            t0_ns: lt.malloc_time_ns,
            t1_ns: lt.free_time_ns.unwrap_or(end),
            offset: lt.offset,
            size: lt.size,
            mem_kind: lt.mem_kind,
        })
        .filter(|r| r.t1_ns >= t_start && r.t0_ns <= t_end)
        .collect();
    rects.sort_by_key(|r| (r.t0_ns, r.offset));
    Ok(rects)
}

/// Sifts a store's ATI dataset for Fig. 4 outliers — the streaming twin of
/// [`AtiDataset::from_trace`] + [`sift`].
///
/// # Errors
///
/// I/O or corruption errors from the store.
pub fn outliers_from_store<R: Read + Seek>(
    reader: &mut StoreReader<R>,
    criteria: OutlierCriteria,
) -> io::Result<OutlierReport> {
    Ok(sift(&ati_from_store(reader)?, criteria))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gantt_rects;
    use pinpoint_store::write_store_chunked;
    use pinpoint_trace::{MemoryKind, Trace};
    use std::io::Cursor;

    fn busy_trace() -> Trace {
        let mut t = Trace::new();
        let kinds = [
            MemoryKind::Weight,
            MemoryKind::Activation,
            MemoryKind::Input,
            MemoryKind::Other,
        ];
        let mut time = 0u64;
        for i in 0..40u64 {
            let mk = kinds[i as usize % kinds.len()];
            t.record(
                time,
                EventKind::Malloc,
                BlockId(i),
                ((i + 1) * 1000) as usize,
                (i * 4096) as usize,
                mk,
                None,
            );
            time += 7;
            for _ in 0..3 {
                t.record(
                    time,
                    EventKind::Write,
                    BlockId(i),
                    ((i + 1) * 1000) as usize,
                    (i * 4096) as usize,
                    mk,
                    None,
                );
                time += 13;
                t.record(
                    time,
                    EventKind::Read,
                    BlockId(i),
                    ((i + 1) * 1000) as usize,
                    (i * 4096) as usize,
                    mk,
                    None,
                );
                time += 11;
            }
            if i % 3 != 0 {
                t.record(
                    time,
                    EventKind::Free,
                    BlockId(i),
                    ((i + 1) * 1000) as usize,
                    (i * 4096) as usize,
                    mk,
                    None,
                );
                time += 5;
            }
        }
        t
    }

    fn store_of(t: &Trace) -> StoreReader<Cursor<Vec<u8>>> {
        let mut bytes = Vec::new();
        write_store_chunked(t, &mut bytes, 32).unwrap();
        StoreReader::new(Cursor::new(bytes)).unwrap()
    }

    #[test]
    fn ati_matches_in_memory_bit_for_bit() {
        let t = busy_trace();
        let mut r = store_of(&t);
        assert_eq!(ati_from_store(&mut r).unwrap(), AtiDataset::from_trace(&t));
    }

    #[test]
    fn peak_and_breakdown_match_in_memory() {
        let t = busy_trace();
        let mut r = store_of(&t);
        assert_eq!(peak_from_store(&mut r).unwrap(), t.peak_live_bytes());
        assert_eq!(
            breakdown_from_store("w", &mut r).unwrap(),
            BreakdownRow::from_trace("w", &t)
        );
    }

    #[test]
    fn gantt_matches_in_memory() {
        let t = busy_trace();
        let mut r = store_of(&t);
        let end = t.end_time_ns();
        assert_eq!(
            gantt_from_store(&mut r, 0, end).unwrap(),
            gantt_rects(&t, 0, end)
        );
        // a window, too
        assert_eq!(
            gantt_from_store(&mut r, end / 3, end / 2).unwrap(),
            gantt_rects(&t, end / 3, end / 2)
        );
    }

    #[test]
    fn outliers_match_in_memory() {
        let t = busy_trace();
        let mut r = store_of(&t);
        let criteria = OutlierCriteria {
            min_ati_ns: 10,
            min_size_bytes: 20_000,
        };
        assert_eq!(
            outliers_from_store(&mut r, criteria).unwrap(),
            sift(&AtiDataset::from_trace(&t), criteria)
        );
    }
}
