//! From-store analysis entry points: run the paper's passes directly off a
//! `.ptrc` trace store, one chunk resident at a time.
//!
//! Every function here is a thin wrapper over the fused engine
//! ([`crate::FusedPipeline`]) with a single fold registered, so results
//! are bit-identical to materializing the trace first — the cross-format
//! equivalence tests assert as much — while never holding more than the
//! in-flight chunks of events. To run *several* passes over **one**
//! decode of the store, build a pipeline and register the folds
//! yourself.

use crate::ati::AtiDataset;
use crate::breakdown::BreakdownRow;
use crate::engine::{AtiFold, BreakdownFold, FusedPipeline, GanttFold, OutlierFold, PeakFold};
use crate::gantt::GanttRect;
use crate::outlier::{OutlierCriteria, OutlierReport};
use pinpoint_parallel::configured_threads;
use pinpoint_store::StoreReader;
use pinpoint_trace::PeakUsage;
use std::io::{self, Read, Seek};

/// Extracts every ATI from a store — the streaming twin of
/// [`AtiDataset::from_trace`]. Keeps O(blocks) state plus the extracted
/// records, never every access of every block.
///
/// # Errors
///
/// I/O or corruption errors from the store.
pub fn ati_from_store<R: Read + Seek>(reader: &mut StoreReader<R>) -> io::Result<AtiDataset> {
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(AtiFold);
    Ok(pipe.run_store(reader, configured_threads())?.take(h))
}

/// Computes the peak-footprint split from a store — the streaming twin of
/// `Trace::peak_live_bytes()`.
///
/// # Errors
///
/// I/O or corruption errors from the store.
pub fn peak_from_store<R: Read + Seek>(reader: &mut StoreReader<R>) -> io::Result<PeakUsage> {
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(PeakFold);
    Ok(pipe.run_store(reader, configured_threads())?.take(h))
}

/// Computes a breakdown-figure row from a store — the streaming twin of
/// [`BreakdownRow::from_trace`].
///
/// # Errors
///
/// I/O or corruption errors from the store.
pub fn breakdown_from_store<R: Read + Seek>(
    label: impl Into<String>,
    reader: &mut StoreReader<R>,
) -> io::Result<BreakdownRow> {
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(BreakdownFold {
        label: label.into(),
    });
    Ok(pipe.run_store(reader, configured_threads())?.take(h))
}

/// Extracts Gantt rectangles intersecting `[t_start, t_end]` from a store —
/// the streaming twin of [`crate::gantt_rects`].
///
/// # Errors
///
/// I/O or corruption errors from the store.
pub fn gantt_from_store<R: Read + Seek>(
    reader: &mut StoreReader<R>,
    t_start: u64,
    t_end: u64,
) -> io::Result<Vec<GanttRect>> {
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(GanttFold { t_start, t_end });
    Ok(pipe.run_store(reader, configured_threads())?.take(h))
}

/// Sifts a store's ATI dataset for Fig. 4 outliers — the streaming twin of
/// [`AtiDataset::from_trace`] + [`crate::sift`].
///
/// # Errors
///
/// I/O or corruption errors from the store.
pub fn outliers_from_store<R: Read + Seek>(
    reader: &mut StoreReader<R>,
    criteria: OutlierCriteria,
) -> io::Result<OutlierReport> {
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(OutlierFold { criteria });
    Ok(pipe.run_store(reader, configured_threads())?.take(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gantt_rects;
    use crate::outlier::sift;
    use pinpoint_store::write_store_chunked;
    use pinpoint_trace::{BlockId, EventKind, MemoryKind, Trace};
    use std::io::Cursor;

    fn busy_trace() -> Trace {
        let mut t = Trace::new();
        let kinds = [
            MemoryKind::Weight,
            MemoryKind::Activation,
            MemoryKind::Input,
            MemoryKind::Other,
        ];
        let mut time = 0u64;
        for i in 0..40u64 {
            let mk = kinds[i as usize % kinds.len()];
            t.record(
                time,
                EventKind::Malloc,
                BlockId(i),
                ((i + 1) * 1000) as usize,
                (i * 4096) as usize,
                mk,
                None,
            );
            time += 7;
            for _ in 0..3 {
                t.record(
                    time,
                    EventKind::Write,
                    BlockId(i),
                    ((i + 1) * 1000) as usize,
                    (i * 4096) as usize,
                    mk,
                    None,
                );
                time += 13;
                t.record(
                    time,
                    EventKind::Read,
                    BlockId(i),
                    ((i + 1) * 1000) as usize,
                    (i * 4096) as usize,
                    mk,
                    None,
                );
                time += 11;
            }
            if i % 3 != 0 {
                t.record(
                    time,
                    EventKind::Free,
                    BlockId(i),
                    ((i + 1) * 1000) as usize,
                    (i * 4096) as usize,
                    mk,
                    None,
                );
                time += 5;
            }
        }
        t
    }

    fn store_of(t: &Trace) -> StoreReader<Cursor<Vec<u8>>> {
        let mut bytes = Vec::new();
        write_store_chunked(t, &mut bytes, 32).unwrap();
        StoreReader::new(Cursor::new(bytes)).unwrap()
    }

    #[test]
    fn ati_matches_in_memory_bit_for_bit() {
        let t = busy_trace();
        let mut r = store_of(&t);
        assert_eq!(ati_from_store(&mut r).unwrap(), AtiDataset::from_trace(&t));
    }

    #[test]
    fn peak_and_breakdown_match_in_memory() {
        let t = busy_trace();
        let mut r = store_of(&t);
        assert_eq!(peak_from_store(&mut r).unwrap(), t.peak_live_bytes());
        assert_eq!(
            breakdown_from_store("w", &mut r).unwrap(),
            BreakdownRow::from_trace("w", &t)
        );
    }

    #[test]
    fn gantt_matches_in_memory() {
        let t = busy_trace();
        let mut r = store_of(&t);
        let end = t.end_time_ns();
        assert_eq!(
            gantt_from_store(&mut r, 0, end).unwrap(),
            gantt_rects(&t, 0, end)
        );
        // a window, too
        assert_eq!(
            gantt_from_store(&mut r, end / 3, end / 2).unwrap(),
            gantt_rects(&t, end / 3, end / 2)
        );
    }

    #[test]
    fn outliers_match_in_memory() {
        let t = busy_trace();
        let mut r = store_of(&t);
        let criteria = OutlierCriteria {
            min_ati_ns: 10,
            min_size_bytes: 20_000,
        };
        assert_eq!(
            outliers_from_store(&mut r, criteria).unwrap(),
            sift(&AtiDataset::from_trace(&t), criteria)
        );
    }

    #[test]
    fn alloc_only_folds_prune_access_chunks() {
        // A few mallocs up front, then a long run of accesses: most
        // chunks are pure reads/writes, and the peak fold's Malloc|Free
        // predicate must skip them via the footer index.
        let mut t = Trace::new();
        let mut time = 0u64;
        for i in 0..4u64 {
            t.record(
                time,
                EventKind::Malloc,
                BlockId(i),
                1 << 20,
                (i as usize) << 20,
                MemoryKind::Activation,
                None,
            );
            time += 3;
        }
        for i in 0..400u64 {
            t.record(
                time,
                EventKind::Read,
                BlockId(i % 4),
                1 << 20,
                ((i % 4) as usize) << 20,
                MemoryKind::Activation,
                None,
            );
            time += 5;
        }
        let mut r = store_of(&t);
        let mut pipe = FusedPipeline::new();
        let h = pipe.register(PeakFold);
        let mut out = pipe.run_store(&mut r, 1).unwrap();
        assert_eq!(out.take(h), t.peak_live_bytes());
        let stats = out.stats();
        assert!(
            stats.chunks_pruned > 0,
            "expected access-only chunks to be pruned, stats: {stats:?}"
        );
        assert_eq!(
            stats.chunks_decoded + stats.chunks_pruned,
            stats.chunks_total
        );
    }
}
