//! Dependency-free SVG rendering of the paper's figures.
//!
//! [`gantt_svg`] draws Fig. 2's Gantt chart — one rectangle per device
//! block, x = simulated time, y = device address space, colored by the
//! block's content kind — as a standalone SVG string.

use crate::gantt::GanttRect;
use pinpoint_trace::MemoryKind;
use std::fmt::Write as _;

/// Canvas configuration for [`gantt_svg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvgConfig {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Margin around the plot area, pixels.
    pub margin: u32,
}

impl Default for SvgConfig {
    fn default() -> Self {
        SvgConfig {
            width: 1200,
            height: 600,
            margin: 40,
        }
    }
}

fn color_of(kind: MemoryKind) -> &'static str {
    match kind {
        MemoryKind::Input => "#4e79a7",
        MemoryKind::Weight => "#59a14f",
        MemoryKind::WeightGrad => "#8cd17d",
        MemoryKind::OptimizerState => "#b6992d",
        MemoryKind::Activation => "#e15759",
        MemoryKind::ActivationGrad => "#ff9d9a",
        MemoryKind::Workspace => "#79706e",
        MemoryKind::Other => "#bab0ac",
    }
}

/// Renders Gantt rectangles as a standalone SVG document.
///
/// The x-axis spans the rectangles' time range, the y-axis their address
/// range; every block becomes a `<rect>` with a tooltip (`<title>`) naming
/// it. Returns an empty-plot SVG if `rects` is empty.
pub fn gantt_svg(rects: &[GanttRect], cfg: &SvgConfig) -> String {
    let mut s = String::new();
    let (w, h, m) = (cfg.width as f64, cfg.height as f64, cfg.margin as f64);
    let _ = write!(
        s,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">",
        cfg.width, cfg.height, cfg.width, cfg.height
    );
    let _ = write!(
        s,
        "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\
         <text x=\"{}\" y=\"20\" font-family=\"sans-serif\" font-size=\"14\">\
         device memory blocks: x = time, y = device offset</text>",
        m
    );
    if !rects.is_empty() {
        let t0 = rects.iter().map(|r| r.t0_ns).min().expect("non-empty");
        let t1 = rects
            .iter()
            .map(|r| r.t1_ns)
            .max()
            .expect("non-empty")
            .max(t0 + 1);
        let o0 = rects.iter().map(|r| r.offset).min().expect("non-empty");
        let o1 = rects
            .iter()
            .map(|r| r.offset + r.size)
            .max()
            .expect("non-empty")
            .max(o0 + 1);
        let sx = (w - 2.0 * m) / (t1 - t0) as f64;
        let sy = (h - 2.0 * m) / (o1 - o0) as f64;
        for r in rects {
            let x = m + (r.t0_ns - t0) as f64 * sx;
            let rw = ((r.t1_ns - r.t0_ns) as f64 * sx).max(0.5);
            // y grows downward in SVG; flip so offset 0 sits at the bottom
            let rh = (r.size as f64 * sy).max(0.5);
            let y = h - m - ((r.offset - o0) as f64 * sy) - rh;
            let _ = write!(
                s,
                "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{rw:.2}\" height=\"{rh:.2}\" \
                 fill=\"{}\" fill-opacity=\"0.8\" stroke=\"black\" stroke-width=\"0.2\">\
                 <title>{} {} B @ {}</title></rect>",
                color_of(r.mem_kind),
                r.block,
                r.size,
                r.offset
            );
        }
    }
    // legend
    let kinds = [
        MemoryKind::Input,
        MemoryKind::Weight,
        MemoryKind::WeightGrad,
        MemoryKind::Activation,
        MemoryKind::ActivationGrad,
        MemoryKind::Workspace,
        MemoryKind::Other,
    ];
    for (i, k) in kinds.iter().enumerate() {
        let x = m + i as f64 * 150.0;
        let _ = write!(
            s,
            "<rect x=\"{x:.0}\" y=\"{:.0}\" width=\"12\" height=\"12\" fill=\"{}\"/>\
             <text x=\"{:.0}\" y=\"{:.0}\" font-family=\"sans-serif\" font-size=\"11\">{k}</text>",
            h - 20.0,
            color_of(*k),
            x + 16.0,
            h - 10.0,
        );
    }
    s.push_str("</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::BlockId;

    fn rect(id: u64, t0: u64, t1: u64, offset: usize, size: usize, kind: MemoryKind) -> GanttRect {
        GanttRect {
            block: BlockId(id),
            t0_ns: t0,
            t1_ns: t1,
            offset,
            size,
            mem_kind: kind,
        }
    }

    #[test]
    fn renders_one_rect_per_block() {
        let rects = vec![
            rect(0, 0, 100, 0, 512, MemoryKind::Weight),
            rect(1, 10, 60, 1024, 256, MemoryKind::Activation),
        ];
        let svg = gantt_svg(&rects, &SvgConfig::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // background + 2 block rects + 7 legend swatches
        assert_eq!(svg.matches("<rect").count(), 1 + 2 + 7);
        assert!(svg.contains("blk0"));
        assert!(svg.contains("blk1"));
    }

    #[test]
    fn empty_input_still_produces_valid_svg() {
        let svg = gantt_svg(&[], &SvgConfig::default());
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }

    #[test]
    fn coordinates_stay_inside_the_canvas() {
        let rects = vec![
            rect(0, 0, 1_000_000, 0, 1 << 20, MemoryKind::Activation),
            rect(1, 500_000, 900_000, 1 << 21, 1 << 19, MemoryKind::Input),
        ];
        let cfg = SvgConfig::default();
        let svg = gantt_svg(&rects, &cfg);
        // no negative coordinates appear
        assert!(!svg.contains("x=\"-"), "negative x in {svg}");
        assert!(!svg.contains("y=\"-"), "negative y in {svg}");
    }
}
