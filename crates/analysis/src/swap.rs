//! Equation-1 swap feasibility over whole traces.
//!
//! The paper derives `S ≤ T / (1/B_d2h + 1/B_h2d)` (Equation 1): a block is
//! profitably swappable during an access interval of length `T` only if it
//! fits the bound. This module applies the bound to every ATI of a trace.

use crate::ati::{AtiDataset, AtiRecord};
use pinpoint_device::TransferModel;

/// One behavior's swap verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapVerdict {
    /// The behavior under consideration.
    pub record: AtiRecord,
    /// Equation 1 bound for the interval, in bytes.
    pub max_swap_bytes: f64,
    /// Whether the block fits the bound (profitable to swap).
    pub swappable: bool,
}

/// Aggregate feasibility report for a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapFeasibilityReport {
    /// Per-behavior verdicts, in trace order.
    pub verdicts: Vec<SwapVerdict>,
    /// Count of swappable behaviors.
    pub swappable_count: usize,
    /// Bytes that could be held on the host, summed over swappable
    /// behaviors (upper bound; one block may appear several times).
    pub swappable_bytes_total: u64,
}

impl SwapFeasibilityReport {
    /// Fraction of behaviors that are profitably swappable.
    pub fn swappable_fraction(&self) -> f64 {
        if self.verdicts.is_empty() {
            0.0
        } else {
            self.swappable_count as f64 / self.verdicts.len() as f64
        }
    }
}

/// Applies Equation 1 to every ATI of a dataset.
pub fn assess(dataset: &AtiDataset, transfer: &TransferModel) -> SwapFeasibilityReport {
    let mut verdicts = Vec::with_capacity(dataset.len());
    let mut swappable_count = 0usize;
    let mut swappable_bytes_total = 0u64;
    for &r in dataset.records() {
        let bound = transfer.max_swap_bytes(r.interval_ns);
        let swappable = (r.size as f64) <= bound;
        if swappable {
            swappable_count += 1;
            swappable_bytes_total += r.size as u64;
        }
        verdicts.push(SwapVerdict {
            record: r,
            max_swap_bytes: bound,
            swappable,
        });
    }
    SwapFeasibilityReport {
        verdicts,
        swappable_count,
        swappable_bytes_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::{BlockId, EventKind, MemoryKind, Trace};

    #[test]
    fn typical_behaviors_fail_eq1_outliers_pass() {
        let mut t = Trace::new();
        // 1 MB activation with 25 µs intervals → bound ≈ 79 KB → not swappable
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            1 << 20,
            0,
            MemoryKind::Activation,
            None,
        );
        t.record(
            10,
            EventKind::Write,
            BlockId(0),
            1 << 20,
            0,
            MemoryKind::Activation,
            None,
        );
        t.record(
            25_010,
            EventKind::Read,
            BlockId(0),
            1 << 20,
            0,
            MemoryKind::Activation,
            None,
        );
        // 1.2 GB buffer with 840 ms interval → bound ≈ 2.67 GB → swappable
        t.record(
            25_010,
            EventKind::Malloc,
            BlockId(1),
            1_200_000_000,
            1 << 30,
            MemoryKind::Other,
            None,
        );
        t.record(
            26_000,
            EventKind::Write,
            BlockId(1),
            1_200_000_000,
            1 << 30,
            MemoryKind::Other,
            None,
        );
        t.record(
            840_237_000,
            EventKind::Read,
            BlockId(1),
            1_200_000_000,
            1 << 30,
            MemoryKind::Other,
            None,
        );
        let d = AtiDataset::from_trace(&t);
        let report = assess(&d, &TransferModel::titan_x_pascal_pinned());
        assert_eq!(report.verdicts.len(), 2);
        assert_eq!(report.swappable_count, 1);
        assert_eq!(report.swappable_bytes_total, 1_200_000_000);
        assert!((report.swappable_fraction() - 0.5).abs() < 1e-12);
        let big = report
            .verdicts
            .iter()
            .find(|v| v.record.block == BlockId(1))
            .unwrap();
        assert!(big.swappable);
        assert!(big.max_swap_bytes > 2.5e9);
        let small = report
            .verdicts
            .iter()
            .find(|v| v.record.block == BlockId(0))
            .unwrap();
        assert!(!small.swappable);
        assert!((small.max_swap_bytes / 1e3 - 79.37).abs() < 0.2);
    }

    #[test]
    fn empty_dataset_reports_zero() {
        let report = assess(&AtiDataset::default(), &TransferModel::default());
        assert_eq!(report.swappable_fraction(), 0.0);
    }
}
