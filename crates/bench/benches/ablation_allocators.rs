//! Ablation: how the allocator policy shapes the paper's observations.
//! Replays the same MLP training through the caching, best-fit and bump
//! allocators and compares periodicity, fragmentation and reserved memory.

use pinpoint_analysis::{detect, worst_fragmentation};
use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::{profile, ProfileConfig};
use pinpoint_device::AllocatorPolicy;

fn run(policy: AllocatorPolicy, iters: usize) -> pinpoint_core::ProfileReport {
    let mut cfg = ProfileConfig::mlp_case_study(iters);
    cfg.device.allocator = policy;
    profile(&cfg).expect("profile")
}

fn bench(c: &mut Criterion) {
    println!("\nAblation — allocator policy (10 MLP iterations)");
    println!(
        "  {:<10} {:>9} {:>12} {:>12} {:>10} {:>10}",
        "policy", "periodic", "reserved", "peak alloc", "cache-hit%", "worst gap%"
    );
    for policy in AllocatorPolicy::ALL {
        let r = run(policy, 10);
        let iter = detect(&r.trace);
        let frag = worst_fragmentation(&r.trace, 64);
        let hit = 100.0 * r.alloc_stats.cache_hit_mallocs as f64 / r.alloc_stats.num_mallocs as f64;
        println!(
            "  {:<10} {:>9} {:>12} {:>12} {:>9.1}% {:>9.1}%",
            format!("{policy:?}"),
            iter.periodic,
            r.alloc_stats.peak_reserved_bytes,
            r.alloc_stats.peak_allocated_bytes,
            hit,
            frag.gap_fraction() * 100.0
        );
        // every policy yields a valid trace; only the reusing allocators
        // reproduce Fig. 2's address-stable periodicity — the bump
        // allocator's offsets drift forever (its pointer can never rewind
        // past the persistent weights), which is exactly the ablation's
        // point
        r.trace.validate().expect("valid trace");
        match policy {
            AllocatorPolicy::Caching | AllocatorPolicy::BestFit => {
                assert!(iter.periodic, "{policy:?} should reach a steady state")
            }
            AllocatorPolicy::Bump => {
                assert!(!iter.periodic, "bump offsets must drift")
            }
        }
    }
    let mut g = c.benchmark_group("ablation_allocators");
    g.sample_size(10);
    for policy in AllocatorPolicy::ALL {
        g.bench_function(format!("{policy:?}"), |b| b.iter(|| run(policy, 5)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
