//! Ablation: activation checkpointing density vs peak footprint and
//! recompute cost — the recomputation counterpart to the swap planner,
//! measured through the same instrumentation.

use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::report::{human_bytes, human_time};
use pinpoint_core::{profile, ProfileConfig};
use pinpoint_data::DatasetSpec;
use pinpoint_models::{Architecture, ResNetDepth};

fn run(
    arch: Architecture,
    batch: usize,
    keep_every: Option<usize>,
) -> pinpoint_core::ProfileReport {
    let mut cfg = ProfileConfig::breakdown_sweep(arch, DatasetSpec::imagenet(), batch);
    cfg.checkpoint_every = keep_every;
    profile(&cfg).expect("profile")
}

fn bench(c: &mut Criterion) {
    println!("\nAblation — activation checkpointing (ImageNet geometry, bs 32)");
    println!(
        "  {:<22} {:>10} {:>12} {:>12} {:>12}",
        "workload", "keep 1/k", "peak", "flops/iter", "iter time"
    );
    for arch in [Architecture::Vgg16, Architecture::ResNet(ResNetDepth::R50)] {
        let mut baseline_peak = 0u64;
        for keep in [None, Some(2), Some(4), Some(8)] {
            let r = run(arch, 32, keep);
            let peak = r.trace.peak_live_bytes().peak_total_bytes;
            if keep.is_none() {
                baseline_peak = peak;
            }
            println!(
                "  {:<22} {:>10} {:>12} {:>12} {:>12}",
                arch.name(),
                keep.map(|k| format!("1/{k}"))
                    .unwrap_or_else(|| "all".into()),
                human_bytes(peak),
                r.program_summary.total_flops / 1_000_000_000,
                human_time(r.duration_ns / r.iterations as u64)
            );
            if let Some(k) = keep {
                assert!(peak <= baseline_peak, "keep 1/{k} must not grow the peak");
            }
        }
        let sparse = run(arch, 32, Some(8));
        let sparse_peak = sparse.trace.peak_live_bytes().peak_total_bytes;
        assert!(
            (sparse_peak as f64) < 0.9 * baseline_peak as f64,
            "{}: sparse checkpointing should cut ≥10%: {baseline_peak} -> {sparse_peak}",
            arch.name()
        );
    }
    let mut g = c.benchmark_group("ablation_checkpoint");
    g.sample_size(10);
    g.bench_function("vgg16_keep4", |b| {
        b.iter(|| run(Architecture::Vgg16, 32, Some(4)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
