//! Ablation: the §IV swap planner across workloads — how much peak
//! footprint Equation-1-safe swapping recovers, and what it costs in PCIe
//! traffic. Long forward→backward activation gaps in big conv nets are the
//! planner's payoff case; the MLP's sub-ms gaps yield nothing, exactly as
//! the paper's Fig. 3 discussion predicts.

use pinpoint_analysis::plan;
use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::report::human_bytes;
use pinpoint_core::{profile, ProfileConfig};
use pinpoint_data::DatasetSpec;
use pinpoint_models::{Architecture, MlpConfig, ResNetDepth};

fn trace_of(arch: Architecture, dataset: DatasetSpec, batch: usize) -> pinpoint_trace::Trace {
    profile(&ProfileConfig::breakdown_sweep(arch, dataset, batch))
        .expect("profile")
        .trace
}

fn bench(c: &mut Criterion) {
    let tm = pinpoint_device::TransferModel::titan_x_pascal_pinned();
    println!("\nAblation — swap planner across workloads (Eq1-safe, zero overhead)");
    println!(
        "  {:<26} {:>10} {:>12} {:>12} {:>9} {:>12} {:>9} {:>9}",
        "workload",
        "decisions",
        "base peak",
        "planned",
        "saving%",
        "pcie traffic",
        "link-ok",
        "thinned"
    );
    let workloads = [
        (
            Architecture::Mlp(MlpConfig::default()),
            DatasetSpec::cifar100(),
            128usize,
        ),
        (Architecture::AlexNet, DatasetSpec::imagenet(), 64),
        (Architecture::Vgg16, DatasetSpec::imagenet(), 64),
        (
            Architecture::ResNet(ResNetDepth::R50),
            DatasetSpec::imagenet(),
            64,
        ),
    ];
    let mut conv_savings = 0u64;
    for (arch, dataset, batch) in workloads.iter() {
        let trace = trace_of(*arch, dataset.clone(), *batch);
        let p = plan(&trace, &tm, 10_000_000);
        let contention = pinpoint_analysis::check_contention(&p, &tm);
        let thinned = if contention.feasible {
            p.decisions.len()
        } else {
            pinpoint_analysis::thin_to_feasible(&p, &tm).decisions.len()
        };
        println!(
            "  {:<26} {:>10} {:>12} {:>12} {:>8.1}% {:>12} {:>9} {:>9}",
            format!("{}/bs{batch}", arch.name()),
            p.decisions.len(),
            human_bytes(p.baseline_peak_bytes),
            human_bytes(p.planned_peak_bytes),
            p.savings_fraction() * 100.0,
            human_bytes(p.transfer_bytes),
            contention.feasible,
            thinned
        );
        if !arch.is_linear_topology() || matches!(arch, Architecture::Vgg16) {
            conv_savings += p.savings_bytes();
        }
        // zero-overhead guarantee holds for every decision
        for d in &p.decisions {
            assert!(tm.d2h_time_ns(d.size) + tm.h2d_time_ns(d.size) <= d.interval_ns());
        }
    }
    assert!(
        conv_savings > 0,
        "big conv nets must have Eq1-recoverable peak"
    );
    let vgg_trace = trace_of(Architecture::Vgg16, DatasetSpec::imagenet(), 64);
    let mut g = c.benchmark_group("ablation_planner");
    g.sample_size(10);
    g.bench_function("plan_vgg16_imagenet", |b| {
        b.iter(|| plan(&vgg_trace, &tm, 10_000_000))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
