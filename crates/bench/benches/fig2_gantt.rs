//! Fig. 2: Gantt chart of the first five MLP training iterations —
//! block lifetimes, the iterative pattern, and fragmentation.

use pinpoint_bench::by_scale;
use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::figures::fig2_gantt;
use pinpoint_core::report::render_fig2;

fn bench(c: &mut Criterion) {
    let iters = by_scale(5, 5); // the paper shows exactly five iterations
    let data = fig2_gantt(iters).expect("fig2 profile");
    println!("\n{}", render_fig2(&data, 16));
    assert!(data.iterative.periodic, "C1: iterative pattern must hold");
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("gantt_5_iters", |b| {
        b.iter(|| fig2_gantt(iters).expect("fig2 profile"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
