//! Fig. 3: CDF and violin of memory-block access-time intervals in MLP
//! training.

use pinpoint_bench::by_scale;
use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::figures::fig3_ati;
use pinpoint_core::report::render_fig3;

fn bench(c: &mut Criterion) {
    let iters = by_scale(50, 200);
    let data = fig3_ati(iters).expect("fig3 profile");
    println!("\n{}", render_fig3(&data));
    assert!(data.fraction_at_or_below_25us > 0.4, "C2: concentration");
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("ati_distribution", |b| {
        b.iter(|| fig3_ati(iters).expect("fig3 profile"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
