//! Fig. 4: pair-wise (ATI, size) of every memory behavior; the high-ATI ×
//! large-size outliers and their Equation-1 swap verdicts.

use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{by_scale, Scale};
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::figures::fig4_outliers;
use pinpoint_core::report::render_fig4;
use pinpoint_core::EpochEval;

fn bench(c: &mut Criterion) {
    let eval = match pinpoint_bench::scale() {
        Scale::Paper => EpochEval::paper_scale(), // 1.2 GB / 5000-iter epochs
        Scale::Quick => EpochEval {
            iters_per_epoch: 100,
            buffer_bytes: 32_000_000,
        },
    };
    let epochs = by_scale(2, 2);
    let data = fig4_outliers(eval, epochs).expect("fig4 profile");
    println!("\n{}", render_fig4(&data));
    assert!(!data.outliers.outliers.is_empty(), "C3: outliers exist");
    let (red, bound) = data.red_point.expect("red point");
    assert!(
        (red.size as f64) <= bound,
        "C3: the red point is Eq1-swappable"
    );
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("outlier_sift", |b| {
        b.iter(|| fig4_outliers(eval, epochs).expect("fig4 profile"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
