//! Fig. 5: memory-occupation breakdown of typical DNN training.

use pinpoint_bench::by_scale;
use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::figures::fig5_breakdown;
use pinpoint_core::report::render_breakdown;

fn bench(c: &mut Criterion) {
    let batch = by_scale(64, 128);
    let rows = fig5_breakdown(batch).expect("fig5 sweep");
    println!(
        "\n{}",
        render_breakdown("Fig 5 — occupation breakdown of typical DNNs", &rows)
    );
    let minor = rows.iter().filter(|r| r.fractions().1 < 0.4).count();
    assert!(minor >= rows.len() - 2, "C4: params minor for most DNNs");
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("typical_dnns", |b| {
        b.iter(|| fig5_breakdown(batch).expect("fig5 sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
