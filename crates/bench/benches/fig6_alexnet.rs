//! Fig. 6: AlexNet occupation breakdown across batch sizes, on CIFAR-100
//! and ImageNet geometries.

use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::figures::fig6_alexnet;
use pinpoint_core::report::render_breakdown;

fn bench(c: &mut Criterion) {
    let batches = [32usize, 64, 128, 256];
    let rows = fig6_alexnet(&batches).expect("fig6 sweep");
    println!(
        "\n{}",
        render_breakdown("Fig 6 — AlexNet breakdown vs batch size", &rows)
    );
    // C5: within each dataset, intermediates grow and params shrink
    for ds in rows.chunks(batches.len()) {
        for w in ds.windows(2) {
            assert!(w[1].fractions().2 >= w[0].fractions().2, "{w:?}");
            assert!(w[1].fractions().1 <= w[0].fractions().1, "{w:?}");
        }
    }
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("alexnet_batch_sweep", |b| {
        b.iter(|| fig6_alexnet(&batches).expect("fig6 sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
