//! Fig. 7: ResNet-18/34/50/101/152 occupation breakdown across batch
//! sizes, on CIFAR-100 and ImageNet geometries.

use pinpoint_bench::by_scale;
use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::figures::fig7_resnet;
use pinpoint_core::report::render_breakdown;

fn bench(c: &mut Criterion) {
    let batches: &[usize] = by_scale(&[32, 128], &[32, 64, 128, 256]);
    let rows = fig7_resnet(batches).expect("fig7 sweep");
    println!(
        "\n{}",
        render_breakdown("Fig 7 — ResNet breakdown vs depth and batch size", &rows)
    );
    // C5 for the non-linear family: growing batch grows intermediates
    for per_depth in rows.chunks(batches.len()) {
        for w in per_depth.windows(2) {
            assert!(w[1].fractions().2 >= w[0].fractions().2, "{w:?}");
        }
    }
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("resnet_sweep", |b| {
        b.iter(|| fig7_resnet(batches).expect("fig7 sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
