//! Fused one-decode analysis engine vs the sequential five-pass baseline.
//!
//! Profiles ResNet-18, encodes the trace into a `.ptrc` store, then runs
//! the five report analyses (ATI, peak, breakdown, gantt, outliers) two
//! ways: five standalone single-fold runs (each decoding every chunk) and
//! one fused five-fold run (each chunk decoded exactly once). Reports
//! wall clock at 1 and 4 worker threads in `BENCH_report.json` and
//! asserts that the fused run is bit-identical to the baseline, decodes
//! each chunk once, and is no slower at either thread count.
//!
//! The fused run is measured on both a v2 and a v3 store of the same
//! trace: results must be bit-identical across formats, and the v3 run
//! must not be slower (timer-noise margin) — the batched-decode
//! regression guard on every CI bench-smoke run. The scan accounting
//! (including the v3-only `chunks_pruned_by_label` counter) lands in the
//! JSON.
//!
//! This bench also carries the observability overhead guard: the hot
//! paths are instrumented with `pinpoint-obs` spans, and with the
//! tracer **disabled** (the default) each span site must cost one
//! relaxed atomic load — asserted three ways: no span records and no
//! span buffers appear during the measured runs, a repeated (warm)
//! fused scan performs zero decode-buffer reallocations, and the
//! measured fused time stays within 5% of the recorded
//! `BENCH_report.json` baseline (plus a small absolute timer-noise
//! slack, since 5% of a few ms sits near scheduler jitter).

use pinpoint_analysis::{
    AtiDataset, AtiFold, BreakdownFold, BreakdownRow, FusedPipeline, GanttFold, GanttRect,
    OutlierCriteria, OutlierFold, OutlierReport, PeakFold,
};
use pinpoint_bench::by_scale;
use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::{profile, ProfileConfig};
use pinpoint_data::DatasetSpec;
use pinpoint_models::{Architecture, ResNetDepth};
use pinpoint_obs::tracer;
use pinpoint_store::{write_store_chunked, write_store_chunked_v2, StoreReader};
use pinpoint_trace::{PeakUsage, Trace};
use std::io::Cursor;
use std::time::Instant;

const CRITERIA: OutlierCriteria = OutlierCriteria {
    min_ati_ns: 800_000_000,
    min_size_bytes: 600_000_000,
};

fn median_ns(runs: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn resnet18_trace() -> Trace {
    let batch = by_scale(32, 64);
    let cfg = ProfileConfig::breakdown_sweep(
        Architecture::ResNet(ResNetDepth::R18),
        DatasetSpec::cifar100(),
        batch,
    );
    profile(&cfg).expect("resnet-18 profile").trace
}

/// The five analysis outputs, however they were produced.
#[derive(PartialEq)]
struct Report {
    ati: AtiDataset,
    peak: PeakUsage,
    breakdown: BreakdownRow,
    gantt: Vec<GanttRect>,
    outliers: OutlierReport,
}

/// Five standalone single-fold runs: every pass re-opens the store and
/// decodes every chunk, so the decode work is ~5x the fused run's.
fn sequential_five_pass(bytes: &[u8], t_end: u64, threads: usize) -> (Report, usize) {
    let mut decoded = 0usize;
    let mut one = |pipe: FusedPipeline| {
        let mut r = StoreReader::new(Cursor::new(bytes.to_vec())).expect("open");
        let out = pipe.run_store(&mut r, threads).expect("run");
        decoded += out.stats().chunks_decoded;
        out
    };
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(AtiFold);
    let ati = one(pipe).take(h);
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(PeakFold);
    let peak = one(pipe).take(h);
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(BreakdownFold {
        label: "trace".to_string(),
    });
    let breakdown = one(pipe).take(h);
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(GanttFold { t_start: 0, t_end });
    let gantt = one(pipe).take(h);
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(OutlierFold { criteria: CRITERIA });
    let outliers = one(pipe).take(h);
    (
        Report {
            ati,
            peak,
            breakdown,
            gantt,
            outliers,
        },
        decoded,
    )
}

/// One fused five-fold run: each chunk decoded exactly once, all five
/// accumulators fed from the same decode. Also returns the
/// pruned-by-op-label count from the scan accounting (0 here — the
/// five-fold union constrains no op label — surfaced so the bench JSON
/// records the counter end to end).
fn fused_five_fold(bytes: &[u8], t_end: u64, threads: usize) -> (Report, usize, usize) {
    let mut pipe = FusedPipeline::new();
    let ati = pipe.register(AtiFold);
    let peak = pipe.register(PeakFold);
    let breakdown = pipe.register(BreakdownFold {
        label: "trace".to_string(),
    });
    let gantt = pipe.register(GanttFold { t_start: 0, t_end });
    let outliers = pipe.register(OutlierFold { criteria: CRITERIA });
    let mut r = StoreReader::new(Cursor::new(bytes.to_vec())).expect("open");
    let mut out = pipe.run_store(&mut r, threads).expect("run");
    let decoded = out.stats().chunks_decoded;
    let pruned_by_label = out.stats().chunks_pruned_by_label;
    (
        Report {
            ati: out.take(ati),
            peak: out.take(peak),
            breakdown: out.take(breakdown),
            gantt: out.take(gantt),
            outliers: out.take(outliers),
        },
        decoded,
        pruned_by_label,
    )
}

fn bench(c: &mut Criterion) {
    let runs = by_scale(3, 7);
    let trace = resnet18_trace();
    let events = trace.len();
    let t_end = trace.end_time_ns();

    // chunk finer than the 4096-event default so the per-chunk decode
    // accounting is exercised across many chunks even at quick scale
    let mut bytes = Vec::new();
    write_store_chunked(&trace, &mut bytes, 512).expect("encode");
    let mut v2_bytes = Vec::new();
    write_store_chunked_v2(&trace, &mut v2_bytes, 512).expect("encode v2");
    let chunks = StoreReader::new(Cursor::new(bytes.clone()))
        .expect("open")
        .num_chunks();
    assert!(chunks > 1, "trace must span several chunks, got {chunks}");

    // recorded fused_ns baseline per thread count from the previous run
    // (the committed BENCH_report.json); absent or unparseable skips the
    // overhead guard — a fresh checkout's first run records it instead
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_report.json");
    let baseline: Vec<(u64, u64)> = std::fs::read_to_string(out)
        .ok()
        .and_then(|s| pinpoint_trace::json::parse(&s).ok())
        .and_then(|j| {
            Some(
                j.get("runs")?
                    .as_arr()?
                    .iter()
                    .filter_map(|r| {
                        Some((r.get("threads")?.as_u64()?, r.get("fused_ns")?.as_u64()?))
                    })
                    .collect(),
            )
        })
        .unwrap_or_default();

    // the span sites on the scan/decode/fold hot paths must be inert
    // while the tracer is disabled (the default): record the counters
    // now, assert below that the measured runs moved neither
    assert!(
        !tracer().enabled(),
        "benches measure the tracing-disabled fast path"
    );
    let span_records_before = tracer().total_records();
    let span_bufs_before = tracer().buffer_allocs();

    // warm-scan zero-allocation: the same reader running the fused
    // five-fold twice must not grow its decode scratch pool the second
    // time (the per-chunk zero-alloc contract the obs spans ride on)
    {
        let mut r = StoreReader::new(Cursor::new(bytes.clone())).expect("open");
        let run = |r: &mut StoreReader<Cursor<Vec<u8>>>| {
            let mut pipe = FusedPipeline::new();
            let h = pipe.register(AtiFold);
            let mut out = pipe.run_store(r, 4).expect("run");
            out.take(h).len()
        };
        let cold = run(&mut r);
        let warmed = r.decode_reallocs();
        let warm = run(&mut r);
        assert_eq!(cold, warm);
        assert_eq!(
            r.decode_reallocs(),
            warmed,
            "warm fused scan must perform zero decode-buffer reallocations"
        );
    }

    let mut per_thread = Vec::new();
    for threads in [1usize, 4] {
        let (seq, seq_decoded) = sequential_five_pass(&bytes, t_end, threads);
        let (fused, fused_decoded, pruned_by_label) = fused_five_fold(&bytes, t_end, threads);
        let (fused_v2, ..) = fused_five_fold(&v2_bytes, t_end, threads);
        assert!(
            seq == fused,
            "fused output diverges from sequential at threads={threads}"
        );
        assert!(
            fused_v2 == fused,
            "fused output diverges between v2 and v3 stores at threads={threads}"
        );
        assert_eq!(
            fused_decoded, chunks,
            "fused run must decode each chunk exactly once"
        );
        assert_eq!(
            seq_decoded,
            5 * chunks,
            "sequential baseline decodes every chunk five times"
        );

        let seq_ns = median_ns(runs, || {
            let (r, _) = sequential_five_pass(&bytes, t_end, threads);
            assert_eq!(r.ati.len(), seq.ati.len());
        });
        let fused_ns = median_ns(runs, || {
            let (r, ..) = fused_five_fold(&bytes, t_end, threads);
            assert_eq!(r.ati.len(), fused.ati.len());
        });
        let fused_v2_ns = median_ns(runs, || {
            let (r, ..) = fused_five_fold(&v2_bytes, t_end, threads);
            assert_eq!(r.ati.len(), fused.ati.len());
        });
        assert!(
            fused_ns <= seq_ns,
            "fused run must be no slower than the five-pass baseline \
             at threads={threads}: fused {fused_ns} ns vs sequential {seq_ns} ns"
        );
        assert!(
            fused_ns <= fused_v2_ns + fused_v2_ns / 4,
            "v3 fused report regressed past v2 at threads={threads}: \
             v3 {fused_ns} ns vs v2 {fused_v2_ns} ns"
        );
        // tracing-disabled overhead guard: within 5% of the recorded
        // baseline plus 250us absolute slack — 5% of a few-ms run sits
        // near scheduler jitter, so the relative bound alone would flap
        if let Some(&(_, base_ns)) = baseline.iter().find(|(t, _)| *t == threads as u64) {
            let bound = base_ns as u128 + (base_ns as u128) / 20 + 250_000;
            assert!(
                fused_ns <= bound,
                "fused run with tracing disabled regressed past the recorded \
                 baseline at threads={threads}: {fused_ns} ns vs {base_ns} ns (+5% +250us)"
            );
        }
        let speedup = seq_ns as f64 / fused_ns as f64;
        let v3_speedup = fused_v2_ns as f64 / fused_ns as f64;
        println!(
            "fused_report: threads={threads}: sequential {seq_ns} ns ({seq_decoded} chunk \
             decodes) vs fused {fused_ns} ns ({fused_decoded}) -> {speedup:.2}x; \
             v2 store {fused_v2_ns} ns -> v3 {v3_speedup:.2}x"
        );
        per_thread.push(format!(
            "{{\"threads\":{threads},\"sequential_ns\":{seq_ns},\"fused_ns\":{fused_ns},\
             \"fused_v2_ns\":{fused_v2_ns},\
             \"sequential_chunk_decodes\":{seq_decoded},\
             \"fused_chunk_decodes\":{fused_decoded},\
             \"chunks_pruned_by_label\":{pruned_by_label},\
             \"speedup\":{speedup:.4},\"v3_vs_v2_speedup\":{v3_speedup:.4}}}"
        ));
    }

    // every measured run above went through the instrumented hot paths;
    // with the tracer disabled none of them may have touched it
    assert_eq!(
        tracer().total_records(),
        span_records_before,
        "disabled tracer must record no spans during the bench"
    );
    assert_eq!(
        tracer().buffer_allocs(),
        span_bufs_before,
        "disabled tracer must allocate no span buffers during the bench"
    );

    let json = format!(
        "{{\"bench\":\"fused_report\",\"events\":{events},\"chunks\":{chunks},\
         \"passes\":5,\"v2_store_bytes\":{},\"v3_store_bytes\":{},\
         \"runs\":[{}],\"bit_identical\":true}}\n",
        v2_bytes.len(),
        bytes.len(),
        per_thread.join(",")
    );
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("could not write {out}: {e}");
    }

    let mut g = c.benchmark_group("fused_report");
    g.sample_size(10);
    g.bench_function("sequential_five_pass_resnet18", |b| {
        b.iter(|| sequential_five_pass(&bytes, t_end, 1).0.ati.len())
    });
    g.bench_function("fused_five_fold_resnet18", |b| {
        b.iter(|| fused_five_fold(&bytes, t_end, 1).0.ati.len())
    });
    g.bench_function("fused_five_fold_resnet18_v2_store", |b| {
        b.iter(|| fused_five_fold(&v2_bytes, t_end, 1).0.ati.len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
