//! Microbenchmarks of the device allocators: steady-state malloc/free
//! throughput for DNN-like size mixes.

use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_device::alloc::{BestFitAllocator, BumpAllocator, CachingAllocator, DeviceAllocator};

const SIZES: [usize; 6] = [4096, 98_304, 262_144, 1 << 20, 6 << 20, 24 << 20];

fn churn(alloc: &mut dyn DeviceAllocator, rounds: usize) {
    for _ in 0..rounds {
        let ids: Vec<_> = SIZES.iter().map(|&s| alloc.malloc(s).unwrap().id).collect();
        for id in ids {
            alloc.free(id).unwrap();
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_allocator");
    g.bench_function("caching_churn", |b| {
        let mut a = CachingAllocator::new(4 << 30);
        churn(&mut a, 1); // warm the cache once
        b.iter(|| churn(&mut a, 10));
    });
    g.bench_function("best_fit_churn", |b| {
        let mut a = BestFitAllocator::new(4 << 30);
        b.iter(|| churn(&mut a, 10));
    });
    g.bench_function("bump_churn", |b| {
        let mut a = BumpAllocator::new(4 << 30);
        b.iter(|| churn(&mut a, 10));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
