//! Microbenchmarks of the analysis kernels: ATI extraction, CDF, KDE and
//! planning over a real (simulated) training trace.

use pinpoint_analysis::{plan, violin, AtiDataset, EmpiricalCdf};
use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::{profile, ProfileConfig};

fn bench(c: &mut Criterion) {
    let trace = profile(&ProfileConfig::mlp_case_study(100))
        .expect("profile")
        .trace;
    println!("\ntrace under analysis: {} events", trace.len());
    let atis = AtiDataset::from_trace(&trace);
    let samples: Vec<f64> = atis.intervals_ns().iter().map(|&v| v as f64).collect();
    let tm = pinpoint_device::TransferModel::titan_x_pascal_pinned();
    let mut g = c.benchmark_group("micro_analysis");
    g.bench_function("ati_extraction", |b| {
        b.iter(|| AtiDataset::from_trace(&trace))
    });
    g.bench_function("cdf_build", |b| {
        b.iter(|| EmpiricalCdf::new(atis.intervals_ns()))
    });
    g.bench_function("violin_kde", |b| b.iter(|| violin(&samples, 128)));
    g.bench_function("swap_plan", |b| b.iter(|| plan(&trace, &tm, 1_000_000)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
