//! Seeded load generator for the `pinpoint-serve` daemon.
//!
//! Profiles ResNet-18, publishes the store through an in-process daemon,
//! and drives it with concurrent clients at fan-outs of 1, 2, 4 and 8.
//! Each client issues a seeded mix of `report` and `query` requests over
//! plain `TcpStream`s and records per-request wall time into the shared
//! log2-bucketed [`pinpoint_obs::Histogram`] — the same histogram the
//! daemon's `/metrics` latency section uses, so bench and daemon report
//! identically-bucketed numbers. The bench reports exact-rank p50/p99
//! (bucket upper bounds), aggregate throughput, the chunk-cache hit
//! rate (from `/metrics`), and the raw nonzero bucket boundaries and
//! counts per fan-out in `BENCH_serve.json`.
//!
//! A second phase drives the *repeated-query* fast path: the same
//! `report` request over and over, once against a baseline daemon with
//! the result cache disabled and a fresh connection per request, and once
//! against the tuned daemon over a single kept-alive connection with the
//! result cache on. Both throughputs, the speedup, and the result-cache
//! hit rate land in `BENCH_serve.json`.
//!
//! Three in-bench guards run on every CI bench-smoke pass:
//! - every response body at every fan-out is byte-identical to the
//!   single-client answer (the daemon's determinism contract under
//!   concurrency and cache churn);
//! - with a warm cache, aggregate report throughput at 8 clients must be
//!   at least 2x the 1-client figure — gated on the machine actually
//!   having >= 2 CPUs (a 1-core runner records the skip in the JSON
//!   instead of asserting parallel speedup it cannot exhibit);
//! - the repeated-query phase must be >= 2x the fresh-connection,
//!   no-result-cache baseline (this one is serial work elimination, so
//!   it holds on any machine and is asserted unconditionally);
//! - the resilience layer must stay invisible under clean load: zero
//!   panics caught and zero deadline expiries across the whole run,
//!   asserted from `/metrics` and recorded in `BENCH_serve.json`.

use pinpoint_bench::by_scale;
use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::{profile, ProfileConfig};
use pinpoint_data::DatasetSpec;
use pinpoint_models::{Architecture, ResNetDepth};
use pinpoint_obs::Histogram;
use pinpoint_serve::{start, ServeConfig};
use pinpoint_tensor::rng::Rng64;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// One request/response over a fresh connection; the request must carry
/// `Connection: close` so reading to EOF terminates. Returns (status,
/// body).
fn roundtrip(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(request.as_bytes()).expect("send");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("recv");
    let text = String::from_utf8(buf).expect("utf8");
    let (head, body) = text.split_once("\r\n\r\n").expect("full response");
    let status = head
        .split_ascii_whitespace()
        .nth(1)
        .expect("status")
        .parse()
        .expect("numeric status");
    (status, body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// One request/response on an already-open kept-alive stream, framed by
/// `Content-Length` instead of EOF. Returns (status, body).
fn keepalive_post(s: &mut TcpStream, path: &str, body: &str) -> (u16, String) {
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("send");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p;
        }
        let n = s.read(&mut chunk).expect("recv");
        assert!(n > 0, "EOF before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).expect("utf8 head");
    let status = head
        .split_ascii_whitespace()
        .nth(1)
        .expect("status")
        .parse()
        .expect("numeric status");
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length")
        .trim()
        .parse()
        .expect("numeric length");
    while buf.len() < head_end + 4 + len {
        let n = s.read(&mut chunk).expect("recv");
        assert!(n > 0, "EOF before response body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[head_end + 4..head_end + 4 + len].to_vec()).expect("utf8");
    (status, body)
}

/// The seeded request mix: mostly cached full reports, with a few
/// pruned queries mixed in to churn the cache's access order.
fn request_body(rng: &mut Rng64) -> (&'static str, String) {
    match rng.gen_below(4) {
        0 => (
            "/stores/resnet18/query",
            format!("{{\"kind\":\"malloc\",\"max\":{}}}", rng.gen_below(16) + 1),
        ),
        _ => ("/stores/resnet18/report", String::new()),
    }
}

fn metric(body: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\":");
    let rest = &body[body.find(&tag).expect("metric present") + tag.len()..];
    rest[..rest.find([',', '}']).unwrap()]
        .parse()
        .expect("metric value")
}

/// Drives `clients` concurrent request loops, `per_client` requests
/// each, all from seeded RNGs. Every request's wall time is recorded
/// straight into the shared lock-free [`Histogram`] from all client
/// threads at once. Returns (latency histogram, elapsed_ns).
fn drive(addr: SocketAddr, clients: usize, per_client: usize, seed: u64) -> (Histogram, u64) {
    let hist = Histogram::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let hist = &hist;
            scope.spawn(move || {
                let mut rng = Rng64::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9e37));
                for _ in 0..per_client {
                    let (path, body) = request_body(&mut rng);
                    let t = Instant::now();
                    let (status, body) = post(addr, path, &body);
                    hist.record(t.elapsed().as_nanos() as u64);
                    assert_eq!(status, 200, "{body}");
                }
            });
        }
    });
    (hist, t0.elapsed().as_nanos() as u64)
}

fn bench(c: &mut Criterion) {
    let batch = by_scale(16, 64);
    let per_client = by_scale(8, 40);
    let cfg = ProfileConfig::breakdown_sweep(
        Architecture::ResNet(ResNetDepth::R18),
        DatasetSpec::cifar100(),
        batch,
    );
    let trace = profile(&cfg).expect("resnet-18 profile").trace;
    let events = trace.len();

    let dir = std::env::temp_dir().join(format!("pinpoint-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("catalog dir");
    let mut encoded = Vec::new();
    pinpoint_store::write_store_chunked(&trace, &mut encoded, 512).expect("encode");
    std::fs::write(dir.join("resnet18.ptrc"), &encoded).expect("write store");

    let handle = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 8,
        queue_cap: 64,
        ..ServeConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr();

    // warm the cache and pin the reference answers: every later response
    // must be these exact bytes, whatever the fan-out
    let (status, want_report) = post(addr, "/stores/resnet18/report", "");
    assert_eq!(status, 200);
    let (status, want_query) = post(
        addr,
        "/stores/resnet18/query",
        "{\"kind\":\"malloc\",\"max\":5}",
    );
    assert_eq!(status, 200);

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut per_fanout = Vec::new();
    let mut throughput_1 = 0.0f64;
    let mut throughput_8 = 0.0f64;
    for clients in [1usize, 2, 4, 8] {
        let before = metric(
            &roundtrip(
                addr,
                "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
            )
            .1,
            "cache_hits",
        );
        let (hist, elapsed_ns) = drive(addr, clients, per_client, 0xC0FFEE);
        let after = roundtrip(
            addr,
            "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        )
        .1;
        let hits = metric(&after, "cache_hits") - before;
        let misses = metric(&after, "cache_misses");
        let total = (clients * per_client) as f64;
        let throughput = total / (elapsed_ns as f64 / 1e9);
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        if clients == 1 {
            throughput_1 = throughput;
        }
        if clients == 8 {
            throughput_8 = throughput;
        }

        // determinism under concurrency: spot-check both request shapes
        let (_, got) = post(addr, "/stores/resnet18/report", "");
        assert_eq!(got, want_report, "report bytes drift at {clients} clients");
        let (_, got) = post(
            addr,
            "/stores/resnet18/query",
            "{\"kind\":\"malloc\",\"max\":5}",
        );
        assert_eq!(got, want_query, "query bytes drift at {clients} clients");

        let snap = hist.snapshot();
        assert_eq!(snap.count(), (clients * per_client) as u64);
        let p50 = snap.percentile(50.0);
        let p99 = snap.percentile(99.0);
        println!(
            "serve_load: {clients} clients: p50 {p50} ns, p99 {p99} ns, \
             {throughput:.1} req/s, cache hit rate {:.2}",
            hit_rate
        );
        // the raw distribution: every nonzero log2 bucket as
        // [lo_ns, hi_ns, count] — the same bucketing the daemon's
        // /metrics latency section uses
        let buckets: Vec<String> = snap
            .nonzero_buckets()
            .iter()
            .map(|(lo, hi, n)| format!("[{lo},{hi},{n}]"))
            .collect();
        per_fanout.push(format!(
            "{{\"clients\":{clients},\"requests\":{},\"p50_ns\":{p50},\"p99_ns\":{p99},\
             \"mean_ns\":{},\"throughput_rps\":{throughput:.2},\"cache_hit_rate\":{hit_rate:.4},\
             \"latency_buckets\":[{}]}}",
            clients * per_client,
            snap.mean(),
            buckets.join(",")
        ));
    }

    // the scaling claim needs real cores behind the worker pool
    let scaling_checked = cpus >= 2;
    let speedup = throughput_8 / throughput_1;
    if scaling_checked {
        assert!(
            speedup >= 2.0,
            "8-client aggregate throughput must be >= 2x the 1-client figure \
             with a warm cache on a {cpus}-cpu machine: got {speedup:.2}x \
             ({throughput_1:.1} -> {throughput_8:.1} req/s)"
        );
    } else {
        println!("serve_load: single-cpu machine, scaling assert skipped ({speedup:.2}x)");
    }

    // --- repeated-query phase: the hot-path claim ---------------------
    // Planner-style workloads ask the same question hundreds of times.
    // Baseline: result cache off, a fresh TCP connection per request.
    // Fast path: result cache on, one kept-alive connection. Same
    // requests, same bytes — the speedup is pure overhead elimination
    // (connection setup + fold + render), so it is asserted on any
    // machine.
    let repeats = by_scale(20, 120);
    let baseline = start(ServeConfig {
        catalog_dir: dir.clone(),
        workers: 8,
        queue_cap: 64,
        result_cache_bytes: 0,
        ..ServeConfig::default()
    })
    .expect("start baseline daemon");
    let (status, _) = post(baseline.addr(), "/stores/resnet18/report", ""); // warm chunk cache
    assert_eq!(status, 200);
    let t0 = Instant::now();
    for _ in 0..repeats {
        let (status, got) = post(baseline.addr(), "/stores/resnet18/report", "");
        assert_eq!(status, 200);
        assert_eq!(got, want_report, "baseline bytes drift");
    }
    let baseline_rps = repeats as f64 / t0.elapsed().as_secs_f64();
    baseline.shutdown();

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("timeout");
    let t0 = Instant::now();
    for _ in 0..repeats {
        let (status, got) = keepalive_post(&mut conn, "/stores/resnet18/report", "");
        assert_eq!(status, 200);
        assert_eq!(got, want_report, "kept-alive cached bytes drift");
    }
    let keepalive_rps = repeats as f64 / t0.elapsed().as_secs_f64();
    drop(conn);

    let metrics = roundtrip(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    )
    .1;
    let result_hits = metric(&metrics, "result_hits");
    let result_misses = metric(&metrics, "result_misses");
    let result_hit_rate = result_hits as f64 / (result_hits + result_misses).max(1) as f64;
    let repeated_speedup = keepalive_rps / baseline_rps;
    println!(
        "serve_load: repeated report x{repeats}: baseline {baseline_rps:.1} req/s \
         (fresh conn, no result cache), fast {keepalive_rps:.1} req/s \
         (keep-alive + result cache) = {repeated_speedup:.1}x, \
         result-cache hit rate {result_hit_rate:.2}"
    );
    assert!(
        repeated_speedup >= 2.0,
        "keep-alive + result cache must be >= 2x the fresh-connection, \
         no-result-cache baseline on repeated queries: got {repeated_speedup:.2}x \
         ({baseline_rps:.1} -> {keepalive_rps:.1} req/s)"
    );
    assert!(
        result_hit_rate > 0.5,
        "repeated identical requests must mostly hit the result cache: \
         {result_hits} hits / {result_misses} misses"
    );

    // clean load must never trip the resilience layer: a caught panic or
    // an expired deadline here is a daemon bug, not client misbehavior
    let panics_caught = metric(&metrics, "panics_caught");
    let deadline_exceeded = metric(&metrics, "deadline_exceeded");
    assert_eq!(panics_caught, 0, "handler panicked under clean load");
    assert_eq!(deadline_exceeded, 0, "deadline expired under clean load");

    let json = format!(
        "{{\"bench\":\"serve_load\",\"events\":{events},\"store_bytes\":{},\
         \"workers\":8,\"cpus\":{cpus},\"per_client_requests\":{per_client},\
         \"runs\":[{}],\"speedup_8_vs_1\":{speedup:.4},\
         \"scaling_asserted\":{scaling_checked},\
         \"repeated_requests\":{repeats},\"repeated_baseline_rps\":{baseline_rps:.2},\
         \"repeated_keepalive_rps\":{keepalive_rps:.2},\
         \"repeated_speedup\":{repeated_speedup:.4},\
         \"result_cache_hit_rate\":{result_hit_rate:.4},\
         \"panics_caught\":{panics_caught},\"deadline_exceeded\":{deadline_exceeded},\
         \"bit_identical\":true}}\n",
        encoded.len(),
        per_fanout.join(",")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("could not write {out}: {e}");
    }

    let mut g = c.benchmark_group("serve_load");
    g.sample_size(10);
    g.bench_function("warm_report_single_client", |b| {
        b.iter(|| post(addr, "/stores/resnet18/report", "").1.len())
    });
    g.finish();

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
