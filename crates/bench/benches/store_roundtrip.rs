//! `.ptrc` store round trip on a ResNet-18 training trace.
//!
//! Profiles ResNet-18, encodes the trace into the chunked columnar store,
//! decodes it back, and reports encode/decode throughput plus the
//! compression ratio against the JSON export in `BENCH_store.json`. The
//! ratio is asserted (the format must stay ≥5x smaller than JSON) and so
//! is losslessness of the round trip.
//!
//! The same trace is also written in the legacy v2 format: the v3 file
//! must be smaller and must decode at least as fast (small tolerance for
//! timer noise) — the regression guard for the adaptive column
//! encodings, enforced on every CI bench-smoke run.

use pinpoint_bench::by_scale;
use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::{profile, ProfileConfig};
use pinpoint_data::DatasetSpec;
use pinpoint_models::{Architecture, ResNetDepth};
use pinpoint_store::{
    write_store, write_store_chunked_v2, Predicate, StoreReader, DEFAULT_CHUNK_EVENTS,
};
use pinpoint_trace::export::json_string;
use pinpoint_trace::Trace;
use std::io::Cursor;
use std::time::Instant;

fn median_ns(runs: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn resnet18_trace() -> Trace {
    let batch = by_scale(32, 64);
    let cfg = ProfileConfig::breakdown_sweep(
        Architecture::ResNet(ResNetDepth::R18),
        DatasetSpec::cifar100(),
        batch,
    );
    profile(&cfg).expect("resnet-18 profile").trace
}

fn bench(c: &mut Criterion) {
    let runs = by_scale(3, 7);
    let trace = resnet18_trace();
    let events = trace.len();

    let mut store_bytes = Vec::new();
    write_store(&trace, &mut store_bytes).expect("encode");
    let json_len = json_string(&trace).len();
    let ratio = json_len as f64 / store_bytes.len() as f64;
    assert!(
        ratio >= 5.0,
        "ResNet-18 .ptrc must be >=5x smaller than JSON, got {ratio:.2}x"
    );

    let mut reader = StoreReader::new(Cursor::new(store_bytes.clone())).expect("open");
    let decoded = reader.read_trace().expect("decode");
    assert_eq!(decoded, trace, "round trip must be lossless");

    let encode_ns = median_ns(runs, || {
        let mut out = Vec::with_capacity(store_bytes.len());
        write_store(&trace, &mut out).expect("encode");
        assert_eq!(out.len(), store_bytes.len());
    });
    let decode_ns = median_ns(runs, || {
        let mut r = StoreReader::new(Cursor::new(store_bytes.clone())).expect("open");
        assert_eq!(r.read_trace().expect("decode").len(), events);
    });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let query_ns = median_ns(runs, || {
        let mut r = StoreReader::new(Cursor::new(store_bytes.clone())).expect("open");
        let q = r.query(&Predicate::any(), cores).expect("query");
        assert_eq!(q.events.len(), events);
    });

    // v2 vs v3: the adaptive encodings must shrink the file and must not
    // slow the decode down (a generous timer-noise margin; the expected
    // direction is a clean v3 win from fewer varints to chew through)
    let mut v2_bytes = Vec::new();
    write_store_chunked_v2(&trace, &mut v2_bytes, DEFAULT_CHUNK_EVENTS).expect("encode v2");
    assert!(
        store_bytes.len() < v2_bytes.len(),
        "v3 ({} B) must be smaller than v2 ({} B)",
        store_bytes.len(),
        v2_bytes.len()
    );
    let mut r = StoreReader::new(Cursor::new(v2_bytes.clone())).expect("open v2");
    assert_eq!(r.read_trace().expect("decode v2"), trace, "v2 lossless");
    let v2_decode_ns = median_ns(runs, || {
        let mut r = StoreReader::new(Cursor::new(v2_bytes.clone())).expect("open");
        assert_eq!(r.read_trace().expect("decode").len(), events);
    });
    assert!(
        decode_ns <= v2_decode_ns + v2_decode_ns / 4,
        "v3 decode regressed past v2: v3 {decode_ns} ns vs v2 {v2_decode_ns} ns"
    );
    let v3_size_ratio = v2_bytes.len() as f64 / store_bytes.len() as f64;
    let v3_decode_speedup = v2_decode_ns as f64 / decode_ns as f64;

    let encode_meps = events as f64 / (encode_ns as f64 / 1e9) / 1e6;
    let decode_meps = events as f64 / (decode_ns as f64 / 1e9) / 1e6;
    println!(
        "\nstore_roundtrip: {events} events, json {json_len} B -> ptrc {} B ({ratio:.2}x); \
         encode {encode_meps:.1} Mev/s, decode {decode_meps:.1} Mev/s; \
         v2 {} B -> v3 {:.2}x smaller, decode {:.2}x vs v2",
        store_bytes.len(),
        v2_bytes.len(),
        v3_size_ratio,
        v3_decode_speedup
    );
    let json = format!(
        "{{\"bench\":\"store_roundtrip\",\"events\":{events},\
         \"json_bytes\":{json_len},\"store_bytes\":{},\
         \"compression_ratio\":{ratio:.4},\
         \"encode_ns\":{encode_ns},\"decode_ns\":{decode_ns},\
         \"parallel_query_ns\":{query_ns},\"threads\":{cores},\
         \"encode_mevents_per_s\":{encode_meps:.3},\
         \"decode_mevents_per_s\":{decode_meps:.3},\
         \"v2_store_bytes\":{},\"v2_decode_ns\":{v2_decode_ns},\
         \"v3_size_ratio_vs_v2\":{v3_size_ratio:.4},\
         \"v3_decode_speedup_vs_v2\":{v3_decode_speedup:.4},\
         \"lossless\":true}}\n",
        store_bytes.len(),
        v2_bytes.len()
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("could not write {out}: {e}");
    }

    let mut g = c.benchmark_group("store_roundtrip");
    g.sample_size(10);
    g.bench_function("encode_resnet18", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(store_bytes.len());
            write_store(&trace, &mut out).expect("encode");
            out
        })
    });
    g.bench_function("decode_resnet18", |b| {
        b.iter(|| {
            StoreReader::new(Cursor::new(store_bytes.clone()))
                .and_then(|mut r| r.read_trace())
                .expect("decode")
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
