//! Parallel sweep engine: 1-thread vs N-thread Fig. 7 regeneration.
//!
//! Times the same sweep serially and fanned out over all cores, asserts
//! the `BreakdownRow` output is identical at every thread count, and
//! writes a `BENCH_sweep.json` summary (thread count, wall-clock per
//! mode, speedup) so the perf trajectory is tracked across PRs.

use pinpoint_bench::by_scale;
use pinpoint_bench::criterion::Criterion;
use pinpoint_bench::{criterion_group, criterion_main};
use pinpoint_core::figures::fig7_resnet;
use pinpoint_core::parallel::set_global_threads;
use std::time::Instant;

/// Median wall-clock of `runs` sweep executions, in nanoseconds.
fn time_sweep(batches: &[usize], runs: usize) -> u128 {
    let mut times: Vec<u128> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let rows = fig7_resnet(batches).expect("fig7 sweep");
            assert!(!rows.is_empty());
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    let batches: &[usize] = by_scale(&[32, 128], &[32, 64, 128, 256]);
    let runs = by_scale(3, 5);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    set_global_threads(1);
    let serial_rows = fig7_resnet(batches).expect("fig7 sweep");
    let serial_ns = time_sweep(batches, runs);

    set_global_threads(cores);
    let parallel_rows = fig7_resnet(batches).expect("fig7 sweep");
    let parallel_ns = time_sweep(batches, runs);
    assert_eq!(
        serial_rows, parallel_rows,
        "sweep output must be identical at every thread count"
    );

    let speedup = serial_ns as f64 / parallel_ns.max(1) as f64;
    println!(
        "\nsweep_parallel: {} rows, serial {:.2} ms, {} threads {:.2} ms, speedup {speedup:.2}x",
        serial_rows.len(),
        serial_ns as f64 / 1e6,
        cores,
        parallel_ns as f64 / 1e6,
    );
    let json = format!(
        "{{\"bench\":\"sweep_parallel\",\"rows\":{},\"threads\":{cores},\
         \"serial_ns\":{serial_ns},\"parallel_ns\":{parallel_ns},\
         \"speedup\":{speedup:.4},\"identical_output\":true}}\n",
        serial_rows.len()
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("could not write {out}: {e}");
    }

    // keep a criterion-style timing record of the parallel path too
    let mut g = c.benchmark_group("sweep_parallel");
    g.sample_size(10);
    g.bench_function("fig7_all_cores", |b| {
        b.iter(|| fig7_resnet(batches).expect("fig7 sweep"))
    });
    g.finish();
    set_global_threads(1);
}

criterion_group!(benches, bench);
criterion_main!(benches);
