//! A minimal, std-only stand-in for the Criterion benchmark harness, kept
//! in-repo so `cargo bench` works in hermetic build environments with no
//! access to crates.io.
//!
//! Only the slice of the Criterion API this workspace's bench targets use is
//! provided: [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::finish`] and
//! [`Bencher::iter`]. Results are printed as `group/name  median ... (n
//! samples)` lines; there is no statistical outlier analysis.

use std::hint::black_box;
use std::time::Instant;

/// Top-level benchmark driver, passed to every bench target function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark and prints its median/min/max sample times.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { elapsed_ns: 0 };
        // one untimed warmup sample
        f(&mut b);
        let mut samples: Vec<u64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed_ns = 0;
            f(&mut b);
            samples.push(b.elapsed_ns);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "bench {}/{}: median {} min {} max {} ({} samples)",
            self.name,
            id,
            human_ns(median),
            human_ns(samples[0]),
            human_ns(*samples.last().unwrap()),
            samples.len(),
        );
        self
    }

    /// Ends the group (parity with the real Criterion API; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`];
/// [`Bencher::iter`] times the supplied routine.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u64,
}

impl Bencher {
    /// Runs `f` once and adds its wall-clock time to the current sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed_ns += start.elapsed().as_nanos() as u64;
        black_box(out);
    }
}

fn human_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Declares a function running the listed bench targets, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::criterion::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary, mirroring Criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut runs = 0u32;
        g.sample_size(3);
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert_eq!(runs, 4, "warmup + 3 samples");
    }

    #[test]
    fn human_ns_picks_sane_units() {
        assert_eq!(human_ns(12), "12ns");
        assert_eq!(human_ns(1_500), "1.500us");
        assert_eq!(human_ns(2_000_000), "2.000ms");
        assert_eq!(human_ns(3_000_000_000), "3.000s");
    }
}
