//! # pinpoint-bench
//!
//! Shared helpers for the Criterion benchmark harness that regenerates
//! every table and figure of *"Pinpointing the Memory Behaviors of DNN
//! Training"* (ISPASS 2021).
//!
//! Each bench target prints its figure's rows once (so `cargo bench`
//! output doubles as the paper's data) and then times the regeneration.
//! Set `PINPOINT_SCALE=paper` to run the figures at full paper scale
//! (slower); the default `quick` scale preserves every claim's shape.

pub mod criterion;

/// Benchmark scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced iteration counts; shapes preserved. The default.
    Quick,
    /// The paper's full workload sizes.
    Paper,
}

/// Reads the scale from the `PINPOINT_SCALE` environment variable.
pub fn scale() -> Scale {
    match std::env::var("PINPOINT_SCALE").as_deref() {
        Ok("paper") => Scale::Paper,
        _ => Scale::Quick,
    }
}

/// Picks a value by scale.
pub fn by_scale<T>(quick: T, paper: T) -> T {
    match scale() {
        Scale::Quick => quick,
        Scale::Paper => paper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // (environment not set in the test harness)
        if std::env::var("PINPOINT_SCALE").is_err() {
            assert_eq!(scale(), Scale::Quick);
            assert_eq!(by_scale(1, 2), 1);
        }
    }
}
