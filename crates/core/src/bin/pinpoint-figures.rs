//! `pinpoint-figures` — regenerate any figure of the paper from the CLI.
//!
//! ```text
//! pinpoint-figures all                 # every figure, quick scale
//! pinpoint-figures fig4 --paper        # one figure at paper scale
//! pinpoint-figures fig7 --threads 8    # sweep on 8 worker threads
//! ```
//!
//! `--threads N` (or the `PINPOINT_THREADS` environment variable) sets how
//! many worker threads the figure sweeps fan out over; output is
//! bit-identical at every thread count.

use pinpoint_core::figures::{
    fig1_topology, fig2_gantt, fig3_ati, fig4_outliers, fig5_breakdown, fig6_alexnet, fig7_resnet,
};
use pinpoint_core::report::{render_breakdown, render_fig2, render_fig3, render_fig4};
use pinpoint_core::EpochEval;

const KNOWN: [&str; 8] = [
    "all", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        let Some(n) = n else {
            eprintln!("--threads needs a positive integer");
            std::process::exit(1);
        };
        pinpoint_core::parallel::set_global_threads(n);
        args.drain(i..=i + 1);
    }
    let paper = args.iter().any(|a| a == "--paper");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    if !KNOWN.contains(&which.as_str()) {
        eprintln!(
            "unknown figure `{which}`; expected one of: {}",
            KNOWN.join(", ")
        );
        std::process::exit(1);
    }
    let all = which == "all";

    if all || which == "fig1" {
        println!("Fig 1 — MLP op topology:");
        for op in fig1_topology() {
            println!("  {op}");
        }
        println!();
    }
    if all || which == "fig2" {
        let d = fig2_gantt(5)?;
        println!("{}", render_fig2(&d, 16));
    }
    if all || which == "fig3" {
        let d = fig3_ati(if paper { 200 } else { 50 })?;
        println!("{}", render_fig3(&d));
    }
    if all || which == "fig4" {
        let eval = if paper {
            EpochEval::paper_scale()
        } else {
            EpochEval {
                iters_per_epoch: 200,
                buffer_bytes: 64_000_000,
            }
        };
        let d = fig4_outliers(eval, 2)?;
        println!("{}", render_fig4(&d));
    }
    if all || which == "fig5" {
        let rows = fig5_breakdown(128)?;
        println!(
            "{}",
            render_breakdown(
                "Fig 5 — occupation breakdown of typical DNNs (bs 128)",
                &rows
            )
        );
    }
    if all || which == "fig6" {
        let rows = fig6_alexnet(&[32, 64, 128, 256])?;
        println!(
            "{}",
            render_breakdown("Fig 6 — AlexNet vs batch size", &rows)
        );
    }
    if all || which == "fig7" {
        let batches: &[usize] = if paper {
            &[32, 64, 128, 256]
        } else {
            &[32, 128]
        };
        let rows = fig7_resnet(batches)?;
        println!(
            "{}",
            render_breakdown("Fig 7 — ResNet vs depth and batch size", &rows)
        );
    }
    Ok(())
}
