//! `pinpoint-trace-tool` — analyze an exported memory-behavior trace.
//!
//! ```text
//! pinpoint-trace-tool summary   trace.{json|ptrc}
//! pinpoint-trace-tool report    trace.{json|ptrc} [--min-ati-ms N] [--min-size-mb N] [--max N] [--json]
//!                               [--timing] [--trace-out FILE]
//! pinpoint-trace-tool ati       trace.{json|ptrc}
//! pinpoint-trace-tool outliers  trace.{json|ptrc} [--min-ati-ms N] [--min-size-mb N]
//! pinpoint-trace-tool breakdown trace.{json|ptrc}
//! pinpoint-trace-tool gantt     trace.{json|ptrc} [--max N]
//! pinpoint-trace-tool ops       trace.{json|ptrc} [--top N]
//! pinpoint-trace-tool plan      trace.{json|ptrc}
//! pinpoint-trace-tool compare   a.{json|ptrc} b.{json|ptrc}
//! pinpoint-trace-tool convert   in.{json|ptrc} out.{ptrc|json}
//!                               (ptrc -> ptrc upgrades old stores to v3)
//! pinpoint-trace-tool info      trace.ptrc [--verify]
//! pinpoint-trace-tool scrub     in.ptrc out.ptrc
//! pinpoint-trace-tool query     trace.ptrc [--t0-us N] [--t1-us N]
//!                               [--block-min N] [--block-max N] [--kind K]...
//!                               [--category C]... [--min-size-bytes N]
//!                               [--op-label NAME|ID] [--max N] [--json]
//!                               [--timing] [--trace-out FILE]
//! pinpoint-trace-tool serve     --catalog DIR [--addr HOST:PORT] [--cache-bytes N]
//!                               [--result-cache-bytes N] [--keepalive N]
//!                               [--threads N] [--queue N] [--shutdown-token TOK]
//!                               [--io-timeout-ms N] [--request-deadline-ms N]
//!                               [--drain-deadline-ms N] [--breaker-threshold N]
//!                               [--breaker-cooldown N] [--breaker-seed N]
//!                               [--chaos-token TOK]
//! ```
//!
//! Input format is sniffed from the file's magic bytes, so every analysis
//! subcommand accepts either an exported JSON trace or a `.ptrc` store.
//! `convert` flips whichever format it is given into the other — or, given
//! a `.ptrc` on both sides, rewrites an old store in the current v3 format
//! (adaptive column encodings, finer zone maps); `info`
//! prints a store's chunk-index statistics and its compression ratio
//! against JSON (`--verify` additionally checks every chunk's CRC and
//! decode, exiting nonzero on damage); `query` runs a chunk-pruning
//! filtered event dump; `scrub` salvages a damaged store into a fresh,
//! fully intact one, dropping only chunks whose bytes are beyond repair.
//!
//! `report` runs **all five** analysis passes (ATI, peak, breakdown,
//! Gantt, outliers) fused over a single scan of the trace — each chunk of
//! a `.ptrc` store is decoded exactly once, however many passes consume
//! it. The single-pass subcommands (`ati`, `outliers`, `breakdown`,
//! `gantt`) also run straight off a store through the same engine, never
//! materializing the full trace, and print byte-identical output to the
//! JSON path.
//!
//! `--threads N` (or `PINPOINT_THREADS`) sets the worker-thread count for
//! parallel work (`compare` loads and validates both traces concurrently;
//! `query` and the fused engine decode surviving chunks in parallel;
//! `serve` sizes its worker pool with it); output never depends on the
//! thread count.
//!
//! `report --json` and `query --json` print the same deterministic JSON
//! the `serve` daemon returns for `POST /stores/{name}/report` and
//! `POST /stores/{name}/query` — byte-identical on the same store, which
//! is what the serve smoke tests assert. `serve` hosts a directory of
//! `.ptrc` stores over HTTP with a shared decoded-chunk cache and
//! admission control; stop it with the token-gated `POST /shutdown`.
//!
//! `report` and `query` accept two self-observability flags backed by
//! the in-process tracer (`pinpoint-obs`): `--timing` prints a stage
//! breakdown table (span name, count, total time) to **stderr** after
//! the normal output — stderr because stage durations are wall-clock
//! and therefore not byte-deterministic, while stdout stays so — and
//! `--trace-out FILE` writes the full span tree as Chrome
//! `trace_event` JSON, loadable in Perfetto or `chrome://tracing`.
//!
//! Produce a trace with `pinpoint_trace::export::write_json` or stream one
//! straight to disk with `pinpoint_store::StoreWriter` (the
//! `mlp_case_study` example writes a CSV twin next to it).

use pinpoint_analysis::{
    ati_from_store, breakdown_from_store, detect, diff_traces, gantt_from_store, gantt_rects,
    op_stats, outliers_from_store, plan, query_json, report_json, sift, violin_sorted, AtiDataset,
    BreakdownRow, GanttRect, OutlierCriteria, OutlierReport,
};
use pinpoint_core::report::{human_bytes, human_time, render_trace_report, TraceReport};
use pinpoint_device::TransferModel;
use pinpoint_store::{Predicate, ReadPolicy, StoreReader, StoreWriter};
use pinpoint_trace::export::read_json;
use pinpoint_trace::{Category, EventKind, Trace, TraceSink};
use std::fs::File;
use std::io::Read;
use std::process::ExitCode;

fn flag_value(args: &[String], name: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn flag_str<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_strings<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

/// Self-observability flags shared by `report` and `query`.
struct ObsFlags {
    timing: bool,
    trace_out: Option<String>,
}

/// Parses `--timing` / `--trace-out FILE` and, when either is present,
/// arms the in-process tracer (cleared first so the snapshot holds only
/// this command's spans).
fn obs_flags(args: &[String]) -> ObsFlags {
    let flags = ObsFlags {
        timing: args.iter().any(|a| a == "--timing"),
        trace_out: flag_str(args, "--trace-out").map(String::from),
    };
    if flags.timing || flags.trace_out.is_some() {
        let t = pinpoint_obs::tracer();
        t.clear();
        t.set_enabled(true);
    }
    flags
}

/// After the command ran: prints the `--timing` stage table (to stderr —
/// durations are wall-clock, so stdout stays byte-deterministic) and
/// writes the `--trace-out` Chrome trace JSON.
fn obs_finish(flags: &ObsFlags) -> Result<(), String> {
    if !flags.timing && flags.trace_out.is_none() {
        return Ok(());
    }
    let snap = pinpoint_obs::tracer().snapshot();
    if flags.timing {
        eprintln!("{:<16} {:>8} {:>12}", "stage", "count", "total");
        for (name, count, total_ns) in snap.totals_by_name() {
            eprintln!("{name:<16} {count:>8} {:>12}", human_time(total_ns));
        }
    }
    if let Some(path) = &flags.trace_out {
        std::fs::write(path, snap.to_chrome_json())
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        eprintln!(
            "wrote {} span(s) to {path} (Chrome trace_event JSON)",
            snap.len()
        );
    }
    Ok(())
}

/// Whether the file starts with the `.ptrc` magic bytes.
fn is_store(path: &str) -> Result<bool, String> {
    let mut f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut magic = [0u8; 4];
    match f.read(&mut magic) {
        Ok(4) => Ok(&magic == pinpoint_store::MAGIC),
        Ok(_) => Ok(false),
        Err(e) => Err(format!("cannot read {path}: {e}")),
    }
}

fn load(path: &str) -> Result<Trace, String> {
    let trace = if is_store(path)? {
        StoreReader::open(path)
            .and_then(|mut r| r.read_trace())
            .map_err(|e| format!("cannot read store {path}: {e}"))?
    } else {
        let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        read_json(f).map_err(|e| format!("cannot parse {path}: {e}"))?
    };
    trace
        .validate()
        .map_err(|e| format!("{path} is not a well-formed trace: {e}"))?;
    Ok(trace)
}

fn open_store(path: &str) -> Result<StoreReader, String> {
    if !is_store(path)? {
        return Err(format!("{path} is not a .ptrc store (run `convert` first)"));
    }
    StoreReader::open(path).map_err(|e| format!("cannot read store {path}: {e}"))
}

fn parse_kind(s: &str) -> Result<EventKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "malloc" => Ok(EventKind::Malloc),
        "free" => Ok(EventKind::Free),
        "read" => Ok(EventKind::Read),
        "write" => Ok(EventKind::Write),
        other => Err(format!(
            "unknown kind `{other}` (want malloc|free|read|write)"
        )),
    }
}

fn parse_category(s: &str) -> Result<Category, String> {
    match s.to_ascii_lowercase().as_str() {
        "input" | "input-data" => Ok(Category::InputData),
        "parameters" | "params" => Ok(Category::Parameters),
        "intermediates" | "intermediate" => Ok(Category::Intermediates),
        other => Err(format!(
            "unknown category `{other}` (want input|parameters|intermediates)"
        )),
    }
}

fn outlier_flags(args: &[String]) -> (f64, f64, OutlierCriteria) {
    let min_ati_ms = flag_value(args, "--min-ati-ms").unwrap_or(800.0);
    let min_size_mb = flag_value(args, "--min-size-mb").unwrap_or(600.0);
    let criteria = OutlierCriteria {
        min_ati_ns: (min_ati_ms * 1e6) as u64,
        min_size_bytes: (min_size_mb * 1e6) as usize,
    };
    (min_ati_ms, min_size_mb, criteria)
}

// Shared between the JSON path (in-memory trace) and the store-direct
// fused path, so the two print byte-identical output.

fn print_ati(atis: &AtiDataset) {
    if atis.is_empty() {
        println!("no access intervals in this trace");
        return;
    }
    let cdf = atis.cdf();
    println!("{} intervals; CDF:", cdf.len());
    for (v, p) in cdf.summary_rows(10) {
        println!("  p{:<4.0} {:>12}", p * 100.0, human_time(v));
    }
    let samples: Vec<f64> = atis
        .sorted_intervals_ns()
        .iter()
        .map(|&v| v as f64)
        .collect();
    if let Some(vi) = violin_sorted(&samples, 64) {
        println!(
            "violin: median {} IQR [{}, {}]",
            human_time(vi.median as u64),
            human_time(vi.q1 as u64),
            human_time(vi.q3 as u64)
        );
    }
}

fn print_outliers(report: &OutlierReport, min_ati_ms: f64, min_size_mb: f64) {
    let tm = TransferModel::titan_x_pascal_pinned();
    println!(
        "{} of {} behaviors above (ATI {min_ati_ms} ms, size {min_size_mb} MB):",
        report.outliers.len(),
        report.total_behaviors
    );
    for o in report.outliers.iter().take(20) {
        let bound = tm.max_swap_bytes(o.interval_ns);
        println!(
            "  {} ATI {} size {} -> Eq1 {}",
            o.block,
            human_time(o.interval_ns),
            human_bytes(o.size as u64),
            if (o.size as f64) <= bound {
                "swappable"
            } else {
                "not swappable"
            }
        );
    }
}

fn print_breakdown(row: &BreakdownRow) {
    let (i, p, m) = row.fractions();
    println!("peak {}", human_bytes(row.peak_bytes));
    println!("  input data:           {:>6.1}%", i * 100.0);
    println!("  parameters:           {:>6.1}%", p * 100.0);
    println!("  intermediate results: {:>6.1}%", m * 100.0);
}

fn print_gantt(rects: &[GanttRect], max: usize) {
    println!(
        "{:>12} {:>12} {:>12} {:>12}  kind",
        "t0", "t1", "offset", "size"
    );
    for r in rects.iter().take(max) {
        println!(
            "{:>12} {:>12} {:>12} {:>12}  {}",
            human_time(r.t0_ns),
            human_time(r.t1_ns),
            r.offset,
            human_bytes(r.size as u64),
            r.mem_kind
        );
    }
    if rects.len() > max {
        println!("... {} more blocks", rects.len() - max);
    }
}

/// Runs an analysis subcommand straight off a `.ptrc` store through the
/// fused engine — one decode per surviving chunk, no full-trace
/// materialization, byte-identical output to the JSON path.
fn cmd_store_analysis(cmd: &str, path: &str, args: &[String]) -> Result<(), String> {
    let obs = obs_flags(args);
    let mut reader = open_store(path)?;
    let fail = |e: std::io::Error| format!("cannot analyze store {path}: {e}");
    match cmd {
        "ati" => print_ati(&ati_from_store(&mut reader).map_err(fail)?),
        "breakdown" => print_breakdown(&breakdown_from_store(path, &mut reader).map_err(fail)?),
        "gantt" => {
            let max = flag_value(args, "--max").unwrap_or(30.0) as usize;
            print_gantt(
                &gantt_from_store(&mut reader, 0, u64::MAX).map_err(fail)?,
                max,
            );
        }
        "outliers" => {
            let (min_ati_ms, min_size_mb, criteria) = outlier_flags(args);
            print_outliers(
                &outliers_from_store(&mut reader, criteria).map_err(fail)?,
                min_ati_ms,
                min_size_mb,
            );
        }
        "report" => {
            let (_, _, criteria) = outlier_flags(args);
            let max = flag_value(args, "--max").unwrap_or(30.0) as usize;
            let d = TraceReport::from_store(
                &mut reader,
                criteria,
                pinpoint_core::parallel::configured_threads(),
            )
            .map_err(fail)?;
            if args.iter().any(|a| a == "--json") {
                println!("{}", report_json(&d, max));
            } else {
                print!("{}", render_trace_report(&d, max));
            }
        }
        other => return Err(format!("`{other}` has no store-direct path")),
    }
    obs_finish(&obs)
}

fn cmd_convert(input: &str, output: &str) -> Result<(), String> {
    if is_store(input)? {
        let mut reader = open_store(input)?;
        if output.ends_with(".ptrc") {
            // store -> store: format upgrade (e.g. a v1/v2 file rewritten
            // as v3 with adaptive column encodings and fine zone maps)
            let from_version = reader.version();
            let from_len = reader.file_len();
            let trace = reader
                .read_trace()
                .map_err(|e| format!("cannot read store {input}: {e}"))?;
            let bytes = pinpoint_store::write_store_file(&trace, output)
                .map_err(|e| format!("cannot write {output}: {e}"))?;
            println!(
                "{input} (v{from_version}) -> {output} (v{}): {} events, {} -> {} ({:.2}x smaller)",
                pinpoint_store::VERSION,
                trace.len(),
                human_bytes(from_len),
                human_bytes(bytes),
                from_len as f64 / bytes.max(1) as f64,
            );
            return Ok(());
        }
        let trace = reader
            .read_trace()
            .map_err(|e| format!("cannot read store {input}: {e}"))?;
        let out = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
        pinpoint_trace::export::write_json(&trace, std::io::BufWriter::new(out))
            .map_err(|e| format!("cannot write {output}: {e}"))?;
        println!(
            "{input} -> {output}: {} events, {} -> {}",
            trace.len(),
            human_bytes(reader.file_len()),
            human_bytes(std::fs::metadata(output).map(|m| m.len()).unwrap_or(0)),
        );
    } else {
        let trace = load(input)?;
        let bytes = pinpoint_store::write_store_file(&trace, output)
            .map_err(|e| format!("cannot write {output}: {e}"))?;
        let json_bytes = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
        println!(
            "{input} -> {output}: {} events, {} -> {} ({:.1}x smaller)",
            trace.len(),
            human_bytes(json_bytes),
            human_bytes(bytes),
            json_bytes as f64 / bytes.max(1) as f64,
        );
    }
    Ok(())
}

fn cmd_scrub(input: &str, output: &str) -> Result<(), String> {
    if !is_store(input)? {
        return Err(format!("{input} is not a .ptrc store"));
    }
    let mut reader = StoreReader::open_with_policy(input, ReadPolicy::Salvage)
        .map_err(|e| format!("cannot open store {input}: {e}"))?;
    if let Some(s) = reader.salvage_summary() {
        println!(
            "index rebuilt by rescan ({}): recovered {} chunks / {} events{}",
            s.reason,
            s.chunks_recovered,
            s.events_recovered,
            if s.markers_lost {
                "; markers lost with the footer"
            } else {
                ""
            }
        );
    }
    let mut writer =
        StoreWriter::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    let stats = reader
        .scrub_into(&mut writer)
        .map_err(|e| format!("scrub of {input} failed: {e}"))?;
    writer
        .finish()
        .map_err(|e| format!("cannot finish {output}: {e}"))?;
    println!(
        "{input} -> {output}: kept {}/{} chunks, {} events ({} chunks / {} events dropped)",
        stats.chunks_kept,
        stats.chunks_total,
        stats.events_kept,
        stats.chunks_skipped,
        stats.events_lost
    );
    if let Some(e) = &stats.first_error {
        println!("first damage: {e}");
    }
    Ok(())
}

/// `info --verify`: full-store integrity check, `Err` (nonzero exit) on
/// any damage so scripts can gate on it.
fn verify_store(path: &str) -> Result<(), String> {
    let mut reader = StoreReader::open_with_policy(path, ReadPolicy::Salvage)
        .map_err(|e| format!("cannot open store {path}: {e}"))?;
    let rescued = reader.salvage_summary().map(|s| s.reason.clone());
    let faults = reader
        .verify_chunks()
        .map_err(|e| format!("cannot verify {path}: {e}"))?;
    for f in &faults {
        println!(
            "chunk {}: CORRUPT ({}) — {} events lost",
            f.chunk, f.error, f.events_lost
        );
    }
    match (rescued, faults.is_empty()) {
        (None, true) => {
            println!(
                "verify: all {} chunks intact ({} events)",
                reader.num_chunks(),
                reader.total_events()
            );
            Ok(())
        }
        (Some(reason), _) => Err(format!(
            "footer damaged ({reason}); `scrub` can rebuild the store from the {} surviving chunks",
            reader.num_chunks()
        )),
        (None, false) => Err(format!(
            "{} corrupt chunk(s); `scrub` can rebuild the store from the rest",
            faults.len()
        )),
    }
}

fn cmd_info(path: &str, verify: bool) -> Result<(), String> {
    if verify {
        return verify_store(path);
    }
    let mut reader = open_store(path)?;
    let footer = reader.footer().clone();
    let file_len = reader.file_len();
    let data_bytes: u64 = footer.chunks.iter().map(|c| c.byte_len).sum();
    println!(
        "{path}: {} events in {} chunks, {} labels, {} markers",
        footer.total_events,
        footer.chunks.len(),
        footer.labels.len(),
        footer.markers.len()
    );
    println!(
        "file {} = data {} + index/footer {}",
        human_bytes(file_len),
        human_bytes(data_bytes),
        human_bytes(file_len - data_bytes)
    );
    if let (Some(first), Some(last)) = (footer.chunks.first(), footer.chunks.last()) {
        println!(
            "time span {} .. {}; {:.0} events/chunk, {:.2} bytes/event",
            human_time(first.min_time_ns),
            human_time(last.max_time_ns),
            footer.total_events as f64 / footer.chunks.len() as f64,
            data_bytes as f64 / footer.total_events.max(1) as f64
        );
    }
    let trace = reader
        .read_trace()
        .map_err(|e| format!("cannot read store {path}: {e}"))?;
    let json_len = pinpoint_trace::export::json_string(&trace).len() as u64;
    println!(
        "JSON equivalent {} -> {:.1}x smaller",
        human_bytes(json_len),
        json_len as f64 / file_len.max(1) as f64
    );
    Ok(())
}

fn cmd_query(path: &str, args: &[String]) -> Result<(), String> {
    let obs = obs_flags(args);
    let mut reader = open_store(path)?;
    let mut pred = Predicate::any();
    let t0 = flag_value(args, "--t0-us");
    let t1 = flag_value(args, "--t1-us");
    if t0.is_some() || t1.is_some() {
        let lo = (t0.unwrap_or(0.0) * 1e3) as u64;
        let hi = t1.map_or(u64::MAX, |v| (v * 1e3) as u64);
        pred = pred.with_time_range(lo, hi);
    }
    let b0 = flag_value(args, "--block-min");
    let b1 = flag_value(args, "--block-max");
    if b0.is_some() || b1.is_some() {
        pred = pred.with_block_range(b0.unwrap_or(0.0) as u64, b1.map_or(u64::MAX, |v| v as u64));
    }
    for k in flag_strings(args, "--kind") {
        pred = pred.with_kind(parse_kind(k)?);
    }
    for c in flag_strings(args, "--category") {
        pred = pred.with_category(parse_category(c)?);
    }
    if let Some(s) = flag_value(args, "--min-size-bytes") {
        pred = pred.with_min_size(s as u64);
    }
    if let Some(op) = flag_strings(args, "--op-label").first() {
        // a label is resolved by name against the footer's interned
        // table, or taken as a raw label id when it parses as a number
        let id = match reader.footer().labels.iter().position(|l| l == op) {
            Some(i) => i as u32,
            None => op.parse::<u32>().map_err(|_| {
                format!(
                    "unknown op label `{op}` (store has {} labels)",
                    reader.footer().labels.len()
                )
            })?,
        };
        pred = pred.with_op_label(id);
    }
    let max = flag_value(args, "--max").unwrap_or(20.0) as usize;

    let q = reader
        .query(&pred, pinpoint_core::parallel::configured_threads())
        .map_err(|e| format!("query on {path} failed: {e}"))?;
    if args.iter().any(|a| a == "--json") {
        println!("{}", query_json(&q, max));
        return obs_finish(&obs);
    }
    let labels = reader.footer().labels.clone();
    let by_label = if q.stats.chunks_pruned_by_label > 0 {
        format!(", {} by op-label", q.stats.chunks_pruned_by_label)
    } else {
        String::new()
    };
    println!(
        "{} events match; decoded {} of {} chunks ({} pruned by index{by_label})",
        q.events.len(),
        q.stats.chunks_decoded,
        q.stats.chunks_total,
        q.stats.chunks_pruned
    );
    println!(
        "{:>12} {:>6} {:>8} {:>10} {:>12}  {:<12} op",
        "time", "kind", "block", "size", "offset", "mem_kind"
    );
    for e in q.events.iter().take(max) {
        let op = e
            .op_label
            .and_then(|i| labels.get(i as usize))
            .map(String::as_str)
            .unwrap_or("-");
        println!(
            "{:>12} {:>6} {:>8} {:>10} {:>12}  {:<12} {}",
            human_time(e.time_ns),
            format!("{:?}", e.kind),
            e.block.0,
            human_bytes(e.size as u64),
            e.offset,
            format!("{}", e.mem_kind),
            op
        );
    }
    if q.events.len() > max {
        println!("... {} more events (raise --max)", q.events.len() - max);
    }
    obs_finish(&obs)
}

/// `serve`: host a directory of `.ptrc` stores over HTTP until a
/// token-gated `POST /shutdown` (or a signal) stops the process.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let Some(catalog) = flag_str(args, "--catalog") else {
        return Err("serve needs --catalog DIR".to_string());
    };
    if !std::path::Path::new(catalog).is_dir() {
        return Err(format!("--catalog {catalog} is not a directory"));
    }
    let config = pinpoint_serve::ServeConfig {
        catalog_dir: catalog.into(),
        addr: flag_str(args, "--addr")
            .unwrap_or("127.0.0.1:7070")
            .to_string(),
        cache_bytes: flag_value(args, "--cache-bytes").map_or(256 << 20, |v| v as u64),
        result_cache_bytes: flag_value(args, "--result-cache-bytes").map_or(64 << 20, |v| v as u64),
        workers: pinpoint_core::parallel::configured_threads(),
        queue_cap: flag_value(args, "--queue").map_or(64, |v| v as usize),
        keepalive_requests: flag_value(args, "--keepalive").map_or(128, |v| v as usize),
        io_timeout_ms: flag_value(args, "--io-timeout-ms").map_or(10_000, |v| v as u64),
        request_deadline_ms: flag_value(args, "--request-deadline-ms").map_or(30_000, |v| v as u64),
        drain_deadline_ms: flag_value(args, "--drain-deadline-ms").map_or(5_000, |v| v as u64),
        breaker: pinpoint_serve::BreakerConfig {
            threshold: flag_value(args, "--breaker-threshold").map_or(5, |v| v as u32),
            cooldown: flag_value(args, "--breaker-cooldown").map_or(8, |v| v as u32),
            seed: flag_value(args, "--breaker-seed").map_or(0, |v| v as u64),
        },
        shutdown_token: flag_str(args, "--shutdown-token").map(String::from),
        chaos_token: flag_str(args, "--chaos-token").map(String::from),
        ..pinpoint_serve::ServeConfig::default()
    };
    let workers = config.workers;
    let (io_ms, deadline_ms) = (config.io_timeout_ms, config.request_deadline_ms);
    let handle = pinpoint_serve::start(config).map_err(|e| format!("cannot serve: {e}"))?;
    // scripts (and the smoke tests) parse this line for the bound port
    println!(
        "serving {catalog} at http://{} ({workers} workers, io-timeout {io_ms}ms, \
         request-deadline {deadline_ms}ms)",
        handle.addr()
    );
    handle.wait();
    println!("shutdown complete");
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        let Some(n) = n else {
            eprintln!("--threads needs a positive integer");
            return ExitCode::FAILURE;
        };
        pinpoint_core::parallel::set_global_threads(n);
        args.drain(i..=i + 1);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return match cmd_serve(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: pinpoint-trace-tool <summary|report|ati|outliers|breakdown|gantt|ops|plan|compare|convert|info|scrub|query|serve> <trace.{{json|ptrc}}> [out|trace_b] [flags]");
        return ExitCode::FAILURE;
    };
    // store-centric subcommands have their own argument shapes and never
    // materialize a full in-memory trace up front
    match cmd.as_str() {
        "convert" => {
            let Some(out) = args.get(2) else {
                eprintln!("convert needs an input and an output path");
                return ExitCode::FAILURE;
            };
            return match cmd_convert(path, out) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "scrub" => {
            let Some(out) = args.get(2) else {
                eprintln!("scrub needs an input and an output path");
                return ExitCode::FAILURE;
            };
            return match cmd_scrub(path, out) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "info" => {
            return match cmd_info(path, args.iter().any(|a| a == "--verify")) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "query" => {
            return match cmd_query(path, &args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        _ => {}
    }
    // analysis subcommands with a fused-engine twin run straight off a
    // `.ptrc` store — one decode per chunk, no materialized trace
    if matches!(
        cmd.as_str(),
        "ati" | "outliers" | "breakdown" | "gantt" | "report"
    ) {
        match is_store(path) {
            Ok(true) => {
                return match cmd_store_analysis(cmd, path, &args) {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            Ok(false) => {}
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // `compare` needs two traces; load them on the fan-out so both files
    // parse and validate concurrently
    let mut paths = vec![path.clone()];
    if cmd == "compare" {
        let Some(path_b) = args.get(2) else {
            eprintln!("compare needs two trace files");
            return ExitCode::FAILURE;
        };
        paths.push(path_b.clone());
    }
    let mut traces = match pinpoint_core::parallel::try_map_ordered(
        paths,
        pinpoint_core::parallel::configured_threads(),
        |p| load(&p),
    ) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = traces.remove(0);
    match cmd.as_str() {
        "summary" => {
            println!(
                "{} events over {}, {} blocks, {} op labels, {} markers",
                trace.len(),
                human_time(trace.end_time_ns()),
                trace.lifetimes().len(),
                trace.labels().len(),
                trace.markers().len()
            );
            let peak = trace.peak_live_bytes();
            println!("peak footprint: {}", human_bytes(peak.peak_total_bytes));
            let iter = detect(&trace);
            println!(
                "iterative: {} ({} iterations, period {})",
                iter.periodic,
                iter.iterations,
                human_time(iter.mean_period_ns as u64)
            );
        }
        "ati" => print_ati(&AtiDataset::from_trace(&trace)),
        "outliers" => {
            let (min_ati_ms, min_size_mb, criteria) = outlier_flags(&args);
            print_outliers(
                &sift(&AtiDataset::from_trace(&trace), criteria),
                min_ati_ms,
                min_size_mb,
            );
        }
        "breakdown" => print_breakdown(&BreakdownRow::from_trace(path.clone(), &trace)),
        "gantt" => {
            let max = flag_value(&args, "--max").unwrap_or(30.0) as usize;
            print_gantt(&gantt_rects(&trace, 0, trace.end_time_ns()), max);
        }
        "report" => {
            let (_, _, criteria) = outlier_flags(&args);
            let max = flag_value(&args, "--max").unwrap_or(30.0) as usize;
            let obs = obs_flags(&args);
            let d = TraceReport::from_trace(
                &trace,
                criteria,
                pinpoint_core::parallel::configured_threads(),
            );
            if args.iter().any(|a| a == "--json") {
                println!("{}", report_json(&d, max));
            } else {
                print!("{}", render_trace_report(&d, max));
            }
            if let Err(e) = obs_finish(&obs) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "ops" => {
            let top = flag_value(&args, "--top").unwrap_or(15.0) as usize;
            for s in op_stats(&trace).iter().take(top) {
                println!(
                    "{:<32} {:>10} ({} reads, {} writes, {} mallocs)",
                    s.label,
                    human_bytes(s.bytes_total()),
                    s.reads,
                    s.writes,
                    s.mallocs
                );
            }
        }
        "plan" => {
            let tm = TransferModel::titan_x_pascal_pinned();
            let p = plan(&trace, &tm, 1_000_000);
            println!(
                "{} decisions; peak {} -> {} (saves {}, {:.1}%), PCIe traffic {}",
                p.decisions.len(),
                human_bytes(p.baseline_peak_bytes),
                human_bytes(p.planned_peak_bytes),
                human_bytes(p.savings_bytes()),
                p.savings_fraction() * 100.0,
                human_bytes(p.transfer_bytes)
            );
        }
        "compare" => {
            let b = traces.remove(0);
            let d = diff_traces(&trace, &b);
            let row = |name: &str, delta: &pinpoint_analysis::Delta| {
                println!(
                    "{name:<24} {:>14.1} {:>14.1}  ({:+.1}%)",
                    delta.a,
                    delta.b,
                    delta.relative_change() * 100.0
                );
            };
            println!("{:<24} {:>14} {:>14}", "metric", "A", "B");
            row("events", &d.events);
            row("peak bytes", &d.peak_bytes);
            row("duration ns", &d.duration_ns);
            row("median ATI ns", &d.median_ati_ns);
            row("iteration period ns", &d.period_ns);
            row("intermediate fraction", &d.intermediate_fraction);
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
