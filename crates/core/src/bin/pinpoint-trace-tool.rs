//! `pinpoint-trace-tool` — analyze an exported JSON memory-behavior trace.
//!
//! ```text
//! pinpoint-trace-tool summary   trace.json
//! pinpoint-trace-tool ati       trace.json
//! pinpoint-trace-tool outliers  trace.json [--min-ati-ms N] [--min-size-mb N]
//! pinpoint-trace-tool breakdown trace.json
//! pinpoint-trace-tool gantt     trace.json [--max N]
//! pinpoint-trace-tool ops       trace.json [--top N]
//! pinpoint-trace-tool plan      trace.json
//! pinpoint-trace-tool compare   a.json b.json
//! ```
//!
//! `--threads N` (or `PINPOINT_THREADS`) sets the worker-thread count for
//! parallel work (`compare` loads and validates both traces concurrently);
//! output never depends on the thread count.
//!
//! Produce a trace with `pinpoint_trace::export::write_json` (the
//! `mlp_case_study` example writes a CSV twin next to it).

use pinpoint_analysis::{
    detect, diff_traces, gantt_rects, op_stats, plan, sift, violin_sorted, AtiDataset,
    BreakdownRow, OutlierCriteria,
};
use pinpoint_core::report::{human_bytes, human_time};
use pinpoint_device::TransferModel;
use pinpoint_trace::export::read_json;
use pinpoint_trace::Trace;
use std::fs::File;
use std::process::ExitCode;

fn flag_value(args: &[String], name: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn load(path: &str) -> Result<Trace, String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let trace = read_json(f).map_err(|e| format!("cannot parse {path}: {e}"))?;
    trace
        .validate()
        .map_err(|e| format!("{path} is not a well-formed trace: {e}"))?;
    Ok(trace)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        let Some(n) = n else {
            eprintln!("--threads needs a positive integer");
            return ExitCode::FAILURE;
        };
        pinpoint_core::parallel::set_global_threads(n);
        args.drain(i..=i + 1);
    }
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: pinpoint-trace-tool <summary|ati|outliers|breakdown|gantt|ops|plan|compare> <trace.json> [trace_b.json] [flags]");
        return ExitCode::FAILURE;
    };
    // `compare` needs two traces; load them on the fan-out so both files
    // parse and validate concurrently
    let mut paths = vec![path.clone()];
    if cmd == "compare" {
        let Some(path_b) = args.get(2) else {
            eprintln!("compare needs two trace files");
            return ExitCode::FAILURE;
        };
        paths.push(path_b.clone());
    }
    let mut traces = match pinpoint_core::parallel::try_map_ordered(
        paths,
        pinpoint_core::parallel::configured_threads(),
        |p| load(&p),
    ) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = traces.remove(0);
    match cmd.as_str() {
        "summary" => {
            println!(
                "{} events over {}, {} blocks, {} op labels, {} markers",
                trace.len(),
                human_time(trace.end_time_ns()),
                trace.lifetimes().len(),
                trace.labels().len(),
                trace.markers().len()
            );
            let peak = trace.peak_live_bytes();
            println!("peak footprint: {}", human_bytes(peak.peak_total_bytes));
            let iter = detect(&trace);
            println!(
                "iterative: {} ({} iterations, period {})",
                iter.periodic,
                iter.iterations,
                human_time(iter.mean_period_ns as u64)
            );
        }
        "ati" => {
            let atis = AtiDataset::from_trace(&trace);
            if atis.is_empty() {
                println!("no access intervals in this trace");
                return ExitCode::SUCCESS;
            }
            let cdf = atis.cdf();
            println!("{} intervals; CDF:", cdf.len());
            for (v, p) in cdf.summary_rows(10) {
                println!("  p{:<4.0} {:>12}", p * 100.0, human_time(v));
            }
            let samples: Vec<f64> = atis
                .sorted_intervals_ns()
                .iter()
                .map(|&v| v as f64)
                .collect();
            if let Some(vi) = violin_sorted(&samples, 64) {
                println!(
                    "violin: median {} IQR [{}, {}]",
                    human_time(vi.median as u64),
                    human_time(vi.q1 as u64),
                    human_time(vi.q3 as u64)
                );
            }
        }
        "outliers" => {
            let min_ati_ms = flag_value(&args, "--min-ati-ms").unwrap_or(800.0);
            let min_size_mb = flag_value(&args, "--min-size-mb").unwrap_or(600.0);
            let atis = AtiDataset::from_trace(&trace);
            let report = sift(
                &atis,
                OutlierCriteria {
                    min_ati_ns: (min_ati_ms * 1e6) as u64,
                    min_size_bytes: (min_size_mb * 1e6) as usize,
                },
            );
            let tm = TransferModel::titan_x_pascal_pinned();
            println!(
                "{} of {} behaviors above (ATI {min_ati_ms} ms, size {min_size_mb} MB):",
                report.outliers.len(),
                report.total_behaviors
            );
            for o in report.outliers.iter().take(20) {
                let bound = tm.max_swap_bytes(o.interval_ns);
                println!(
                    "  {} ATI {} size {} -> Eq1 {}",
                    o.block,
                    human_time(o.interval_ns),
                    human_bytes(o.size as u64),
                    if (o.size as f64) <= bound {
                        "swappable"
                    } else {
                        "not swappable"
                    }
                );
            }
        }
        "breakdown" => {
            let row = BreakdownRow::from_trace(path.clone(), &trace);
            let (i, p, m) = row.fractions();
            println!("peak {}", human_bytes(row.peak_bytes));
            println!("  input data:           {:>6.1}%", i * 100.0);
            println!("  parameters:           {:>6.1}%", p * 100.0);
            println!("  intermediate results: {:>6.1}%", m * 100.0);
        }
        "gantt" => {
            let max = flag_value(&args, "--max").unwrap_or(30.0) as usize;
            let rects = gantt_rects(&trace, 0, trace.end_time_ns());
            println!(
                "{:>12} {:>12} {:>12} {:>12}  kind",
                "t0", "t1", "offset", "size"
            );
            for r in rects.iter().take(max) {
                println!(
                    "{:>12} {:>12} {:>12} {:>12}  {}",
                    human_time(r.t0_ns),
                    human_time(r.t1_ns),
                    r.offset,
                    human_bytes(r.size as u64),
                    r.mem_kind
                );
            }
            if rects.len() > max {
                println!("... {} more blocks", rects.len() - max);
            }
        }
        "ops" => {
            let top = flag_value(&args, "--top").unwrap_or(15.0) as usize;
            for s in op_stats(&trace).iter().take(top) {
                println!(
                    "{:<32} {:>10} ({} reads, {} writes, {} mallocs)",
                    s.label,
                    human_bytes(s.bytes_total()),
                    s.reads,
                    s.writes,
                    s.mallocs
                );
            }
        }
        "plan" => {
            let tm = TransferModel::titan_x_pascal_pinned();
            let p = plan(&trace, &tm, 1_000_000);
            println!(
                "{} decisions; peak {} -> {} (saves {}, {:.1}%), PCIe traffic {}",
                p.decisions.len(),
                human_bytes(p.baseline_peak_bytes),
                human_bytes(p.planned_peak_bytes),
                human_bytes(p.savings_bytes()),
                p.savings_fraction() * 100.0,
                human_bytes(p.transfer_bytes)
            );
        }
        "compare" => {
            let b = traces.remove(0);
            let d = diff_traces(&trace, &b);
            let row = |name: &str, delta: &pinpoint_analysis::Delta| {
                println!(
                    "{name:<24} {:>14.1} {:>14.1}  ({:+.1}%)",
                    delta.a,
                    delta.b,
                    delta.relative_change() * 100.0
                );
            };
            println!("{:<24} {:>14} {:>14}", "metric", "A", "B");
            row("events", &d.events);
            row("peak bytes", &d.peak_bytes);
            row("duration ns", &d.duration_ns);
            row("median ATI ns", &d.median_ati_ns);
            row("iteration period ns", &d.period_ns);
            row("intermediate fraction", &d.intermediate_fraction);
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
