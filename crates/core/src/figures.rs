//! Typed regenerators for every figure of the paper.
//!
//! Each `figN_*` function reruns the corresponding experiment on the
//! simulator and returns the figure's data as plain structs; the bench
//! harness and examples print them as the paper's rows/series. Parameters
//! default to paper scale but can be shrunk for quick runs.

use crate::parallel::{configured_threads, try_map_ordered};
use crate::profiler::{profile, EpochEval, ProfileConfig, ProfileError};
use pinpoint_analysis::{
    assess, detect, sift, violin_sorted, worst_fragmentation, AtiFold, AtiRecord, BreakdownFold,
    BreakdownRow, EmpiricalCdf, FragmentationSnapshot, FusedPipeline, GanttFold, GanttRect,
    IterativeReport, OutlierCriteria, OutlierReport, ViolinStats,
};
use pinpoint_data::DatasetSpec;
use pinpoint_models::{Architecture, DenseNetDepth, MlpConfig, ResNetDepth};

/// Fig. 1: the MLP's op topology — the ordered op schedule of one forward
/// pass (★ = `matmul`, + = `add_bias`, f = `relu`).
pub fn fig1_topology() -> Vec<String> {
    let mut b = pinpoint_nn::GraphBuilder::new();
    let x = b.input("x", [128, 2]);
    pinpoint_models::mlp::forward(&mut b, x, &MlpConfig::default());
    b.graph().ops().iter().map(|o| o.name.clone()).collect()
}

/// Fig. 2 data: the Gantt chart of the first `iterations` MLP training
/// iterations plus the paper's two observations about it.
#[derive(Debug, Clone)]
pub struct Fig2Data {
    /// One rectangle per device block.
    pub rects: Vec<GanttRect>,
    /// Periodicity check (the "obvious iterative patterns" observation).
    pub iterative: IterativeReport,
    /// Worst fragmentation snapshot (the "fewer memory fragments"
    /// observation).
    pub worst_fragmentation: FragmentationSnapshot,
    /// Total simulated time.
    pub duration_ns: u64,
}

/// Regenerates Fig. 2 (default: 5 iterations, as in the paper).
///
/// # Errors
///
/// Propagates device errors.
pub fn fig2_gantt(iterations: usize) -> Result<Fig2Data, ProfileError> {
    let report = profile(&ProfileConfig::mlp_case_study(iterations))?;
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(GanttFold {
        t_start: 0,
        t_end: report.trace.end_time_ns(),
    });
    let rects = pipe.run_trace(&report.trace, configured_threads()).take(h);
    Ok(Fig2Data {
        iterative: detect(&report.trace),
        worst_fragmentation: worst_fragmentation(&report.trace, 64),
        duration_ns: report.duration_ns,
        rects,
    })
}

/// Fig. 3 data: the ATI distribution of MLP training.
#[derive(Debug, Clone)]
pub struct Fig3Data {
    /// Empirical CDF of all ATIs (Fig. 3a).
    pub cdf: EmpiricalCdf,
    /// Violin statistics (Fig. 3b).
    pub violin: ViolinStats,
    /// Fraction of ATIs at or below 25 µs (the paper's "90 %" statement).
    pub fraction_at_or_below_25us: f64,
    /// 90th-percentile ATI in nanoseconds.
    pub p90_ns: u64,
    /// Number of intervals measured.
    pub count: usize,
    /// Violin of intervals closed by a read (per-behavior split, Fig. 3b).
    pub violin_reads: Option<ViolinStats>,
    /// Violin of intervals closed by a write.
    pub violin_writes: Option<ViolinStats>,
}

/// Regenerates Fig. 3 from `iterations` of MLP training (default 50).
///
/// # Errors
///
/// Propagates device errors.
///
/// # Panics
///
/// Panics if the run produced no intervals (requires `iterations >= 2`).
pub fn fig3_ati(iterations: usize) -> Result<Fig3Data, ProfileError> {
    let report = profile(&ProfileConfig::mlp_case_study(iterations))?;
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(AtiFold);
    let atis = pipe.run_trace(&report.trace, configured_threads()).take(h);
    let cdf = atis.cdf();
    // u64 -> f64 is monotone, so the cached ascending order survives the cast
    let samples: Vec<f64> = atis
        .sorted_intervals_ns()
        .iter()
        .map(|&v| v as f64)
        .collect();
    let violin_all = violin_sorted(&samples, 128).expect("non-empty ATI set");
    let per_kind = |kind| {
        let subset = atis.of_closing_kind(kind);
        let vals: Vec<f64> = subset
            .sorted_intervals_ns()
            .iter()
            .map(|&v| v as f64)
            .collect();
        violin_sorted(&vals, 128)
    };
    Ok(Fig3Data {
        fraction_at_or_below_25us: atis.fraction_at_or_below(25_000),
        p90_ns: cdf.percentile(0.9),
        count: cdf.len(),
        violin_reads: per_kind(pinpoint_trace::EventKind::Read),
        violin_writes: per_kind(pinpoint_trace::EventKind::Write),
        cdf,
        violin: violin_all,
    })
}

/// Fig. 4 data: every behavior's (ATI, block size) pair plus the sifted
/// outliers and their Equation-1 verdicts.
#[derive(Debug, Clone)]
pub struct Fig4Data {
    /// All behaviors, in closing-access order (the figure's x-axis).
    pub points: Vec<AtiRecord>,
    /// Behaviors above the paper's thresholds (> 0.8 s, > 600 MB).
    pub outliers: OutlierReport,
    /// The most extreme outlier with its Equation-1 bound (the red point).
    pub red_point: Option<(AtiRecord, f64)>,
    /// Count of behaviors that are profitably swappable under Equation 1.
    pub swappable_count: usize,
}

/// Regenerates Fig. 4: MLP training with a per-epoch evaluation buffer.
///
/// Paper scale is `epochs = 2`, [`EpochEval::paper_scale`]; tests can pass
/// a smaller `eval` to keep runtimes low.
///
/// # Errors
///
/// Propagates device errors.
pub fn fig4_outliers(eval: EpochEval, epochs: usize) -> Result<Fig4Data, ProfileError> {
    let mut cfg = ProfileConfig::mlp_case_study(eval.iters_per_epoch * epochs + 1);
    cfg.epoch_eval = Some(eval);
    let report = profile(&cfg)?;
    let mut pipe = FusedPipeline::new();
    let h = pipe.register(AtiFold);
    let atis = pipe.run_trace(&report.trace, configured_threads()).take(h);
    let transfer = cfg.device.transfer.clone();
    let swap_report = assess(&atis, &transfer);
    // scale the outlier criteria with the evaluation buffer so shrunken
    // test runs still find their outlier; at paper scale this is exactly
    // the paper's (0.8 s, 600 MB)
    let criteria = OutlierCriteria {
        min_ati_ns: if eval == EpochEval::paper_scale() {
            OutlierCriteria::paper_fig4().min_ati_ns
        } else {
            1_000_000
        },
        min_size_bytes: eval.buffer_bytes / 2,
    };
    let outliers = sift(&atis, criteria);
    let red_point = outliers
        .most_extreme()
        .map(|r| (*r, transfer.max_swap_bytes(r.interval_ns)));
    Ok(Fig4Data {
        points: atis.records().to_vec(),
        outliers,
        red_point,
        swappable_count: swap_report.swappable_count,
    })
}

/// The "typical DNNs" of Fig. 5, at CIFAR-100 geometry.
pub fn fig5_architectures() -> Vec<Architecture> {
    vec![
        Architecture::Mlp(MlpConfig::default()),
        Architecture::LeNet5,
        Architecture::AlexNet,
        Architecture::Vgg16,
        Architecture::ResNet(ResNetDepth::R18),
        Architecture::ResNet(ResNetDepth::R50),
        Architecture::Inception,
        Architecture::DenseNet(DenseNetDepth::D121),
        Architecture::MobileNetV1,
    ]
}

/// Runs every breakdown-sweep configuration on the scoped-thread fan-out
/// and returns one row per config, in input order. Each profile is fully
/// independent (own device, own executor, fixed seed), so the rows are
/// bit-identical at any thread count.
fn breakdown_rows(configs: Vec<ProfileConfig>) -> Result<Vec<BreakdownRow>, ProfileError> {
    try_map_ordered(configs, configured_threads(), |cfg| {
        let report = profile(&cfg)?;
        // inner threads = 1: the outer fan-out already owns the workers
        let mut pipe = FusedPipeline::new();
        let h = pipe.register(BreakdownFold {
            label: report.label.clone(),
        });
        Ok(pipe.run_trace(&report.trace, 1).take(h))
    })
}

/// Regenerates Fig. 5: the occupation breakdown of typical DNNs at
/// ImageNet geometry (the paper's "typical DNN training"; the MLP uses its
/// own 2-feature input).
///
/// # Errors
///
/// Propagates device errors.
pub fn fig5_breakdown(batch: usize) -> Result<Vec<BreakdownRow>, ProfileError> {
    breakdown_rows(
        fig5_architectures()
            .into_iter()
            .map(|arch| ProfileConfig::breakdown_sweep(arch, DatasetSpec::imagenet(), batch))
            .collect(),
    )
}

/// Regenerates Fig. 6: AlexNet breakdown across batch sizes, on CIFAR-100
/// (Fig. 6a) and ImageNet (Fig. 6b) geometries.
///
/// # Errors
///
/// Propagates device errors.
pub fn fig6_alexnet(batches: &[usize]) -> Result<Vec<BreakdownRow>, ProfileError> {
    let mut configs = Vec::new();
    for dataset in [DatasetSpec::cifar100(), DatasetSpec::imagenet()] {
        for &batch in batches {
            configs.push(ProfileConfig::breakdown_sweep(
                Architecture::AlexNet,
                dataset.clone(),
                batch,
            ));
        }
    }
    breakdown_rows(configs)
}

/// Regenerates Fig. 7: ResNet-18/34/50/101/152 breakdown across batch
/// sizes, on CIFAR-100 and ImageNet geometries.
///
/// # Errors
///
/// Propagates device errors.
pub fn fig7_resnet(batches: &[usize]) -> Result<Vec<BreakdownRow>, ProfileError> {
    let mut configs = Vec::new();
    for dataset in [DatasetSpec::cifar100(), DatasetSpec::imagenet()] {
        for depth in ResNetDepth::ALL {
            for &batch in batches {
                configs.push(ProfileConfig::breakdown_sweep(
                    Architecture::ResNet(depth),
                    dataset.clone(),
                    batch,
                ));
            }
        }
    }
    breakdown_rows(configs)
}

/// Extension experiment: forward-only (inference-footprint) vs full
/// training peak, per architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainVsForwardRow {
    /// Architecture name.
    pub arch: String,
    /// Peak footprint of the forward-only program, bytes.
    pub forward_peak_bytes: u64,
    /// Peak footprint of the full training iteration, bytes.
    pub training_peak_bytes: u64,
}

impl TrainVsForwardRow {
    /// Training peak as a multiple of the forward-only peak.
    pub fn training_multiplier(&self) -> f64 {
        if self.forward_peak_bytes == 0 {
            0.0
        } else {
            self.training_peak_bytes as f64 / self.forward_peak_bytes as f64
        }
    }
}

/// Extension: quantifies what training's saved intermediates cost by
/// comparing each architecture's forward-only and full-training peaks
/// (ImageNet geometry).
///
/// # Errors
///
/// Propagates device errors.
pub fn ext_training_vs_forward(batch: usize) -> Result<Vec<TrainVsForwardRow>, ProfileError> {
    try_map_ordered(fig5_architectures(), configured_threads(), |arch| {
        let mut fwd_cfg = ProfileConfig::breakdown_sweep(arch, DatasetSpec::imagenet(), batch);
        fwd_cfg.forward_only = true;
        let fwd = profile(&fwd_cfg)?;
        let train_cfg = ProfileConfig::breakdown_sweep(arch, DatasetSpec::imagenet(), batch);
        let train = profile(&train_cfg)?;
        Ok(TrainVsForwardRow {
            arch: arch.name(),
            forward_peak_bytes: fwd.trace.peak_live_bytes().peak_total_bytes,
            training_peak_bytes: train.trace.peak_live_bytes().peak_total_bytes,
        })
    })
}

/// Extension experiment: data-parallel scaling — iteration time and peak
/// footprint of one rank as the world size grows.
#[derive(Debug, Clone, PartialEq)]
pub struct DataParallelRow {
    /// Number of replicas.
    pub world_size: usize,
    /// Peak footprint of one rank, bytes.
    pub peak_bytes: u64,
    /// Simulated iteration time, nanoseconds.
    pub iteration_ns: u64,
}

/// Extension: profiles one rank of DDP training at several world sizes
/// (PCIe interconnect defaults).
///
/// # Errors
///
/// Propagates device errors.
pub fn ext_data_parallel(
    arch: Architecture,
    batch: usize,
    worlds: &[usize],
) -> Result<Vec<DataParallelRow>, ProfileError> {
    try_map_ordered(worlds.to_vec(), configured_threads(), |world_size| {
        let mut cfg = ProfileConfig::breakdown_sweep(arch, DatasetSpec::imagenet(), batch);
        cfg.data_parallel = Some(pinpoint_models::DdpSpec::pcie(world_size));
        let report = profile(&cfg)?;
        Ok(DataParallelRow {
            world_size,
            peak_bytes: report.trace.peak_live_bytes().peak_total_bytes,
            iteration_ns: report.duration_ns / report.iterations as u64,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_matches_the_paper_topology() {
        let ops = fig1_topology();
        assert_eq!(
            ops,
            vec![
                "fc0.matmul",
                "fc0.bias_add",
                "relu0",
                "fc1.matmul",
                "fc1.bias_add"
            ]
        );
    }

    #[test]
    fn fig2_is_periodic_with_low_fragmentation() {
        let d = fig2_gantt(5).unwrap();
        assert!(d.iterative.periodic, "{:?}", d.iterative);
        assert_eq!(d.iterative.iterations, 5);
        assert!(!d.rects.is_empty());
        // "fewer memory fragments": worst gap fraction stays small
        assert!(
            d.worst_fragmentation.gap_fraction() < 0.5,
            "{:?}",
            d.worst_fragmentation
        );
    }

    #[test]
    fn fig3_distribution_is_concentrated() {
        let d = fig3_ati(20).unwrap();
        assert!(d.count > 100);
        // most ATIs are tiny: the bulk sits at tens of microseconds, and
        // the tail (cross-phase weight accesses) stays within the iteration
        assert!(
            d.fraction_at_or_below_25us > 0.4,
            "fraction {}",
            d.fraction_at_or_below_25us
        );
        assert!(d.p90_ns < 500_000, "p90 {} ns", d.p90_ns);
        assert!(d.violin.median > 1_000.0 && d.violin.median < 100_000.0);
        // Equation-1 consequence: even the p90 ATI admits only a tiny swap
        let bound =
            pinpoint_device::TransferModel::titan_x_pascal_pinned().max_swap_bytes(d.p90_ns);
        assert!(bound < 2_000_000.0, "p90 swap bound {bound} B");
    }

    #[test]
    fn fig4_small_scale_finds_outlier() {
        // shrunken Fig. 4: 4 MB buffer touched every 20 iterations; the
        // epoch period (~3.5 ms) still makes Equation 1 pass for it
        let eval = EpochEval {
            iters_per_epoch: 20,
            buffer_bytes: 4_000_000,
        };
        let d = fig4_outliers(eval, 2).unwrap();
        assert!(!d.points.is_empty());
        assert!(!d.outliers.outliers.is_empty());
        let (red, bound) = d.red_point.unwrap();
        assert!(red.size >= 4_000_000);
        assert!(red.interval_ns > 1_000_000);
        assert!(bound > red.size as f64, "outlier should be Eq1-swappable");
    }

    #[test]
    fn fig5_parameters_are_a_small_fraction_for_most_dnns() {
        let rows = fig5_breakdown(128).unwrap();
        assert_eq!(rows.len(), fig5_architectures().len());
        let mut param_minor = 0;
        for row in &rows {
            let (_, p, i) = row.fractions();
            if p < 0.4 {
                param_minor += 1;
            }
            assert!(i > 0.0);
            assert!(p < 0.7, "no net is parameter-dominated: {row:?}");
        }
        // "for most DNNs, parameters only account for a small fraction"
        assert!(param_minor >= rows.len() - 2, "{rows:?}");
    }

    #[test]
    fn fig6_intermediates_grow_with_batch() {
        let rows = fig6_alexnet(&[32, 256]).unwrap();
        assert_eq!(rows.len(), 4);
        // same dataset: growing batch grows the intermediate share and
        // shrinks the parameter share
        for pair in rows.chunks(2) {
            let (_, p_small, i_small) = pair[0].fractions();
            let (_, p_big, i_big) = pair[1].fractions();
            assert!(i_big > i_small, "{pair:?}");
            assert!(p_big < p_small, "{pair:?}");
        }
    }

    #[test]
    fn data_parallel_adds_comm_time_not_memory() {
        let rows =
            ext_data_parallel(Architecture::ResNet(ResNetDepth::R18), 16, &[1, 4, 8]).unwrap();
        assert_eq!(rows.len(), 3);
        // in-place bucket all-reduce: same peak at every world size
        assert_eq!(rows[0].peak_bytes, rows[1].peak_bytes);
        assert_eq!(rows[1].peak_bytes, rows[2].peak_bytes);
        // iteration time grows with the 2(N-1)/N wire term
        assert!(rows[1].iteration_ns > rows[0].iteration_ns, "{rows:?}");
        assert!(rows[2].iteration_ns > rows[1].iteration_ns, "{rows:?}");
        // but sub-linearly: the ring term saturates at 2× the bucket bytes
        let ratio = rows[2].iteration_ns as f64 / rows[0].iteration_ns as f64;
        assert!(ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn training_costs_a_multiple_of_forward_memory() {
        let rows = ext_training_vs_forward(16).unwrap();
        assert_eq!(rows.len(), fig5_architectures().len());
        for r in &rows {
            assert!(
                r.training_multiplier() > 1.3,
                "training must cost well beyond forward: {r:?}"
            );
        }
        // conv nets with long chains of saved activations pay the most
        let vgg = rows.iter().find(|r| r.arch == "vgg16").unwrap();
        assert!(vgg.training_multiplier() > 2.0, "{vgg:?}");
    }

    #[test]
    fn fig7_holds_for_all_depths() {
        let rows = fig7_resnet(&[32, 128]).unwrap();
        assert_eq!(rows.len(), 2 * 5 * 2);
        for pair in rows.chunks(2) {
            let (_, p_small, i_small) = pair[0].fractions();
            let (_, p_big, i_big) = pair[1].fractions();
            assert!(i_big >= i_small, "{pair:?}");
            assert!(p_big <= p_small, "{pair:?}");
        }
    }
}
