//! # pinpoint-core
//!
//! The top of the `pinpoint` stack — the reproduction of *"Pinpointing the
//! Memory Behaviors of DNN Training"* (ISPASS 2021):
//!
//! * [`profile`] / [`ProfileConfig`] — run an instrumented training
//!   profile of any zoo architecture on the simulated device and get the
//!   full `malloc`/`free`/`read`/`write` trace back;
//! * [`figures`] — typed regenerators for every figure of the paper
//!   (Fig. 1 topology, Fig. 2 Gantt, Fig. 3 ATI distribution, Fig. 4
//!   outliers + Equation 1, Figs. 5–7 occupation breakdowns);
//! * [`report`] — paper-style text rendering of the figure data.
//!
//! # Examples
//!
//! ```
//! use pinpoint_core::{profile, ProfileConfig};
//! use pinpoint_analysis::detect;
//!
//! let report = profile(&ProfileConfig::mlp_case_study(5))?;
//! report.trace.validate().expect("well-formed trace");
//! assert!(detect(&report.trace).periodic); // the paper's Fig. 2 claim
//! # Ok::<(), pinpoint_core::ProfileError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
mod profiler;
pub mod report;

/// Deterministic scoped-thread fan-out (re-export of `pinpoint-parallel`).
///
/// Kept at its historical `pinpoint_core::parallel` path; the module now
/// lives in its own crate so lower layers (the trace store's parallel
/// chunk decode) can share the same engine and the same
/// `--threads`/`PINPOINT_THREADS` configuration.
pub mod parallel {
    pub use pinpoint_parallel::*;
}

pub use profiler::{
    profile, profile_into_sink, EpochEval, ProfileConfig, ProfileError, ProfileReport,
    SinkProfileReport,
};
