//! The profiler: instrumented training runs, end to end.
//!
//! [`profile`] is the reproduction's equivalent of the paper's instrumented
//! PyTorch: it builds a training program for an architecture, replays it on
//! a simulated device, and returns the full memory-behavior trace plus
//! bookkeeping.

use pinpoint_data::{DatasetSpec, TwoBlobs};
use pinpoint_device::alloc::{AllocError, AllocStats};
use pinpoint_device::{DeviceConfig, SimDevice};
use pinpoint_models::{build_training_program, Architecture, ImageDims};
use pinpoint_nn::exec::{BatchData, ExecMode, Executor};
use pinpoint_nn::{Optimizer, ProgramSummary};
use pinpoint_tensor::rng::Rng64;
use pinpoint_trace::{MemoryKind, Trace, TraceSink};
use std::fmt;

/// A per-epoch device-resident evaluation buffer.
///
/// Models coarse-grained resident data (full-dataset staging / evaluation
/// snapshots) that is touched once per epoch: the source of the paper's
/// Fig. 4 outliers (huge block, ATI ≈ epoch period). The buffer is
/// allocated at the first epoch boundary, accessed by one kernel per epoch,
/// and freed when profiling ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochEval {
    /// Iterations per epoch (how often the buffer is touched).
    pub iters_per_epoch: usize,
    /// Buffer size in bytes (the paper's outlier is 1.2 GB).
    pub buffer_bytes: usize,
}

impl EpochEval {
    /// The paper-scale configuration: a 1.2 GB buffer touched every 2900
    /// iterations (≈ 0.84 s of simulated MLP training at batch 128 — the
    /// Fig. 4 red point's 840 211 µs ATI).
    pub fn paper_scale() -> Self {
        EpochEval {
            iters_per_epoch: 2_900,
            buffer_bytes: 1_200_000_000,
        }
    }
}

/// Everything needed to run one instrumented training profile.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Model architecture.
    pub arch: Architecture,
    /// Dataset geometry.
    pub dataset: DatasetSpec,
    /// Mini-batch size.
    pub batch: usize,
    /// Training iterations to trace.
    pub iterations: usize,
    /// Optimizer emitted into the program.
    pub optimizer: Optimizer,
    /// Simulated device configuration.
    pub device: DeviceConfig,
    /// Concrete (real math) or symbolic (trace-only) execution.
    pub mode: ExecMode,
    /// Optional per-epoch evaluation buffer (Fig. 4 outlier source).
    pub epoch_eval: Option<EpochEval>,
    /// Profile the forward-only program instead of the full training
    /// iteration (the inference-footprint extension experiment).
    pub forward_only: bool,
    /// Apply activation checkpointing with this density before compiling
    /// (keep every k-th activation; `None` disables the transform).
    pub checkpoint_every: Option<usize>,
    /// Profile as one rank of a data-parallel job (adds fused-bucket
    /// gradient all-reduces between backward and the optimizer step).
    pub data_parallel: Option<pinpoint_models::DdpSpec>,
    /// RNG seed (init values, concrete data).
    pub seed: u64,
    /// Worker threads for intra-profile kernel work (concrete conv batch
    /// fan-out); 0 resolves via [`crate::parallel::configured_threads`].
    /// Never affects trace contents or numerics — only wall-clock time.
    pub threads: usize,
}

impl ProfileConfig {
    /// The paper's MLP case study: Fig. 1 topology, batch 128, caching
    /// allocator on a Titan-X-Pascal-like device, symbolic execution.
    pub fn mlp_case_study(iterations: usize) -> Self {
        ProfileConfig {
            arch: Architecture::Mlp(pinpoint_models::MlpConfig::default()),
            dataset: DatasetSpec::two_blobs(),
            batch: 128,
            iterations,
            optimizer: Optimizer::Sgd { lr: 0.05 },
            device: DeviceConfig::titan_x_pascal(),
            mode: ExecMode::Symbolic,
            epoch_eval: None,
            forward_only: false,
            checkpoint_every: None,
            data_parallel: None,
            seed: 0x9_1517,
            threads: 0,
        }
    }

    /// A breakdown-sweep configuration (Figs. 5–7): symbolic, 2 iterations,
    /// and a roomy 256 GB device so even ResNet-152 at batch 256 on
    /// ImageNet-sized inputs fits (the figures report *ratios*, not OOMs).
    pub fn breakdown_sweep(arch: Architecture, dataset: DatasetSpec, batch: usize) -> Self {
        ProfileConfig {
            arch,
            dataset,
            batch,
            iterations: 2,
            optimizer: Optimizer::Sgd { lr: 0.05 },
            device: DeviceConfig {
                capacity_bytes: 256 << 30,
                ..DeviceConfig::titan_x_pascal()
            },
            mode: ExecMode::Symbolic,
            epoch_eval: None,
            forward_only: false,
            checkpoint_every: None,
            data_parallel: None,
            seed: 0x9_1517,
            threads: 0,
        }
    }

    /// The effective intra-profile thread count: the explicit `threads`
    /// field, or the process-wide configuration when it is 0.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            crate::parallel::configured_threads()
        }
    }
}

/// The result of an instrumented training run.
#[derive(Debug)]
pub struct ProfileReport {
    /// Workload label, e.g. `"alexnet/cifar100/bs128"`.
    pub label: String,
    /// The full memory-behavior trace.
    pub trace: Trace,
    /// Loss per iteration (concrete mode only).
    pub loss_history: Vec<f32>,
    /// Final allocator counters.
    pub alloc_stats: AllocStats,
    /// Iterations run.
    pub iterations: usize,
    /// Static program accounting.
    pub program_summary: ProgramSummary,
    /// Total simulated time.
    pub duration_ns: u64,
}

/// The result of an instrumented training run that spilled its trace to an
/// external [`TraceSink`] (e.g. a streaming `.ptrc` writer) instead of
/// holding it in memory.
///
/// Everything from [`ProfileReport`] except the trace itself — the caller
/// re-opens whatever the sink wrote (typically with a store reader) to get
/// the events back.
#[derive(Debug)]
pub struct SinkProfileReport {
    /// Workload label, e.g. `"alexnet/cifar100/bs128"`.
    pub label: String,
    /// Events delivered to the sink.
    pub events_recorded: u64,
    /// Loss per iteration (concrete mode only).
    pub loss_history: Vec<f32>,
    /// Final allocator counters.
    pub alloc_stats: AllocStats,
    /// Iterations run.
    pub iterations: usize,
    /// Static program accounting.
    pub program_summary: ProgramSummary,
    /// Total simulated time.
    pub duration_ns: u64,
}

/// Why a profile failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The simulated device ran out of memory.
    Device(AllocError),
    /// The trace sink failed to persist the trace (I/O).
    Sink(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Device(e) => write!(f, "device error: {e}"),
            ProfileError::Sink(msg) => write!(f, "trace sink error: {msg}"),
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Device(e) => Some(e),
            ProfileError::Sink(_) => None,
        }
    }
}

impl From<AllocError> for ProfileError {
    fn from(e: AllocError) -> Self {
        ProfileError::Device(e)
    }
}

/// Runs one instrumented training profile.
///
/// # Errors
///
/// Returns [`ProfileError::Device`] if the device runs out of memory.
///
/// # Panics
///
/// Panics if more than one of `forward_only`, `checkpoint_every`, and
/// `data_parallel` is set — they select mutually exclusive program shapes.
pub fn profile(config: &ProfileConfig) -> Result<ProfileReport, ProfileError> {
    let device = SimDevice::new(config.device.clone());
    let run = run_on_device(config, device)?;
    let device = run.device;
    Ok(ProfileReport {
        label: workload_label(config),
        loss_history: run.loss_history,
        alloc_stats: *device.alloc_stats(),
        iterations: run.iterations,
        program_summary: run.program_summary,
        duration_ns: device.now_ns(),
        trace: device.into_trace(),
    })
}

/// Runs one instrumented training profile, streaming every event into
/// `sink` instead of materializing an in-memory trace.
///
/// The sink's [`TraceSink::finish`] is called after the run (and its
/// deferred I/O error, if any, surfaces as [`ProfileError::Sink`]), so a
/// `.ptrc` [`StoreWriter`](pinpoint_store::StoreWriter) handed in here
/// yields a complete, readable store on success.
///
/// # Errors
///
/// Returns [`ProfileError::Device`] if the device runs out of memory and
/// [`ProfileError::Sink`] if the sink fails to persist the trace.
///
/// # Panics
///
/// Panics under the same mutually-exclusive-mode rule as [`profile`].
pub fn profile_into_sink(
    config: &ProfileConfig,
    sink: Box<dyn TraceSink + Send>,
) -> Result<SinkProfileReport, ProfileError> {
    let device = SimDevice::with_sink(config.device.clone(), sink);
    let run = run_on_device(config, device)?;
    let mut device = run.device;
    device
        .finish_sink()
        .map_err(|e| ProfileError::Sink(e.to_string()))?;
    Ok(SinkProfileReport {
        label: workload_label(config),
        events_recorded: device.events_recorded(),
        loss_history: run.loss_history,
        alloc_stats: *device.alloc_stats(),
        iterations: run.iterations,
        program_summary: run.program_summary,
        duration_ns: device.now_ns(),
    })
}

fn workload_label(config: &ProfileConfig) -> String {
    format!(
        "{}/{}/bs{}",
        config.arch.name(),
        config.dataset.name,
        config.batch
    )
}

/// What a finished run hands back to the report builders.
struct RunOutcome {
    device: SimDevice,
    iterations: usize,
    loss_history: Vec<f32>,
    program_summary: ProgramSummary,
}

fn run_on_device(config: &ProfileConfig, device: SimDevice) -> Result<RunOutcome, ProfileError> {
    let modes = [
        config.forward_only,
        config.checkpoint_every.is_some(),
        config.data_parallel.is_some(),
    ]
    .iter()
    .filter(|&&m| m)
    .count();
    assert!(
        modes <= 1,
        "forward_only, checkpoint_every and data_parallel are mutually exclusive"
    );
    let dims = ImageDims {
        channels: config.dataset.channels,
        height: config.dataset.height,
        width: config.dataset.width,
    };
    let program = if let Some(ddp) = config.data_parallel {
        pinpoint_models::build_data_parallel_training_program(
            &config.arch,
            config.batch,
            dims,
            config.dataset.classes,
            config.optimizer,
            &ddp,
        )
    } else if config.forward_only {
        pinpoint_models::build_forward_program(
            &config.arch,
            config.batch,
            dims,
            config.dataset.classes,
        )
    } else if let Some(keep_every) = config.checkpoint_every {
        let (graph, inputs, loss) = pinpoint_models::build_training_graph(
            &config.arch,
            config.batch,
            dims,
            config.dataset.classes,
            config.optimizer,
        );
        let graph = pinpoint_nn::checkpoint::apply_checkpointing(&graph, loss, keep_every);
        pinpoint_nn::Program::compile(graph, inputs, loss)
    } else {
        build_training_program(
            &config.arch,
            config.batch,
            dims,
            config.dataset.classes,
            config.optimizer,
        )
    };
    let program_summary = program.summary();
    let mut exec = Executor::with_seed(program, device, config.mode, config.seed)?;
    exec.set_threads(config.resolved_threads());
    let mut data_gen = ConcreteDataGen::new(config);
    let mut eval_buffer = None;
    for i in 0..config.iterations {
        let batch = data_gen.next();
        exec.run_iteration(batch.as_ref())?;
        if let Some(eval) = config.epoch_eval {
            if (i + 1) % eval.iters_per_epoch == 0 {
                let dev = exec.device_mut();
                let buf = match eval_buffer {
                    Some(b) => b,
                    None => {
                        let b =
                            dev.malloc(eval.buffer_bytes, MemoryKind::Other, Some("epoch_eval"))?;
                        eval_buffer = Some(b);
                        b
                    }
                };
                dev.mark(format!("epoch:{}", (i + 1) / eval.iters_per_epoch));
                dev.launch_kernel(
                    "epoch_eval.update",
                    0,
                    eval.buffer_bytes as u64,
                    &[buf],
                    &[buf],
                );
            }
        }
    }
    if let Some(buf) = eval_buffer {
        exec.device_mut().free(buf)?;
    }
    let iterations = exec.iterations_run() as usize;
    let loss_history = exec.loss_history().to_vec();
    let device = exec.into_device();
    Ok(RunOutcome {
        device,
        iterations,
        loss_history,
        program_summary,
    })
}

/// Generates concrete batches when the profile runs in concrete mode.
#[derive(Debug)]
enum ConcreteDataGen {
    None,
    Blobs {
        gen: TwoBlobs,
        batch: usize,
    },
    RandomImages {
        rng: Rng64,
        numel: usize,
        batch: usize,
        classes: usize,
    },
}

impl ConcreteDataGen {
    fn new(config: &ProfileConfig) -> Self {
        if config.mode != ExecMode::Concrete {
            return ConcreteDataGen::None;
        }
        match config.arch {
            Architecture::Mlp(_) => ConcreteDataGen::Blobs {
                gen: TwoBlobs::new(config.seed),
                batch: config.batch,
            },
            _ => ConcreteDataGen::RandomImages {
                rng: Rng64::seed_from_u64(config.seed),
                numel: config.dataset.example_numel(),
                batch: config.batch,
                classes: config.dataset.classes,
            },
        }
    }

    fn next(&mut self) -> Option<BatchData> {
        match self {
            ConcreteDataGen::None => None,
            ConcreteDataGen::Blobs { gen, batch } => {
                let b = gen.next_batch(*batch);
                Some(BatchData {
                    input: b.input,
                    labels: b.labels,
                })
            }
            ConcreteDataGen::RandomImages {
                rng,
                numel,
                batch,
                classes,
            } => {
                let input: Vec<f32> = (0..*batch * *numel)
                    .map(|_| rng.gen_range_f32(-1.0, 1.0))
                    .collect();
                let labels: Vec<f32> = (0..*batch)
                    .map(|_| rng.gen_range_usize(0, *classes) as f32)
                    .collect();
                Some(BatchData { input, labels })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_case_study_produces_valid_periodic_trace() {
        let report = profile(&ProfileConfig::mlp_case_study(5)).unwrap();
        report.trace.validate().unwrap();
        assert_eq!(report.iterations, 5);
        assert!(report.duration_ns > 0);
        let iter = pinpoint_analysis::detect(&report.trace);
        assert!(iter.periodic, "{iter:?}");
    }

    #[test]
    fn concrete_mlp_learns_the_blobs() {
        let mut cfg = ProfileConfig::mlp_case_study(20);
        cfg.mode = ExecMode::Concrete;
        cfg.arch = Architecture::Mlp(pinpoint_models::MlpConfig {
            in_features: 2,
            hidden: 64, // small hidden keeps the test fast
            classes: 2,
        });
        let report = profile(&cfg).unwrap();
        assert_eq!(report.loss_history.len(), 20);
        let first = report.loss_history[0];
        let last = *report.loss_history.last().unwrap();
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn epoch_eval_creates_the_outlier_block() {
        let mut cfg = ProfileConfig::mlp_case_study(25);
        cfg.epoch_eval = Some(EpochEval {
            iters_per_epoch: 10,
            buffer_bytes: 700_000_000,
        });
        let report = profile(&cfg).unwrap();
        report.trace.validate().unwrap();
        // the buffer is touched at iters 10 and 20 → one huge ATI
        let atis = pinpoint_analysis::AtiDataset::from_trace(&report.trace);
        let big: Vec<_> = atis
            .records()
            .iter()
            .filter(|r| r.size > 600_000_000)
            .collect();
        assert!(!big.is_empty(), "outlier block has a measured ATI");
        assert!(big.iter().all(|r| r.interval_ns > 1_000_000));
    }

    #[test]
    fn sink_profile_spills_the_same_trace_to_disk() {
        let cfg = ProfileConfig::mlp_case_study(3);
        let in_mem = profile(&cfg).unwrap();
        let path = std::env::temp_dir().join(format!(
            "pinpoint-profiler-sink-{}.ptrc",
            std::process::id()
        ));
        let writer = pinpoint_store::StoreWriter::create(&path).unwrap();
        let report = profile_into_sink(&cfg, Box::new(writer)).unwrap();
        assert_eq!(report.events_recorded, in_mem.trace.len() as u64);
        assert_eq!(report.duration_ns, in_mem.duration_ns);
        assert_eq!(report.iterations, in_mem.iterations);
        let mut reader = pinpoint_store::StoreReader::open(&path).unwrap();
        let trace = reader.read_trace().unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(trace, in_mem.trace, "spilled trace == in-memory trace");
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let mut cfg = ProfileConfig::mlp_case_study(1);
        cfg.device.capacity_bytes = 1 << 20; // 1 MB device cannot train
        let err = profile(&cfg).unwrap_err();
        assert!(matches!(
            err,
            ProfileError::Device(AllocError::OutOfMemory { .. })
        ));
        assert!(err.to_string().contains("out of device memory"));
    }
}
