//! Paper-style text rendering of figure data and of [`TraceReport`] (the
//! all-passes-in-one-scan report, which lives in `pinpoint-analysis` so
//! the serve daemon can share it).

use crate::figures::{Fig2Data, Fig3Data, Fig4Data};
use pinpoint_analysis::BreakdownRow;
pub use pinpoint_analysis::TraceReport;
// the single definitions live in `pinpoint-obs` (the bottom of the
// workspace graph) so store/analysis/serve share them; re-exported here
// for the CLI and every existing `pinpoint_core::report` caller
pub use pinpoint_obs::{human_bytes, human_time};
use std::fmt::Write as _;

/// Renders Fig. 2 as a text summary: the first rectangles of the Gantt
/// chart and the periodicity verdict.
pub fn render_fig2(d: &Fig2Data, max_rects: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig 2 — Gantt of MLP training ({} iterations, {} total)",
        d.iterative.iterations,
        human_time(d.duration_ns)
    );
    let _ = writeln!(
        s,
        "  iterative pattern: {} ({} / {} steady-state iterations match, period {} cv {:.4})",
        if d.iterative.periodic { "YES" } else { "NO" },
        d.iterative.matching_iterations,
        d.iterative.iterations.saturating_sub(1),
        human_time(d.iterative.mean_period_ns as u64),
        d.iterative.period_cv
    );
    let _ = writeln!(
        s,
        "  fragmentation (worst): {:.2}% of the in-use span ({} gaps, {})",
        d.worst_fragmentation.gap_fraction() * 100.0,
        d.worst_fragmentation.gap_count,
        human_bytes(d.worst_fragmentation.gap_bytes as u64)
    );
    let _ = writeln!(
        s,
        "  {:>12} {:>12} {:>12} {:>12}  kind",
        "t0", "t1", "offset", "size"
    );
    for r in d.rects.iter().take(max_rects) {
        let _ = writeln!(
            s,
            "  {:>12} {:>12} {:>12} {:>12}  {}",
            human_time(r.t0_ns),
            human_time(r.t1_ns),
            r.offset,
            human_bytes(r.size as u64),
            r.mem_kind
        );
    }
    if d.rects.len() > max_rects {
        let _ = writeln!(s, "  ... {} more blocks", d.rects.len() - max_rects);
    }
    s
}

/// Renders Fig. 3 as the CDF summary rows plus violin statistics.
pub fn render_fig3(d: &Fig3Data) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fig 3 — ATI distribution over {} behaviors", d.count);
    let _ = writeln!(
        s,
        "  ATIs <= 25us: {:.1}%   p90 = {}",
        d.fraction_at_or_below_25us * 100.0,
        human_time(d.p90_ns)
    );
    let _ = writeln!(s, "  CDF (value, cumulative):");
    for (v, p) in d.cdf.summary_rows(10) {
        let _ = writeln!(s, "    {:>12}  {:>5.2}", human_time(v), p);
    }
    let _ = writeln!(
        s,
        "  violin: min {} q1 {} median {} q3 {} max {}",
        human_time(d.violin.min as u64),
        human_time(d.violin.q1 as u64),
        human_time(d.violin.median as u64),
        human_time(d.violin.q3 as u64),
        human_time(d.violin.max as u64)
    );
    for (label, v) in [("reads", &d.violin_reads), ("writes", &d.violin_writes)] {
        if let Some(v) = v {
            let _ = writeln!(
                s,
                "  violin[{label}]: n {} median {} IQR [{}, {}]",
                v.count,
                human_time(v.median as u64),
                human_time(v.q1 as u64),
                human_time(v.q3 as u64)
            );
        }
    }
    s
}

/// Renders Fig. 4: behavior counts, the outliers, and the red point's
/// Equation-1 verdict.
pub fn render_fig4(d: &Fig4Data) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig 4 — {} behaviors, {} outliers (ATI > {}, size > {}), {} Eq1-swappable",
        d.points.len(),
        d.outliers.outliers.len(),
        human_time(d.outliers.criteria.min_ati_ns),
        human_bytes(d.outliers.criteria.min_size_bytes as u64),
        d.swappable_count
    );
    for o in d.outliers.outliers.iter().take(8) {
        let _ = writeln!(
            s,
            "  outlier: {} ATI {} size {}",
            o.block,
            human_time(o.interval_ns),
            human_bytes(o.size as u64)
        );
    }
    if let Some((red, bound)) = &d.red_point {
        let _ = writeln!(
            s,
            "  red point: ATI {} size {} — Eq1 bound {} → {}",
            human_time(red.interval_ns),
            human_bytes(red.size as u64),
            human_bytes(*bound as u64),
            if (red.size as f64) <= *bound {
                "swappable without slowdown"
            } else {
                "NOT swappable"
            }
        );
    }
    s
}

/// Renders a breakdown table (Figs. 5–7) as percentage rows.
pub fn render_breakdown(title: &str, rows: &[BreakdownRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "  {:<28} {:>10} {:>8} {:>8} {:>8}",
        "workload", "peak", "input%", "param%", "inter%"
    );
    for r in rows {
        let (i, p, m) = r.fractions();
        let _ = writeln!(
            s,
            "  {:<28} {:>10} {:>7.1}% {:>7.1}% {:>7.1}%",
            r.label,
            human_bytes(r.peak_bytes),
            i * 100.0,
            p * 100.0,
            m * 100.0
        );
    }
    s
}

/// Renders a [`TraceReport`] as the trace-tool's `report` output,
/// leading with the one-pass scan accounting.
pub fn render_trace_report(d: &TraceReport, max_rects: usize) -> String {
    let mut s = String::new();
    // the op-label clause appears only when the v3 zone maps actually
    // pruned something, so pre-v3 stores and the JSON path render the
    // exact same accounting line as before
    let by_label = if d.stats.chunks_pruned_by_label > 0 {
        format!(", {} by op-label", d.stats.chunks_pruned_by_label)
    } else {
        String::new()
    };
    let _ = writeln!(
        s,
        "decoded {} chunks in 1 pass ({} pruned of {}{}; {} events)",
        d.stats.chunks_decoded,
        d.stats.chunks_pruned,
        d.stats.chunks_total,
        by_label,
        d.stats.events_scanned
    );
    if d.stats.chunks_skipped > 0 {
        let _ = writeln!(
            s,
            "salvage: skipped {} corrupt chunk(s), {} event(s) lost ({})",
            d.stats.chunks_skipped,
            d.stats.events_lost,
            d.stats.first_error.as_deref().unwrap_or("no detail")
        );
    }
    let _ = writeln!(
        s,
        "peak footprint: {}",
        human_bytes(d.peak.peak_total_bytes)
    );
    let (i, p, m) = d.breakdown.fractions();
    let _ = writeln!(
        s,
        "breakdown: input {:.1}%  parameters {:.1}%  intermediates {:.1}%",
        i * 100.0,
        p * 100.0,
        m * 100.0
    );
    if d.ati.is_empty() {
        let _ = writeln!(s, "no access intervals");
    } else {
        let cdf = d.ati.cdf();
        let _ = writeln!(
            s,
            "{} access intervals; median {} p90 {}",
            d.ati.len(),
            human_time(cdf.percentile(0.5)),
            human_time(cdf.percentile(0.9))
        );
    }
    let _ = writeln!(
        s,
        "outliers: {} of {} behaviors (ATI > {}, size > {})",
        d.outliers.outliers.len(),
        d.outliers.total_behaviors,
        human_time(d.outliers.criteria.min_ati_ns),
        human_bytes(d.outliers.criteria.min_size_bytes as u64)
    );
    let _ = writeln!(s, "{} block lifetimes:", d.gantt.len());
    for r in d.gantt.iter().take(max_rects) {
        let _ = writeln!(
            s,
            "  {:>12} {:>12} {:>12} {:>12}  {}",
            human_time(r.t0_ns),
            human_time(r.t1_ns),
            r.offset,
            human_bytes(r.size as u64),
            r.mem_kind
        );
    }
    if d.gantt.len() > max_rects {
        let _ = writeln!(s, "  ... {} more blocks", d.gantt.len() - max_rects);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(79_370), "79.37 KB");
        assert_eq!(human_bytes(1_200_000_000), "1.20 GB");
        assert_eq!(human_time(500), "500 ns");
        assert_eq!(human_time(25_000), "25.00 us");
        assert_eq!(human_time(840_211_000), "840.21 ms");
        assert_eq!(human_time(2_500_000_000), "2.500 s");
    }

    #[test]
    fn breakdown_table_renders_percentages() {
        let rows = vec![BreakdownRow {
            label: "alexnet/cifar100/bs128".to_string(),
            peak_bytes: 1000,
            input_bytes: 100,
            parameter_bytes: 200,
            intermediate_bytes: 700,
        }];
        let out = render_breakdown("Fig 5", &rows);
        assert!(out.contains("alexnet/cifar100/bs128"));
        assert!(out.contains("70.0%"));
        assert!(out.contains("10.0%"));
    }
}
