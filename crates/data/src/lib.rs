//! # pinpoint-data
//!
//! Synthetic dataset substitutes for the `pinpoint` reproduction of
//! *"Pinpointing the Memory Behaviors of DNN Training"* (ISPASS 2021).
//!
//! The paper trains on CIFAR-100 and ImageNet. Memory behavior depends only
//! on tensor *geometry* (shape, batch size), not on pixel values, so this
//! crate provides:
//!
//! * [`DatasetSpec`] — named geometry presets matching the paper's datasets
//!   ([`DatasetSpec::cifar100`], [`DatasetSpec::imagenet`], ...);
//! * [`TwoBlobs`] — a concrete, separable 2-feature classification task for
//!   the MLP case study, so the concrete executor can demonstrably *learn*
//!   while being traced.
//!
//! # Examples
//!
//! ```
//! use pinpoint_data::{DatasetSpec, TwoBlobs};
//!
//! let cifar = DatasetSpec::cifar100();
//! assert_eq!(cifar.example_numel(), 3 * 32 * 32);
//!
//! let mut blobs = TwoBlobs::new(42);
//! let batch = blobs.next_batch(128);
//! assert_eq!(batch.input.len(), 256);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod spec;
mod two_blobs;

pub use spec::DatasetSpec;
pub use two_blobs::{BlobBatch, TwoBlobs};
