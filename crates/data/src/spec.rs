//! Dataset geometry presets.

/// Geometry of a labeled image dataset (the only properties that influence
/// device memory behavior).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DatasetSpec {
    /// Dataset name for reports.
    pub name: String,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes.
    pub classes: usize,
    /// Number of training examples (drives epoch length and the size of
    /// full-dataset staging/evaluation buffers).
    pub train_examples: usize,
}

impl DatasetSpec {
    /// CIFAR-100-like: 3×32×32, 100 classes, 50 000 training images.
    pub fn cifar100() -> Self {
        DatasetSpec {
            name: "cifar100".to_string(),
            channels: 3,
            height: 32,
            width: 32,
            classes: 100,
            train_examples: 50_000,
        }
    }

    /// ImageNet-like: 3×224×224, 1000 classes, 1.28 M training images.
    pub fn imagenet() -> Self {
        DatasetSpec {
            name: "imagenet".to_string(),
            channels: 3,
            height: 224,
            width: 224,
            classes: 1000,
            train_examples: 1_281_167,
        }
    }

    /// MNIST-like: 1×28×28, 10 classes, 60 000 training images.
    pub fn mnist() -> Self {
        DatasetSpec {
            name: "mnist".to_string(),
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
            train_examples: 60_000,
        }
    }

    /// The paper MLP's 2-feature synthetic task: 2 features, 2 classes.
    /// Sized so the full dataset occupies ~1.2 GB on device, matching the
    /// Fig. 4 outlier block.
    pub fn two_blobs() -> Self {
        DatasetSpec {
            name: "two_blobs".to_string(),
            channels: 1,
            height: 1,
            width: 2,
            classes: 2,
            train_examples: 150_000_000,
        }
    }

    /// Values per example (channels × height × width).
    pub fn example_numel(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Bytes per example at `f32`.
    pub fn example_bytes(&self) -> usize {
        self.example_numel() * 4
    }

    /// Bytes of the full training set at `f32` (inputs only).
    pub fn train_set_bytes(&self) -> usize {
        self.example_bytes() * self.train_examples
    }

    /// Iterations per epoch at the given batch size (floor; drop-last).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn iters_per_epoch(&self, batch: usize) -> usize {
        assert!(batch > 0, "batch size must be positive");
        self.train_examples / batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_geometries() {
        let c = DatasetSpec::cifar100();
        assert_eq!((c.channels, c.height, c.width, c.classes), (3, 32, 32, 100));
        let i = DatasetSpec::imagenet();
        assert_eq!(i.example_bytes(), 3 * 224 * 224 * 4);
        let m = DatasetSpec::mnist();
        assert_eq!(m.example_numel(), 784);
    }

    #[test]
    fn two_blobs_matches_fig4_outlier_scale() {
        let t = DatasetSpec::two_blobs();
        // the paper's red-marked outlier block is 1200 MB
        let gb = t.train_set_bytes() as f64 / 1e9;
        assert!((1.1..1.3).contains(&gb), "dataset is {gb} GB");
    }

    #[test]
    fn iters_per_epoch_floors() {
        let c = DatasetSpec::cifar100();
        assert_eq!(c.iters_per_epoch(128), 390);
        assert_eq!(c.iters_per_epoch(50_000), 1);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        DatasetSpec::cifar100().iters_per_epoch(0);
    }
}
