//! A concrete 2-feature, 2-class task for the MLP case study.

use pinpoint_tensor::rng::Rng64;

/// Generates separable Gaussian blobs: class 0 centered at `(-1, -1)`,
/// class 1 at `(+1, +1)`, both with σ = 0.4. Deterministic per seed.
///
/// This is the concrete stand-in for the unnamed 2-feature task behind the
/// paper's Fig. 1 MLP (`W0: 2×12288` implies 2 input features, 2 classes).
///
/// # Examples
///
/// ```
/// use pinpoint_data::TwoBlobs;
///
/// let mut gen = TwoBlobs::new(7);
/// let batch = gen.next_batch(64);
/// assert_eq!(batch.input.len(), 128);
/// assert!(batch.labels.iter().all(|&l| l == 0.0 || l == 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct TwoBlobs {
    rng: Rng64,
}

/// One generated mini-batch: flattened `[batch, 2]` inputs plus labels.
#[derive(Debug, Clone, PartialEq)]
pub struct BlobBatch {
    /// Row-major `[batch, 2]` feature values.
    pub input: Vec<f32>,
    /// One class label (0.0 or 1.0) per example.
    pub labels: Vec<f32>,
}

impl TwoBlobs {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        TwoBlobs {
            rng: Rng64::seed_from_u64(seed),
        }
    }

    /// Draws the next mini-batch of `batch` examples, classes alternating.
    pub fn next_batch(&mut self, batch: usize) -> BlobBatch {
        let mut input = Vec::with_capacity(batch * 2);
        let mut labels = Vec::with_capacity(batch);
        for i in 0..batch {
            let class = (i % 2) as f32;
            let center = if class == 0.0 { -1.0f32 } else { 1.0 };
            // Box–Muller gaussian noise
            let u1: f64 = self.rng.gen_f64().max(f64::EPSILON);
            let u2: f64 = self.rng.gen_f64();
            let r = (-2.0 * u1.ln()).sqrt();
            let (n1, n2) = (
                r * (2.0 * std::f64::consts::PI * u2).cos(),
                r * (2.0 * std::f64::consts::PI * u2).sin(),
            );
            input.push(center + 0.4 * n1 as f32);
            input.push(center + 0.4 * n2 as f32);
            labels.push(class);
        }
        BlobBatch { input, labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = TwoBlobs::new(1).next_batch(32);
        let b = TwoBlobs::new(1).next_batch(32);
        let c = TwoBlobs::new(2).next_batch(32);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn classes_are_balanced_and_separated() {
        let batch = TwoBlobs::new(3).next_batch(1000);
        let zeros = batch.labels.iter().filter(|&&l| l == 0.0).count();
        assert_eq!(zeros, 500);
        // class means should be near their centers
        let mut sum0 = 0.0f32;
        let mut sum1 = 0.0f32;
        for i in 0..1000 {
            let x = batch.input[2 * i];
            if batch.labels[i] == 0.0 {
                sum0 += x;
            } else {
                sum1 += x;
            }
        }
        assert!((sum0 / 500.0 + 1.0).abs() < 0.1);
        assert!((sum1 / 500.0 - 1.0).abs() < 0.1);
    }

    #[test]
    fn successive_batches_differ() {
        let mut gen = TwoBlobs::new(9);
        let a = gen.next_batch(16);
        let b = gen.next_batch(16);
        assert_ne!(a.input, b.input);
    }
}
