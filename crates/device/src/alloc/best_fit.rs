//! A classic best-fit arena allocator (baseline, no caching pools).

use super::{round_up, AllocError, AllocStats, Block, DeviceAllocator, MIN_BLOCK_BYTES};
use pinpoint_trace::BlockId;
use std::collections::{BTreeMap, BTreeSet, HashMap};

#[derive(Debug, Clone, Copy)]
struct Chunk {
    size: usize,
    free: bool,
}

/// Best-fit allocation over one arena covering the whole device, with
/// immediate coalescing. Unlike [`super::CachingAllocator`] there are no
/// size-class pools, so small and large blocks interleave — the ablation
/// benches use this to show how pooling affects the paper's Gantt chart.
///
/// # Examples
///
/// ```
/// use pinpoint_device::alloc::{BestFitAllocator, DeviceAllocator};
///
/// let mut a = BestFitAllocator::new(1 << 20);
/// let b = a.malloc(4096)?;
/// assert_eq!(b.offset, 0);
/// a.free(b.id)?;
/// # Ok::<(), pinpoint_device::alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct BestFitAllocator {
    capacity: usize,
    next_id: u64,
    chunks: BTreeMap<usize, Chunk>,
    free_set: BTreeSet<(usize, usize)>,
    live: HashMap<BlockId, usize>,
    requested: HashMap<BlockId, usize>,
    stats: AllocStats,
}

impl BestFitAllocator {
    /// Creates an allocator whose arena spans `capacity` bytes. The whole
    /// arena counts as reserved immediately (there is no growth step).
    pub fn new(capacity: usize) -> Self {
        let mut chunks = BTreeMap::new();
        let mut free_set = BTreeSet::new();
        if capacity > 0 {
            chunks.insert(
                0,
                Chunk {
                    size: capacity,
                    free: true,
                },
            );
            free_set.insert((capacity, 0));
        }
        let mut stats = AllocStats::default();
        stats.on_reserve(capacity);
        BestFitAllocator {
            capacity,
            next_id: 0,
            chunks,
            free_set,
            live: HashMap::new(),
            requested: HashMap::new(),
            stats,
        }
    }
}

impl DeviceAllocator for BestFitAllocator {
    fn name(&self) -> &'static str {
        "best_fit"
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn malloc(&mut self, size: usize) -> Result<Block, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let rounded = round_up(size);
        let Some(&(chunk_size, offset)) = self.free_set.range((rounded, 0)..).next() else {
            return Err(AllocError::OutOfMemory {
                requested: rounded,
                capacity: self.capacity,
                reserved: self.stats.reserved_bytes,
            });
        };
        self.free_set.remove(&(chunk_size, offset));
        let chunk = self.chunks.get_mut(&offset).expect("chunk exists");
        chunk.free = false;
        let alloc_size = if chunk_size - rounded >= MIN_BLOCK_BYTES {
            chunk.size = rounded;
            let rem_off = offset + rounded;
            let rem_size = chunk_size - rounded;
            self.chunks.insert(
                rem_off,
                Chunk {
                    size: rem_size,
                    free: true,
                },
            );
            self.free_set.insert((rem_size, rem_off));
            rounded
        } else {
            chunk_size
        };
        let id = BlockId(self.next_id);
        self.next_id += 1;
        self.live.insert(id, offset);
        self.requested.insert(id, size);
        self.stats.on_malloc(alloc_size, true);
        Ok(Block {
            id,
            offset,
            size: alloc_size,
            requested: size,
        })
    }

    fn free(&mut self, id: BlockId) -> Result<Block, AllocError> {
        let offset = self.live.remove(&id).ok_or(AllocError::UnknownBlock(id))?;
        let requested = self.requested.remove(&id).unwrap_or(0);
        let chunk = *self.chunks.get(&offset).expect("live chunk exists");
        self.stats.on_free(chunk.size);
        let mut new_off = offset;
        let mut new_size = chunk.size;
        if let Some((&prev_off, &prev)) = self.chunks.range(..offset).next_back() {
            if prev.free && prev_off + prev.size == offset {
                self.free_set.remove(&(prev.size, prev_off));
                self.chunks.remove(&offset);
                new_off = prev_off;
                new_size += prev.size;
            }
        }
        let next_entry = self
            .chunks
            .range(new_off + 1..)
            .next()
            .map(|(o, c)| (*o, *c));
        if let Some((next_off, next)) = next_entry {
            if next.free && new_off + new_size == next_off {
                self.free_set.remove(&(next.size, next_off));
                self.chunks.remove(&next_off);
                new_size += next.size;
            }
        }
        let merged = self.chunks.get_mut(&new_off).expect("merged chunk exists");
        merged.free = true;
        merged.size = new_size;
        self.free_set.insert((new_size, new_off));
        Ok(Block {
            id,
            offset,
            size: chunk.size,
            requested,
        })
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }

    fn live_blocks(&self) -> Vec<Block> {
        let mut out: Vec<Block> = self
            .live
            .iter()
            .map(|(&id, &offset)| Block {
                id,
                offset,
                size: self.chunks[&offset].size,
                requested: self.requested.get(&id).copied().unwrap_or(0),
            })
            .collect();
        out.sort_by_key(|b| b.offset);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_from_offset_zero() {
        let mut a = BestFitAllocator::new(1 << 20);
        let b = a.malloc(100).unwrap();
        assert_eq!(b.offset, 0);
        assert_eq!(b.size, 512);
    }

    #[test]
    fn best_fit_prefers_tightest_hole() {
        let mut a = BestFitAllocator::new(1 << 20);
        let b1 = a.malloc(512).unwrap(); // hole A candidate
        let b2 = a.malloc(4096).unwrap();
        let b3 = a.malloc(2048).unwrap(); // hole B candidate
        let _b4 = a.malloc(512).unwrap(); // guard against tail merge
        a.free(b1.id).unwrap(); // 512 B hole at 0
        a.free(b3.id).unwrap(); // 2 KB hole
        let _ = b2;
        // a 512-byte request should land in the 512 B hole, not the 2 KB one
        let b5 = a.malloc(512).unwrap();
        assert_eq!(b5.offset, 0);
    }

    #[test]
    fn full_free_restores_one_arena_chunk() {
        let mut a = BestFitAllocator::new(1 << 20);
        let ids: Vec<_> = (0..10).map(|_| a.malloc(1000).unwrap().id).collect();
        for id in ids {
            a.free(id).unwrap();
        }
        assert_eq!(a.free_set.len(), 1);
        assert_eq!(a.free_set.iter().next().unwrap().0, 1 << 20);
        assert_eq!(a.stats().allocated_bytes, 0);
    }

    #[test]
    fn external_fragmentation_causes_oom() {
        // arena 4 KB: allocate 4 × 1 KB, free alternating, then a 2 KB
        // request fails even though 2 KB total is free.
        let mut a = BestFitAllocator::new(4096);
        let b: Vec<_> = (0..4).map(|_| a.malloc(1024).unwrap()).collect();
        a.free(b[0].id).unwrap();
        a.free(b[2].id).unwrap();
        let err = a.malloc(2048).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
    }

    #[test]
    fn whole_arena_is_reserved_up_front() {
        let a = BestFitAllocator::new(123 << 10);
        assert_eq!(a.stats().reserved_bytes, 123 << 10);
        assert_eq!(a.stats().peak_reserved_bytes, 123 << 10);
    }
}
