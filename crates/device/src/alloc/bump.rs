//! A bump-pointer allocator (baseline: no in-flight reuse).

use super::{round_up, AllocError, AllocStats, Block, DeviceAllocator};
use pinpoint_trace::BlockId;
use std::collections::HashMap;

/// Bump allocation: every `malloc` advances a pointer; `free` releases no
/// memory until *all* live blocks are gone, at which point the pointer
/// resets to zero (an arena generation).
///
/// This is the "no reuse within an iteration" baseline: it wastes the most
/// device memory but produces zero external fragmentation inside a
/// generation, bounding the other allocators' behavior from both sides in
/// the ablation benches.
///
/// # Examples
///
/// ```
/// use pinpoint_device::alloc::{BumpAllocator, DeviceAllocator};
///
/// let mut a = BumpAllocator::new(1 << 20);
/// let b1 = a.malloc(512)?;
/// let b2 = a.malloc(512)?;
/// assert_eq!(b2.offset, b1.offset + 512); // strictly increasing
/// # Ok::<(), pinpoint_device::alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct BumpAllocator {
    capacity: usize,
    next_offset: usize,
    next_id: u64,
    live: HashMap<BlockId, Block>,
    stats: AllocStats,
}

impl BumpAllocator {
    /// Creates a bump allocator over `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        BumpAllocator {
            capacity,
            next_offset: 0,
            next_id: 0,
            live: HashMap::new(),
            stats: AllocStats::default(),
        }
    }
}

impl DeviceAllocator for BumpAllocator {
    fn name(&self) -> &'static str {
        "bump"
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn malloc(&mut self, size: usize) -> Result<Block, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let rounded = round_up(size);
        if self.next_offset + rounded > self.capacity {
            return Err(AllocError::OutOfMemory {
                requested: rounded,
                capacity: self.capacity,
                reserved: self.stats.reserved_bytes,
            });
        }
        let offset = self.next_offset;
        self.next_offset += rounded;
        if self.next_offset > self.stats.reserved_bytes {
            let grow = self.next_offset - self.stats.reserved_bytes;
            self.stats.on_reserve(grow);
        }
        let id = BlockId(self.next_id);
        self.next_id += 1;
        let block = Block {
            id,
            offset,
            size: rounded,
            requested: size,
        };
        self.live.insert(id, block);
        self.stats.on_malloc(rounded, false);
        Ok(block)
    }

    fn free(&mut self, id: BlockId) -> Result<Block, AllocError> {
        let block = self.live.remove(&id).ok_or(AllocError::UnknownBlock(id))?;
        self.stats.on_free(block.size);
        if self.live.is_empty() {
            // new arena generation: the pointer rewinds, so iterative
            // workloads land at the same offsets each iteration
            self.next_offset = 0;
        }
        Ok(block)
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }

    fn live_blocks(&self) -> Vec<Block> {
        let mut out: Vec<Block> = self.live.values().copied().collect();
        out.sort_by_key(|b| b.offset);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_strictly_increase_within_generation() {
        let mut a = BumpAllocator::new(1 << 20);
        let b1 = a.malloc(100).unwrap();
        let b2 = a.malloc(100).unwrap();
        let b3 = a.malloc(100).unwrap();
        assert!(b1.offset < b2.offset && b2.offset < b3.offset);
    }

    #[test]
    fn free_does_not_reclaim_until_empty() {
        let mut a = BumpAllocator::new(4096);
        let b1 = a.malloc(1024).unwrap();
        let b2 = a.malloc(1024).unwrap();
        a.free(b1.id).unwrap();
        // pointer did not rewind: next malloc goes after b2
        let b3 = a.malloc(1024).unwrap();
        assert_eq!(b3.offset, b2.offset + b2.size);
        a.free(b2.id).unwrap();
        a.free(b3.id).unwrap();
        // all free → generation reset
        let b4 = a.malloc(1024).unwrap();
        assert_eq!(b4.offset, 0);
    }

    #[test]
    fn oom_at_capacity() {
        let mut a = BumpAllocator::new(1024);
        let _b = a.malloc(1024).unwrap();
        assert!(matches!(
            a.malloc(1).unwrap_err(),
            AllocError::OutOfMemory { .. }
        ));
    }

    #[test]
    fn reserved_is_high_water_mark() {
        let mut a = BumpAllocator::new(1 << 20);
        let b1 = a.malloc(2048).unwrap();
        a.free(b1.id).unwrap();
        let _b2 = a.malloc(512).unwrap();
        assert_eq!(a.stats().reserved_bytes, 2048);
        assert_eq!(a.stats().peak_allocated_bytes, 2048);
    }
}
