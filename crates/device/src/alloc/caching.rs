//! A PyTorch-style caching device allocator.
//!
//! This is a faithful-in-spirit model of the c10 CUDA caching allocator the
//! paper instrumented:
//!
//! * requests round up to 512 B ([`super::MIN_BLOCK_BYTES`]);
//! * requests ≤ 1 MB are served from a *small pool* carved out of 2 MB
//!   segments; larger requests from a *large pool* of ≥ 20 MB segments;
//! * freed chunks are cached in per-pool free lists (never returned to the
//!   device) and reused best-fit, splitting when the remainder is useful;
//! * adjacent free chunks within a segment coalesce.
//!
//! The cache is what produces the paper's hallmark observation: after the
//! first iteration warms the cache, every later iteration's mallocs are
//! cache hits at the *same offsets*, yielding the periodic Gantt chart of
//! Fig. 2 and the low fragmentation the paper notes.

use super::{round_up, AllocError, AllocStats, Block, DeviceAllocator, MIN_BLOCK_BYTES};
use pinpoint_trace::BlockId;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Requests at or below this size go to the small pool (PyTorch `kSmallSize`).
const SMALL_REQUEST_LIMIT: usize = 1 << 20;
/// Segment size for the small pool (PyTorch `kSmallBuffer`).
const SMALL_SEGMENT_BYTES: usize = 2 << 20;
/// Minimum segment size for the large pool (PyTorch `kLargeBuffer`).
const LARGE_SEGMENT_MIN_BYTES: usize = 20 << 20;
/// Large-pool chunks only split when the remainder is at least this big.
const LARGE_SPLIT_REMAINDER: usize = 1 << 20;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pool {
    Small,
    Large,
}

#[derive(Debug, Clone, Copy)]
struct Chunk {
    size: usize,
    segment: u32,
    pool: Pool,
    free: bool,
}

/// Cache statistics of one size-class pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Bytes of segments assigned to the pool.
    pub reserved_bytes: usize,
    /// Bytes sitting free in the pool's cache.
    pub cached_free_bytes: usize,
    /// Number of free chunks.
    pub free_chunks: usize,
    /// Largest single free chunk.
    pub largest_free_bytes: usize,
}

/// The caching allocator. See the [module docs](self) for the policy.
///
/// # Examples
///
/// ```
/// use pinpoint_device::alloc::{CachingAllocator, DeviceAllocator};
///
/// let mut a = CachingAllocator::new(1 << 30);
/// let b1 = a.malloc(300_000)?;
/// a.free(b1.id)?;
/// let b2 = a.malloc(300_000)?;
/// // the cache serves the same region again
/// assert_eq!(b1.offset, b2.offset);
/// # Ok::<(), pinpoint_device::alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct CachingAllocator {
    capacity: usize,
    next_offset: usize,
    next_id: u64,
    next_segment: u32,
    /// Every chunk (free or allocated), keyed by offset. Chunks partition
    /// the reserved segments exactly.
    chunks: BTreeMap<usize, Chunk>,
    free_small: BTreeSet<(usize, usize)>,
    free_large: BTreeSet<(usize, usize)>,
    live: HashMap<BlockId, usize>,
    requested: HashMap<BlockId, usize>,
    /// Segment extents: id → (offset, size); needed by `empty_cache` to
    /// recognize whole-segment free chunks.
    segments: HashMap<u32, (usize, usize)>,
    /// Address ranges of released segments (offset → size), coalesced and
    /// reusable by later reservations; ranges touching the bump pointer
    /// rewind it instead.
    free_va: BTreeMap<usize, usize>,
    stats: AllocStats,
}

impl CachingAllocator {
    /// Creates an allocator managing `capacity` bytes of device memory.
    pub fn new(capacity: usize) -> Self {
        CachingAllocator {
            capacity,
            next_offset: 0,
            next_id: 0,
            next_segment: 0,
            chunks: BTreeMap::new(),
            free_small: BTreeSet::new(),
            free_large: BTreeSet::new(),
            live: HashMap::new(),
            requested: HashMap::new(),
            segments: HashMap::new(),
            free_va: BTreeMap::new(),
            stats: AllocStats::default(),
        }
    }

    fn free_set(&mut self, pool: Pool) -> &mut BTreeSet<(usize, usize)> {
        match pool {
            Pool::Small => &mut self.free_small,
            Pool::Large => &mut self.free_large,
        }
    }

    /// Best-fit lookup: smallest free chunk of the pool with size ≥ rounded.
    fn find_free(&self, pool: Pool, rounded: usize) -> Option<(usize, usize)> {
        let set = match pool {
            Pool::Small => &self.free_small,
            Pool::Large => &self.free_large,
        };
        set.range((rounded, 0)..).next().copied()
    }

    /// Reserves a fresh segment from the device for `pool`, inserting it as
    /// one big free chunk.
    fn reserve_segment(&mut self, pool: Pool, rounded: usize) -> Result<(), AllocError> {
        let preferred = match pool {
            Pool::Small => SMALL_SEGMENT_BYTES,
            Pool::Large => LARGE_SEGMENT_MIN_BYTES.max(rounded),
        };
        // physical budget = capacity minus what is currently reserved
        let physical_remaining = self.capacity - self.stats.reserved_bytes.min(self.capacity);
        let fits = |seg: usize, this: &Self| {
            seg <= physical_remaining
                && (this.next_offset + seg <= this.capacity
                    || this.free_va.values().any(|&sz| sz >= seg))
        };
        let seg_size = if fits(preferred, self) {
            preferred
        } else if pool == Pool::Large && fits(rounded, self) {
            // fall back to an exactly-sized segment, as PyTorch does under
            // memory pressure
            rounded
        } else {
            return Err(AllocError::OutOfMemory {
                requested: rounded,
                capacity: self.capacity,
                reserved: self.stats.reserved_bytes,
            });
        };
        // prefer reusing a released address range over growing the space
        let reuse = self
            .free_va
            .iter()
            .filter(|&(_, &sz)| sz >= seg_size)
            .min_by_key(|&(_, &sz)| sz)
            .map(|(&off, &sz)| (off, sz));
        let offset = if let Some((va_off, va_size)) = reuse {
            self.free_va.remove(&va_off);
            if va_size > seg_size {
                self.free_va.insert(va_off + seg_size, va_size - seg_size);
            }
            va_off
        } else {
            let off = self.next_offset;
            self.next_offset += seg_size;
            off
        };
        let segment = self.next_segment;
        self.next_segment += 1;
        self.segments.insert(segment, (offset, seg_size));
        self.chunks.insert(
            offset,
            Chunk {
                size: seg_size,
                segment,
                pool,
                free: true,
            },
        );
        self.free_set(pool).insert((seg_size, offset));
        self.stats.on_reserve(seg_size);
        Ok(())
    }

    /// Releases every cached (fully free) segment back to the device,
    /// returning the bytes released — the analogue of
    /// `torch.cuda.empty_cache()`. Also invoked automatically when a
    /// reservation fails, before reporting OOM (PyTorch's retry).
    pub fn empty_cache(&mut self) -> usize {
        let whole_segments: Vec<(usize, Chunk)> = self
            .chunks
            .iter()
            .filter(|(&off, c)| c.free && self.segments.get(&c.segment) == Some(&(off, c.size)))
            .map(|(&off, c)| (off, *c))
            .collect();
        let mut released = 0usize;
        for (off, c) in whole_segments {
            self.chunks.remove(&off);
            self.free_set(c.pool).remove(&(c.size, off));
            self.segments.remove(&c.segment);
            self.release_va(off, c.size);
            self.stats.reserved_bytes -= c.size;
            released += c.size;
        }
        released
    }

    /// Returns an address range to the free-VA map, coalescing with
    /// neighbors and rewinding the bump pointer for tail ranges.
    fn release_va(&mut self, mut offset: usize, mut size: usize) {
        // merge with the previous free range
        if let Some((&prev_off, &prev_size)) = self.free_va.range(..offset).next_back() {
            if prev_off + prev_size == offset {
                self.free_va.remove(&prev_off);
                offset = prev_off;
                size += prev_size;
            }
        }
        // merge with the next free range
        if let Some(&next_size) = self.free_va.get(&(offset + size)) {
            self.free_va.remove(&(offset + size));
            size += next_size;
        }
        if offset + size == self.next_offset {
            // tail range: rewind the bump pointer instead of banking it
            self.next_offset = offset;
        } else {
            self.free_va.insert(offset, size);
        }
    }

    /// Per-pool cache statistics: `(reserved, cached_free, largest_free)`
    /// bytes for the small and large pools respectively.
    pub fn pool_stats(&self) -> (PoolStats, PoolStats) {
        let mut small = PoolStats::default();
        let mut large = PoolStats::default();
        for c in self.chunks.values() {
            let s = match c.pool {
                Pool::Small => &mut small,
                Pool::Large => &mut large,
            };
            s.reserved_bytes += c.size;
            if c.free {
                s.cached_free_bytes += c.size;
                s.free_chunks += 1;
                s.largest_free_bytes = s.largest_free_bytes.max(c.size);
            }
        }
        (small, large)
    }

    fn split_threshold(pool: Pool) -> usize {
        match pool {
            Pool::Small => MIN_BLOCK_BYTES,
            Pool::Large => LARGE_SPLIT_REMAINDER,
        }
    }

    /// Verifies internal invariants; used by property tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    #[doc(hidden)]
    pub fn debug_check_invariants(&self) -> Result<(), String> {
        // chunks partition [segment starts, reserved) with no overlap
        let mut covered = 0usize;
        let mut prev_end: Option<usize> = None;
        for (&off, c) in &self.chunks {
            if let Some(end) = prev_end {
                if off < end {
                    return Err(format!("chunk at {off} overlaps previous ending at {end}"));
                }
            }
            prev_end = Some(off + c.size);
            covered += c.size;
        }
        if covered != self.stats.reserved_bytes {
            return Err(format!(
                "chunks cover {covered} B but reserved is {} B",
                self.stats.reserved_bytes
            ));
        }
        let seg_total: usize = self.segments.values().map(|&(_, s)| s).sum();
        if seg_total != self.stats.reserved_bytes {
            return Err(format!(
                "segment map covers {seg_total} B but reserved is {} B",
                self.stats.reserved_bytes
            ));
        }
        // free sets mirror free chunks exactly
        let mut free_count = 0usize;
        for (&off, c) in &self.chunks {
            let set = match c.pool {
                Pool::Small => &self.free_small,
                Pool::Large => &self.free_large,
            };
            if c.free {
                free_count += 1;
                if !set.contains(&(c.size, off)) {
                    return Err(format!("free chunk at {off} missing from free set"));
                }
            } else if set.contains(&(c.size, off)) {
                return Err(format!("allocated chunk at {off} present in free set"));
            }
        }
        if free_count != self.free_small.len() + self.free_large.len() {
            return Err("free sets hold stale entries".to_string());
        }
        // no two adjacent free chunks in the same segment (coalescing holds)
        let entries: Vec<(usize, Chunk)> = self.chunks.iter().map(|(o, c)| (*o, *c)).collect();
        for w in entries.windows(2) {
            let (ao, a) = w[0];
            let (bo, b) = w[1];
            if a.free && b.free && a.segment == b.segment && ao + a.size == bo {
                return Err(format!("uncoalesced free chunks at {ao} and {bo}"));
            }
        }
        // live blocks point at allocated chunks
        for (id, &off) in &self.live {
            match self.chunks.get(&off) {
                Some(c) if !c.free => {}
                _ => {
                    return Err(format!(
                        "live block {id} points at non-allocated chunk {off}"
                    ))
                }
            }
        }
        Ok(())
    }
}

impl DeviceAllocator for CachingAllocator {
    fn name(&self) -> &'static str {
        "caching"
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn malloc(&mut self, size: usize) -> Result<Block, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let rounded = round_up(size);
        let pool = if rounded <= SMALL_REQUEST_LIMIT {
            Pool::Small
        } else {
            Pool::Large
        };
        let mut cache_hit = true;
        if self.find_free(pool, rounded).is_none() {
            if let Err(e) = self.reserve_segment(pool, rounded) {
                // PyTorch's OOM path: release all cached segments and retry
                if self.empty_cache() == 0 {
                    return Err(e);
                }
                self.reserve_segment(pool, rounded)?;
            }
            cache_hit = false;
        }
        let (chunk_size, offset) = self
            .find_free(pool, rounded)
            .expect("a free chunk must exist after reservation");
        self.free_set(pool).remove(&(chunk_size, offset));
        let chunk = self.chunks.get_mut(&offset).expect("chunk exists");
        chunk.free = false;
        let segment = chunk.segment;
        let alloc_size = if chunk_size - rounded >= Self::split_threshold(pool) {
            chunk.size = rounded;
            let rem_off = offset + rounded;
            let rem_size = chunk_size - rounded;
            self.chunks.insert(
                rem_off,
                Chunk {
                    size: rem_size,
                    segment,
                    pool,
                    free: true,
                },
            );
            self.free_set(pool).insert((rem_size, rem_off));
            rounded
        } else {
            chunk_size
        };
        let id = BlockId(self.next_id);
        self.next_id += 1;
        self.live.insert(id, offset);
        self.requested.insert(id, size);
        self.stats.on_malloc(alloc_size, cache_hit);
        Ok(Block {
            id,
            offset,
            size: alloc_size,
            requested: size,
        })
    }

    fn free(&mut self, id: BlockId) -> Result<Block, AllocError> {
        let offset = self.live.remove(&id).ok_or(AllocError::UnknownBlock(id))?;
        let requested = self.requested.remove(&id).unwrap_or(0);
        let chunk = *self.chunks.get(&offset).expect("live chunk exists");
        self.stats.on_free(chunk.size);
        // coalesce with the previous chunk if free and contiguous in the
        // same segment
        let mut new_off = offset;
        let mut new_size = chunk.size;
        if let Some((&prev_off, &prev)) = self.chunks.range(..offset).next_back() {
            if prev.free && prev.segment == chunk.segment && prev_off + prev.size == offset {
                self.free_set(prev.pool).remove(&(prev.size, prev_off));
                self.chunks.remove(&offset);
                new_off = prev_off;
                new_size += prev.size;
            }
        }
        // coalesce with the next chunk
        let next_entry = self
            .chunks
            .range(new_off + 1..)
            .next()
            .map(|(o, c)| (*o, *c));
        if let Some((next_off, next)) = next_entry {
            if next.free && next.segment == chunk.segment && new_off + new_size == next_off {
                self.free_set(next.pool).remove(&(next.size, next_off));
                self.chunks.remove(&next_off);
                new_size += next.size;
            }
        }
        let merged = self.chunks.get_mut(&new_off).expect("merged chunk exists");
        merged.free = true;
        merged.size = new_size;
        let pool = merged.pool;
        self.free_set(pool).insert((new_size, new_off));
        Ok(Block {
            id,
            offset,
            size: chunk.size,
            requested,
        })
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }

    fn live_blocks(&self) -> Vec<Block> {
        let mut out: Vec<Block> = self
            .live
            .iter()
            .map(|(&id, &offset)| Block {
                id,
                offset,
                size: self.chunks[&offset].size,
                requested: self.requested.get(&id).copied().unwrap_or(0),
            })
            .collect();
        out.sort_by_key(|b| b.offset);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: usize = 1 << 30;

    #[test]
    fn first_malloc_reserves_a_segment() {
        let mut a = CachingAllocator::new(GB);
        let b = a.malloc(1000).unwrap();
        assert_eq!(b.size, 1024);
        assert_eq!(a.stats().reserved_bytes, SMALL_SEGMENT_BYTES);
        assert_eq!(a.stats().cache_hit_mallocs, 0);
        a.debug_check_invariants().unwrap();
    }

    #[test]
    fn freed_block_is_reused_at_same_offset() {
        let mut a = CachingAllocator::new(GB);
        let b1 = a.malloc(300_000).unwrap();
        a.free(b1.id).unwrap();
        let b2 = a.malloc(300_000).unwrap();
        assert_eq!(b1.offset, b2.offset);
        assert_ne!(b1.id, b2.id, "a new block identity is minted");
        assert_eq!(a.stats().cache_hit_mallocs, 1);
        assert_eq!(a.stats().reserved_bytes, SMALL_SEGMENT_BYTES);
        a.debug_check_invariants().unwrap();
    }

    #[test]
    fn small_and_large_pools_are_disjoint() {
        let mut a = CachingAllocator::new(GB);
        let small = a.malloc(1000).unwrap();
        let large = a.malloc(4 << 20).unwrap();
        // large request opens a separate ≥20 MB segment
        assert!(large.offset >= SMALL_SEGMENT_BYTES);
        assert_eq!(
            a.stats().reserved_bytes,
            SMALL_SEGMENT_BYTES + LARGE_SEGMENT_MIN_BYTES
        );
        a.free(small.id).unwrap();
        a.free(large.id).unwrap();
        a.debug_check_invariants().unwrap();
    }

    #[test]
    fn splitting_keeps_remainder_usable() {
        let mut a = CachingAllocator::new(GB);
        let b1 = a.malloc(1000).unwrap();
        let b2 = a.malloc(1000).unwrap();
        // both served from the same 2 MB segment, back to back
        assert_eq!(b2.offset, b1.offset + b1.size);
        assert_eq!(a.stats().reserved_bytes, SMALL_SEGMENT_BYTES);
        a.debug_check_invariants().unwrap();
    }

    #[test]
    fn coalescing_merges_neighbors() {
        let mut a = CachingAllocator::new(GB);
        let b1 = a.malloc(1000).unwrap();
        let b2 = a.malloc(1000).unwrap();
        let b3 = a.malloc(1000).unwrap();
        a.free(b1.id).unwrap();
        a.free(b3.id).unwrap();
        a.free(b2.id).unwrap(); // merges with both neighbors + tail
        a.debug_check_invariants().unwrap();
        // after full free the segment is one chunk again
        let free_chunks = a.free_small.len();
        assert_eq!(free_chunks, 1);
        assert_eq!(a.free_small.iter().next().unwrap().0, SMALL_SEGMENT_BYTES);
    }

    #[test]
    fn large_chunks_do_not_split_for_small_remainders() {
        let mut a = CachingAllocator::new(GB);
        let b1 = a.malloc(19 << 20).unwrap(); // 19 MB from a 20 MB segment
                                              // remainder would be 1 MB == threshold → split happens at exactly 1MB
        assert_eq!(b1.size, 19 << 20);
        a.free(b1.id).unwrap();
        // now request 19.8 MB: remainder 0.2 MB < 1 MB → no split
        let b2 = a.malloc((198 << 20) / 10).unwrap();
        assert_eq!(b2.size, 20 << 20, "whole chunk handed out");
        a.debug_check_invariants().unwrap();
    }

    #[test]
    fn oom_when_capacity_exhausted() {
        let mut a = CachingAllocator::new(30 << 20);
        let _b = a.malloc(25 << 20).unwrap(); // exact-size fallback segment
        let err = a.malloc(10 << 20).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
    }

    #[test]
    fn exact_size_fallback_segment_under_pressure() {
        let mut a = CachingAllocator::new(30 << 20);
        // 25 MB > 20 MB min, fits only as exact-size segment
        let b = a.malloc(25 << 20).unwrap();
        assert_eq!(b.size, 25 << 20);
        assert_eq!(a.stats().reserved_bytes, 25 << 20);
    }

    #[test]
    fn zero_size_and_double_free_rejected() {
        let mut a = CachingAllocator::new(GB);
        assert_eq!(a.malloc(0).unwrap_err(), AllocError::ZeroSize);
        let b = a.malloc(100).unwrap();
        a.free(b.id).unwrap();
        assert_eq!(a.free(b.id).unwrap_err(), AllocError::UnknownBlock(b.id));
    }

    #[test]
    fn steady_state_reuses_cache_with_no_new_reservations() {
        // the Fig. 2 phenomenon: after warm-up, reserved stays flat and all
        // mallocs hit cache
        let mut a = CachingAllocator::new(GB);
        let sizes = [4096usize, 200_000, 1 << 22, 32_768];
        // warm-up iteration
        let ids: Vec<_> = sizes.iter().map(|&s| a.malloc(s).unwrap().id).collect();
        for id in ids {
            a.free(id).unwrap();
        }
        let reserved_after_warmup = a.stats().reserved_bytes;
        let hits_before = a.stats().cache_hit_mallocs;
        let mut offsets_per_iter = Vec::new();
        for _ in 0..5 {
            let blocks: Vec<_> = sizes.iter().map(|&s| a.malloc(s).unwrap()).collect();
            offsets_per_iter.push(blocks.iter().map(|b| b.offset).collect::<Vec<_>>());
            for b in blocks {
                a.free(b.id).unwrap();
            }
        }
        assert_eq!(a.stats().reserved_bytes, reserved_after_warmup);
        assert_eq!(
            a.stats().cache_hit_mallocs - hits_before,
            5 * sizes.len() as u64
        );
        // identical offsets every iteration: the periodic Gantt pattern
        for w in offsets_per_iter.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        a.debug_check_invariants().unwrap();
    }

    #[test]
    fn live_blocks_snapshot_is_sorted_and_complete() {
        let mut a = CachingAllocator::new(GB);
        let b1 = a.malloc(1000).unwrap();
        let b2 = a.malloc(2 << 20).unwrap();
        let live = a.live_blocks();
        assert_eq!(live.len(), 2);
        assert!(live[0].offset < live[1].offset);
        assert!(live.iter().any(|b| b.id == b1.id));
        assert!(live.iter().any(|b| b.id == b2.id));
    }
}

#[cfg(test)]
mod cache_release_tests {
    use super::*;

    const GB: usize = 1 << 30;

    #[test]
    fn empty_cache_releases_fully_free_segments() {
        let mut a = CachingAllocator::new(GB);
        let b1 = a.malloc(1000).unwrap();
        let b2 = a.malloc(4 << 20).unwrap();
        a.free(b1.id).unwrap();
        a.free(b2.id).unwrap();
        let reserved = a.stats().reserved_bytes;
        assert!(reserved > 0);
        let released = a.empty_cache();
        assert_eq!(released, reserved, "everything was cached");
        assert_eq!(a.stats().reserved_bytes, 0);
        a.debug_check_invariants().unwrap();
        // the allocator is still fully usable
        let b3 = a.malloc(1000).unwrap();
        assert_eq!(b3.size, 1024);
        a.debug_check_invariants().unwrap();
    }

    #[test]
    fn empty_cache_keeps_segments_with_live_blocks() {
        let mut a = CachingAllocator::new(GB);
        let _live = a.malloc(1000).unwrap();
        let dead = a.malloc(40 << 20).unwrap();
        a.free(dead.id).unwrap();
        let released = a.empty_cache();
        assert_eq!(released, 40 << 20, "only the large segment was idle");
        assert_eq!(a.stats().reserved_bytes, SMALL_SEGMENT_BYTES);
        a.debug_check_invariants().unwrap();
    }

    #[test]
    fn oom_retries_after_releasing_the_cache() {
        // 30 MB device: a cached 20 MB large segment blocks a 25 MB
        // request until the automatic empty_cache retry releases it
        let mut a = CachingAllocator::new(30 << 20);
        let b1 = a.malloc(5 << 20).unwrap(); // 20 MB segment reserved
        a.free(b1.id).unwrap();
        assert_eq!(a.stats().reserved_bytes, 20 << 20);
        let b2 = a.malloc(25 << 20).expect("retry must release the cache");
        assert_eq!(b2.size, 25 << 20);
        assert_eq!(a.stats().cache_hit_mallocs, 0);
        a.debug_check_invariants().unwrap();
    }

    #[test]
    fn released_address_ranges_are_reused() {
        let mut a = CachingAllocator::new(GB);
        let b1 = a.malloc(30 << 20).unwrap();
        let off1 = b1.offset;
        a.free(b1.id).unwrap();
        a.empty_cache();
        let b2 = a.malloc(10 << 20).unwrap();
        assert_eq!(b2.offset, off1, "released VA must be recycled");
        a.debug_check_invariants().unwrap();
    }

    #[test]
    fn pool_stats_split_by_size_class() {
        let mut a = CachingAllocator::new(GB);
        let s = a.malloc(1000).unwrap();
        let l = a.malloc(4 << 20).unwrap();
        a.free(l.id).unwrap();
        let (small, large) = a.pool_stats();
        assert_eq!(small.reserved_bytes, SMALL_SEGMENT_BYTES);
        assert!(small.cached_free_bytes < SMALL_SEGMENT_BYTES); // s is live
        assert_eq!(large.reserved_bytes, LARGE_SEGMENT_MIN_BYTES);
        assert_eq!(large.cached_free_bytes, LARGE_SEGMENT_MIN_BYTES);
        assert_eq!(large.free_chunks, 1);
        assert_eq!(large.largest_free_bytes, LARGE_SEGMENT_MIN_BYTES);
        let _ = s;
    }

    #[test]
    fn empty_cache_on_empty_allocator_is_noop() {
        let mut a = CachingAllocator::new(GB);
        assert_eq!(a.empty_cache(), 0);
        a.debug_check_invariants().unwrap();
    }
}
