//! Device memory allocators.
//!
//! The paper pinpoints memory behaviors *by instrumenting the runtime's
//! memory allocators*; this module provides the allocators being
//! instrumented. [`CachingAllocator`] models PyTorch's CUDA caching
//! allocator (the paper's subject). [`BestFitAllocator`] and
//! [`BumpAllocator`] are baselines used by the ablation benches to show how
//! allocator policy shapes the Gantt chart and fragmentation.

mod best_fit;
mod bump;
mod caching;

pub use best_fit::BestFitAllocator;
pub use bump::BumpAllocator;
pub use caching::CachingAllocator;

use pinpoint_trace::BlockId;
use std::fmt;

/// Allocation granularity: all sizes round up to a multiple of this
/// (PyTorch's `kMinBlockSize`).
pub const MIN_BLOCK_BYTES: usize = 512;

/// Rounds a size up to the allocation granularity (minimum one granule).
pub fn round_up(size: usize) -> usize {
    if size == 0 {
        return 0;
    }
    size.div_ceil(MIN_BLOCK_BYTES) * MIN_BLOCK_BYTES
}

/// A live allocation handed out by a [`DeviceAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Unique id, minted per `malloc` (the paper's unit of analysis).
    pub id: BlockId,
    /// Offset in the device address space (Gantt y-axis).
    pub offset: usize,
    /// Usable size in bytes, after rounding.
    pub size: usize,
    /// Size the caller asked for.
    pub requested: usize,
}

/// Why an allocator call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough device memory for the request.
    OutOfMemory {
        /// Rounded request size in bytes.
        requested: usize,
        /// Device capacity in bytes.
        capacity: usize,
        /// Bytes currently reserved from the device.
        reserved: usize,
    },
    /// `free` (or a query) referenced a block this allocator never issued or
    /// already reclaimed.
    UnknownBlock(BlockId),
    /// A zero-byte allocation was requested.
    ZeroSize,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                capacity,
                reserved,
            } => write!(
                f,
                "out of device memory: requested {requested} B with {reserved} B reserved of {capacity} B capacity"
            ),
            AllocError::UnknownBlock(id) => write!(f, "unknown or already-freed block {id}"),
            AllocError::ZeroSize => write!(f, "zero-size allocation request"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Running counters every allocator maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently handed out to live blocks.
    pub allocated_bytes: usize,
    /// High-water mark of `allocated_bytes`.
    pub peak_allocated_bytes: usize,
    /// Bytes currently reserved from the device (segments/arena).
    pub reserved_bytes: usize,
    /// High-water mark of `reserved_bytes`.
    pub peak_reserved_bytes: usize,
    /// Total `malloc` calls served.
    pub num_mallocs: u64,
    /// Total `free` calls served.
    pub num_frees: u64,
    /// `malloc` calls satisfied from cached/free memory without reserving
    /// new device memory (the caching allocator's raison d'être).
    pub cache_hit_mallocs: u64,
}

impl AllocStats {
    pub(crate) fn on_malloc(&mut self, size: usize, cache_hit: bool) {
        self.allocated_bytes += size;
        self.peak_allocated_bytes = self.peak_allocated_bytes.max(self.allocated_bytes);
        self.num_mallocs += 1;
        if cache_hit {
            self.cache_hit_mallocs += 1;
        }
    }

    pub(crate) fn on_free(&mut self, size: usize) {
        self.allocated_bytes -= size;
        self.num_frees += 1;
    }

    pub(crate) fn on_reserve(&mut self, size: usize) {
        self.reserved_bytes += size;
        self.peak_reserved_bytes = self.peak_reserved_bytes.max(self.reserved_bytes);
    }

    /// Fraction of peak reserved memory that was never simultaneously
    /// allocated — a coarse external-fragmentation / overhead measure.
    pub fn peak_slack_fraction(&self) -> f64 {
        if self.peak_reserved_bytes == 0 {
            0.0
        } else {
            1.0 - self.peak_allocated_bytes as f64 / self.peak_reserved_bytes as f64
        }
    }
}

/// A device memory allocator that can be instrumented by the simulator.
///
/// Implementations mint a fresh [`BlockId`] for every successful `malloc`;
/// the simulator turns those into `Malloc`/`Free` trace events.
pub trait DeviceAllocator: fmt::Debug {
    /// Short policy name (for reports and bench labels).
    fn name(&self) -> &'static str;

    /// Total device memory capacity in bytes.
    fn capacity(&self) -> usize;

    /// Allocates `size` bytes (rounded up to [`MIN_BLOCK_BYTES`]).
    ///
    /// # Errors
    ///
    /// [`AllocError::ZeroSize`] for `size == 0`;
    /// [`AllocError::OutOfMemory`] when the request cannot be satisfied.
    fn malloc(&mut self, size: usize) -> Result<Block, AllocError>;

    /// Releases a block previously returned by [`DeviceAllocator::malloc`].
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownBlock`] if `id` is not live.
    fn free(&mut self, id: BlockId) -> Result<Block, AllocError>;

    /// Running counters.
    fn stats(&self) -> &AllocStats;

    /// Snapshot of all live blocks (for fragmentation/Gantt analysis).
    fn live_blocks(&self) -> Vec<Block>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_up_to_granule() {
        assert_eq!(round_up(0), 0);
        assert_eq!(round_up(1), 512);
        assert_eq!(round_up(512), 512);
        assert_eq!(round_up(513), 1024);
        assert_eq!(round_up(1 << 20), 1 << 20);
    }

    #[test]
    fn stats_track_peaks_and_slack() {
        let mut s = AllocStats::default();
        s.on_reserve(1000);
        s.on_malloc(600, false);
        s.on_malloc(200, true);
        s.on_free(600);
        assert_eq!(s.allocated_bytes, 200);
        assert_eq!(s.peak_allocated_bytes, 800);
        assert_eq!(s.reserved_bytes, 1000);
        assert_eq!(s.cache_hit_mallocs, 1);
        assert!((s.peak_slack_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = AllocError::OutOfMemory {
            requested: 10,
            capacity: 100,
            reserved: 90,
        };
        assert!(e.to_string().contains("out of device memory"));
        assert!(AllocError::UnknownBlock(BlockId(3))
            .to_string()
            .contains("blk3"));
    }
}
