//! The simulated device clock.
//!
//! All timestamps in a trace come from one monotonically advancing
//! nanosecond counter. Determinism matters: the same program replayed twice
//! must produce byte-identical traces, which is what lets the analysis layer
//! assert iterative patterns exactly.

/// A monotonically advancing nanosecond clock.
///
/// # Examples
///
/// ```
/// use pinpoint_device::SimClock;
///
/// let mut clock = SimClock::new();
/// assert_eq!(clock.now_ns(), 0);
/// clock.advance_ns(5_000);
/// assert_eq!(clock.now_ns(), 5_000);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances the clock by `delta` nanoseconds, returning the new time.
    pub fn advance_ns(&mut self, delta: u64) -> u64 {
        self.now_ns = self
            .now_ns
            .checked_add(delta)
            .expect("simulated clock overflow");
        self.now_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = SimClock::new();
        let t1 = c.advance_ns(10);
        let t2 = c.advance_ns(0);
        let t3 = c.advance_ns(5);
        assert_eq!((t1, t2, t3), (10, 10, 15));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics_rather_than_wrapping() {
        let mut c = SimClock::new();
        c.advance_ns(u64::MAX);
        c.advance_ns(1);
    }
}
