//! The analytic kernel cost model.
//!
//! The paper timestamps memory behaviors with the real GPU's clock; we have
//! no GPU, so kernel durations come from a roofline-style model: a kernel
//! costs its launch overhead plus the larger of its compute time
//! (FLOPs ÷ peak throughput) and its memory time (bytes ÷ DRAM bandwidth),
//! scaled by a small deterministic jitter. Defaults are calibrated to the
//! paper's Nvidia Titan X Pascal.

/// Roofline kernel-duration model with deterministic jitter.
///
/// # Examples
///
/// ```
/// use pinpoint_device::CostModel;
///
/// let cm = CostModel::titan_x_pascal();
/// // A tiny pointwise kernel is launch-latency bound (~5 µs).
/// let t = cm.kernel_time_ns(1_000, 4_000, 0);
/// assert!(t >= 4_000 && t < 8_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed per-kernel launch latency in nanoseconds.
    pub launch_overhead_ns: u64,
    /// Peak fp32 throughput in FLOP/s.
    pub flops_per_sec: f64,
    /// Device DRAM bandwidth in bytes/s.
    pub dram_bytes_per_sec: f64,
    /// Relative jitter amplitude (0.0 disables jitter). Jitter is a
    /// deterministic function of the seed passed to
    /// [`CostModel::kernel_time_ns`], so traces stay reproducible.
    pub jitter_frac: f64,
}

impl CostModel {
    /// Titan-X-Pascal-like defaults (the paper's GPU): 10.2 TFLOP/s fp32,
    /// 480 GB/s DRAM, 5 µs launch overhead, ±5 % jitter.
    pub fn titan_x_pascal() -> Self {
        CostModel {
            launch_overhead_ns: 5_000,
            flops_per_sec: 10.2e12,
            dram_bytes_per_sec: 480e9,
            jitter_frac: 0.05,
        }
    }

    /// A jitter-free variant, for tests that assert exact times.
    pub fn deterministic() -> Self {
        CostModel {
            jitter_frac: 0.0,
            ..Self::titan_x_pascal()
        }
    }

    /// Duration of a kernel doing `flops` floating-point operations and
    /// moving `bytes` through DRAM. `seed` (typically the kernel's launch
    /// sequence number) drives the deterministic jitter.
    pub fn kernel_time_ns(&self, flops: u64, bytes: u64, seed: u64) -> u64 {
        let compute_ns = flops as f64 / self.flops_per_sec * 1e9;
        let memory_ns = bytes as f64 / self.dram_bytes_per_sec * 1e9;
        let body = compute_ns.max(memory_ns);
        let base = self.launch_overhead_ns as f64 + body;
        let jittered = base * (1.0 + self.jitter_frac * Self::unit_jitter(seed));
        jittered.max(1.0) as u64
    }

    /// Deterministic pseudo-random value in `[-1, 1]` from a seed
    /// (SplitMix64 finalizer).
    fn unit_jitter(seed: u64) -> f64 {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // map to [-1, 1)
        (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::titan_x_pascal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_bound_for_tiny_kernels() {
        let cm = CostModel::deterministic();
        assert_eq!(cm.kernel_time_ns(0, 0, 0), 5_000);
    }

    #[test]
    fn compute_bound_for_big_matmuls() {
        let cm = CostModel::deterministic();
        // the paper MLP's forward matmul at batch 128: the 6.3 MB output
        // makes it memory-bound at ~13 µs plus 5 µs launch
        let flops = 2 * 128 * 2 * 12288u64;
        let t = cm.kernel_time_ns(flops, 128 * 12288 * 4, 0);
        assert!(t > 15_000 && t < 25_000, "t = {t}");
    }

    #[test]
    fn memory_bound_when_bytes_dominate() {
        let cm = CostModel::deterministic();
        // pure copy of 480 MB should take ~1 ms
        let t = cm.kernel_time_ns(0, 480_000_000, 0);
        assert!((t as i64 - 1_005_000).abs() < 10_000, "t = {t}");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let cm = CostModel::titan_x_pascal();
        let a = cm.kernel_time_ns(1_000_000, 1_000_000, 42);
        let b = cm.kernel_time_ns(1_000_000, 1_000_000, 42);
        assert_eq!(a, b);
        let base = CostModel::deterministic().kernel_time_ns(1_000_000, 1_000_000, 42);
        for seed in 0..1000u64 {
            let t = cm.kernel_time_ns(1_000_000, 1_000_000, seed);
            let lo = (base as f64 * 0.94) as u64;
            let hi = (base as f64 * 1.06) as u64;
            assert!(t >= lo && t <= hi, "seed {seed}: {t} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn jitter_varies_across_seeds() {
        let cm = CostModel::titan_x_pascal();
        let times: std::collections::HashSet<u64> = (0..100)
            .map(|s| cm.kernel_time_ns(10_000_000, 0, s))
            .collect();
        assert!(times.len() > 50, "jitter should spread: {}", times.len());
    }

    #[test]
    fn duration_is_never_zero() {
        let cm = CostModel {
            launch_overhead_ns: 0,
            flops_per_sec: 1e12,
            dram_bytes_per_sec: 1e12,
            jitter_frac: 0.0,
        };
        assert!(cm.kernel_time_ns(0, 0, 0) >= 1);
    }
}
