//! The instrumented simulated device.
//!
//! [`SimDevice`] is where the paper's methodology lives: every allocator
//! call and every kernel-operand access is recorded into a
//! [`pinpoint_trace::Trace`] with a timestamp from the simulated clock.

use crate::alloc::{
    AllocError, AllocStats, BestFitAllocator, Block, BumpAllocator, CachingAllocator,
    DeviceAllocator,
};
use crate::clock::SimClock;
use crate::cost::CostModel;
use crate::transfer::TransferModel;
use pinpoint_trace::{BlockId, EventKind, MemEvent, MemoryKind, Trace, TraceSink};
use std::collections::HashMap;
use std::fmt;

/// Which allocator policy a device uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocatorPolicy {
    /// PyTorch-style caching allocator (the paper's subject).
    #[default]
    Caching,
    /// Classic best-fit arena (ablation baseline).
    BestFit,
    /// Bump pointer with generation reset (ablation baseline).
    Bump,
}

impl AllocatorPolicy {
    /// Instantiates the allocator for `capacity` bytes.
    pub fn build(self, capacity: usize) -> Box<dyn DeviceAllocator> {
        match self {
            AllocatorPolicy::Caching => Box::new(CachingAllocator::new(capacity)),
            AllocatorPolicy::BestFit => Box::new(BestFitAllocator::new(capacity)),
            AllocatorPolicy::Bump => Box::new(BumpAllocator::new(capacity)),
        }
    }

    /// All policies, for sweeps.
    pub const ALL: [AllocatorPolicy; 3] = [
        AllocatorPolicy::Caching,
        AllocatorPolicy::BestFit,
        AllocatorPolicy::Bump,
    ];
}

/// Configuration of a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Device memory capacity in bytes (Titan X Pascal: 12 GB).
    pub capacity_bytes: usize,
    /// Allocator policy.
    pub allocator: AllocatorPolicy,
    /// Kernel cost model.
    pub cost: CostModel,
    /// Host↔device transfer model.
    pub transfer: TransferModel,
}

impl DeviceConfig {
    /// Titan-X-Pascal-like defaults with the caching allocator.
    pub fn titan_x_pascal() -> Self {
        DeviceConfig {
            capacity_bytes: 12 << 30,
            allocator: AllocatorPolicy::Caching,
            cost: CostModel::titan_x_pascal(),
            transfer: TransferModel::titan_x_pascal_pinned(),
        }
    }

    /// Jitter-free variant for exactness-sensitive tests.
    pub fn deterministic() -> Self {
        DeviceConfig {
            cost: CostModel::deterministic(),
            ..Self::titan_x_pascal()
        }
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::titan_x_pascal()
    }
}

/// A simulated, instrumented GPU.
///
/// All memory management and kernel launches go through this type, which
/// advances the clock with the cost model and appends the paper's four
/// behaviors (`malloc`, `free`, `read`, `write`) to the trace.
///
/// # Examples
///
/// ```
/// use pinpoint_device::{DeviceConfig, SimDevice};
/// use pinpoint_trace::MemoryKind;
///
/// let mut dev = SimDevice::new(DeviceConfig::deterministic());
/// let x = dev.malloc(16 << 10, MemoryKind::Activation, Some("relu_out"))?;
/// dev.launch_kernel("relu", 4096, 32 << 10, &[x], &[x]);
/// dev.free(x)?;
/// assert_eq!(dev.trace().len(), 4); // malloc, read, write, free
/// # Ok::<(), pinpoint_device::alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct SimDevice {
    config: DeviceConfig,
    clock: SimClock,
    alloc: Box<dyn DeviceAllocator>,
    sink: DeviceSink,
    live: HashMap<BlockId, (usize, usize, MemoryKind)>, // size, offset, kind
    kernel_seq: u64,
}

/// Where a device's observed behaviors go: the default in-memory [`Trace`],
/// or an external streaming [`TraceSink`] (e.g. a chunked on-disk store
/// writer) that never accumulates the full event log in RAM.
enum DeviceSink {
    Memory(Trace),
    External(Box<dyn TraceSink + Send>),
}

impl DeviceSink {
    fn as_sink(&mut self) -> &mut dyn TraceSink {
        match self {
            DeviceSink::Memory(t) => t,
            DeviceSink::External(s) => &mut **s,
        }
    }
}

impl fmt::Debug for DeviceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceSink::Memory(t) => f.debug_tuple("Memory").field(t).finish(),
            DeviceSink::External(_) => f.write_str("External(..)"),
        }
    }
}

impl SimDevice {
    /// Creates a device from its configuration, tracing into memory.
    pub fn new(config: DeviceConfig) -> Self {
        Self::build(config, DeviceSink::Memory(Trace::new()))
    }

    /// Creates a device that streams its behaviors into an external sink
    /// instead of accumulating an in-memory [`Trace`].
    ///
    /// With an external sink, [`SimDevice::trace`] and
    /// [`SimDevice::into_trace`] are unavailable (they panic); drive the
    /// sink to completion with [`SimDevice::finish_sink`] instead.
    pub fn with_sink(config: DeviceConfig, sink: Box<dyn TraceSink + Send>) -> Self {
        Self::build(config, DeviceSink::External(sink))
    }

    fn build(config: DeviceConfig, sink: DeviceSink) -> Self {
        let alloc = config.allocator.build(config.capacity_bytes);
        SimDevice {
            config,
            clock: SimClock::new(),
            alloc,
            sink,
            live: HashMap::new(),
            kernel_seq: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        time_ns: u64,
        kind: EventKind,
        block: BlockId,
        size: usize,
        offset: usize,
        mem_kind: MemoryKind,
        op_label: Option<u32>,
    ) {
        self.sink.as_sink().record_event(MemEvent {
            time_ns,
            kind,
            block,
            size,
            offset,
            mem_kind,
            op_label,
        });
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Allocator counters.
    pub fn alloc_stats(&self) -> &AllocStats {
        self.alloc.stats()
    }

    /// Live-block snapshot from the allocator.
    pub fn live_blocks(&self) -> Vec<Block> {
        self.alloc.live_blocks()
    }

    /// Allocates a device block, recording a `Malloc` event.
    ///
    /// # Errors
    ///
    /// Propagates allocator errors (OOM, zero size).
    pub fn malloc(
        &mut self,
        size: usize,
        kind: MemoryKind,
        op: Option<&str>,
    ) -> Result<BlockId, AllocError> {
        let block = self.alloc.malloc(size)?;
        let label = op.map(|o| self.sink.as_sink().intern_label(o));
        self.live.insert(block.id, (block.size, block.offset, kind));
        self.record(
            self.clock.now_ns(),
            EventKind::Malloc,
            block.id,
            block.size,
            block.offset,
            kind,
            label,
        );
        Ok(block.id)
    }

    /// Frees a device block, recording a `Free` event.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownBlock`] if `id` is not live.
    pub fn free(&mut self, id: BlockId) -> Result<(), AllocError> {
        let block = self.alloc.free(id)?;
        let (_, _, kind) = self
            .live
            .remove(&id)
            .expect("allocator and device agree on live blocks");
        self.record(
            self.clock.now_ns(),
            EventKind::Free,
            id,
            block.size,
            block.offset,
            kind,
            None,
        );
        Ok(())
    }

    /// Launches a kernel: records `Read` events for `reads` at launch time,
    /// advances the clock by the cost model's duration, then records `Write`
    /// events for `writes` at completion time. Returns the kernel duration.
    ///
    /// Blocks appearing in both lists get both events (read-modify-write).
    ///
    /// # Panics
    ///
    /// Panics if any operand block is not live — that would be a
    /// use-after-free in the executor, which the trace must never contain.
    pub fn launch_kernel(
        &mut self,
        name: &str,
        flops: u64,
        bytes: u64,
        reads: &[BlockId],
        writes: &[BlockId],
    ) -> u64 {
        let label = self.sink.as_sink().intern_label(name);
        let t0 = self.clock.now_ns();
        for &r in reads {
            let (size, offset, kind) = *self
                .live
                .get(&r)
                .unwrap_or_else(|| panic!("kernel {name} reads non-live block {r}"));
            self.record(t0, EventKind::Read, r, size, offset, kind, Some(label));
        }
        let dur = self
            .config
            .cost
            .kernel_time_ns(flops, bytes, self.kernel_seq);
        self.kernel_seq += 1;
        let t1 = self.clock.advance_ns(dur);
        for &w in writes {
            let (size, offset, kind) = *self
                .live
                .get(&w)
                .unwrap_or_else(|| panic!("kernel {name} writes non-live block {w}"));
            self.record(t1, EventKind::Write, w, size, offset, kind, Some(label));
        }
        dur
    }

    /// Copies `bytes` from host to a device block: advances the clock by the
    /// transfer time and records a `Write` on the destination.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not live.
    pub fn h2d(&mut self, bytes: usize, dst: BlockId, op: &str) -> u64 {
        let label = self.sink.as_sink().intern_label(op);
        let dur = self.config.transfer.h2d_time_ns(bytes);
        let t1 = self.clock.advance_ns(dur);
        let (size, offset, kind) = *self
            .live
            .get(&dst)
            .unwrap_or_else(|| panic!("h2d into non-live block {dst}"));
        self.record(t1, EventKind::Write, dst, size, offset, kind, Some(label));
        dur
    }

    /// Copies `bytes` from a device block to the host: records a `Read` at
    /// the start and advances the clock by the transfer time.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not live.
    pub fn d2h(&mut self, bytes: usize, src: BlockId, op: &str) -> u64 {
        let label = self.sink.as_sink().intern_label(op);
        let t0 = self.clock.now_ns();
        let (size, offset, kind) = *self
            .live
            .get(&src)
            .unwrap_or_else(|| panic!("d2h from non-live block {src}"));
        self.record(t0, EventKind::Read, src, size, offset, kind, Some(label));
        let dur = self.config.transfer.d2h_time_ns(bytes);
        self.clock.advance_ns(dur);
        dur
    }

    /// Advances the clock without touching memory (host-side work, sync).
    pub fn idle_ns(&mut self, delta: u64) {
        self.clock.advance_ns(delta);
    }

    /// Adds a boundary marker (e.g. `"iter:3"`).
    pub fn mark(&mut self, label: impl Into<String>) {
        let t = self.clock.now_ns();
        let label = label.into();
        self.sink.as_sink().record_marker(t, &label);
    }

    /// Number of events recorded so far (any sink kind).
    pub fn events_recorded(&mut self) -> u64 {
        self.sink.as_sink().event_count()
    }

    /// Read access to the in-memory trace so far.
    ///
    /// # Panics
    ///
    /// Panics if the device was built with [`SimDevice::with_sink`] — an
    /// external sink owns the events and there is no in-memory trace.
    pub fn trace(&self) -> &Trace {
        match &self.sink {
            DeviceSink::Memory(t) => t,
            DeviceSink::External(_) => {
                panic!("device records into an external trace sink; no in-memory trace")
            }
        }
    }

    /// Consumes the device, returning its in-memory trace.
    ///
    /// # Panics
    ///
    /// Panics if the device was built with [`SimDevice::with_sink`]; use
    /// [`SimDevice::finish_sink`] for externally sunk devices.
    pub fn into_trace(self) -> Trace {
        match self.sink {
            DeviceSink::Memory(t) => t,
            DeviceSink::External(_) => {
                panic!("device records into an external trace sink; no in-memory trace")
            }
        }
    }

    /// Finishes the sink (flushing an external writer's buffered chunks and
    /// footer) and surfaces any deferred I/O error. For in-memory devices
    /// this is a no-op returning `Ok`.
    ///
    /// # Errors
    ///
    /// Returns the sink's first deferred I/O error.
    pub fn finish_sink(&mut self) -> std::io::Result<()> {
        self.sink.as_sink().finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> SimDevice {
        SimDevice::new(DeviceConfig::deterministic())
    }

    #[test]
    fn malloc_free_produce_events() {
        let mut d = dev();
        let b = d.malloc(4096, MemoryKind::Weight, Some("init")).unwrap();
        d.free(b).unwrap();
        let t = d.into_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].kind, EventKind::Malloc);
        assert_eq!(t.events()[1].kind, EventKind::Free);
        assert_eq!(t.events()[0].mem_kind, MemoryKind::Weight);
        t.validate().unwrap();
    }

    #[test]
    fn kernel_reads_precede_writes_in_time() {
        let mut d = dev();
        let x = d.malloc(1024, MemoryKind::Activation, None).unwrap();
        let y = d.malloc(1024, MemoryKind::Activation, None).unwrap();
        d.launch_kernel("relu", 256, 2048, &[x], &[y]);
        let t = d.trace();
        let read = &t.events()[2];
        let write = &t.events()[3];
        assert_eq!(read.kind, EventKind::Read);
        assert_eq!(write.kind, EventKind::Write);
        assert!(write.time_ns > read.time_ns);
        let dur = write.time_ns - read.time_ns;
        assert!((5_000..5_100).contains(&dur), "launch-bound, got {dur}");
    }

    #[test]
    fn read_modify_write_records_both() {
        let mut d = dev();
        let w = d.malloc(1024, MemoryKind::Weight, None).unwrap();
        d.launch_kernel("sgd_step", 512, 2048, &[w], &[w]);
        let kinds: Vec<_> = d.trace().events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Malloc, EventKind::Read, EventKind::Write]
        );
    }

    #[test]
    #[should_panic(expected = "non-live block")]
    fn kernel_on_freed_block_panics() {
        let mut d = dev();
        let x = d.malloc(1024, MemoryKind::Activation, None).unwrap();
        d.free(x).unwrap();
        d.launch_kernel("bad", 0, 0, &[x], &[]);
    }

    #[test]
    fn transfers_advance_clock_by_model_time() {
        let mut d = dev();
        let x = d.malloc(6_300_000, MemoryKind::Input, None).unwrap();
        let t0 = d.now_ns();
        let dur = d.h2d(6_300_000, x, "stage_batch");
        assert_eq!(d.now_ns() - t0, dur);
        // ≈ 1 ms payload + 10 µs latency
        assert!((dur as i64 - 1_010_000).abs() < 1_000);
        let dur2 = d.d2h(6_400_000, x, "fetch_loss");
        assert!((dur2 as i64 - 1_010_000).abs() < 1_000);
        d.trace().validate().unwrap();
    }

    #[test]
    fn markers_carry_current_time() {
        let mut d = dev();
        d.idle_ns(123);
        d.mark("iter:0");
        assert_eq!(d.trace().markers()[0].time_ns, 123);
        assert_eq!(d.trace().markers()[0].label, "iter:0");
    }

    #[test]
    fn policies_build_distinct_allocators() {
        for p in AllocatorPolicy::ALL {
            let a = p.build(1 << 20);
            assert_eq!(a.capacity(), 1 << 20);
        }
        let mut d = SimDevice::new(DeviceConfig {
            allocator: AllocatorPolicy::Bump,
            ..DeviceConfig::deterministic()
        });
        let b1 = d.malloc(512, MemoryKind::Other, None).unwrap();
        let _b2 = d.malloc(512, MemoryKind::Other, None).unwrap();
        d.free(b1).unwrap();
        // bump: freed space not reused while others live
        let b3 = d.malloc(512, MemoryKind::Other, None).unwrap();
        let offs: Vec<_> = d
            .trace()
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Malloc)
            .map(|e| e.offset)
            .collect();
        assert_eq!(offs, vec![0, 512, 1024]);
        let _ = b3;
    }
}
