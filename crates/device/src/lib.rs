//! # pinpoint-device
//!
//! The simulated GPU substrate for the `pinpoint` reproduction of
//! *"Pinpointing the Memory Behaviors of DNN Training"* (ISPASS 2021).
//!
//! The paper ran on an Nvidia Titan X Pascal through PyTorch's CUDA runtime;
//! this crate replaces that hardware/runtime pair with:
//!
//! * [`SimClock`] — a deterministic nanosecond clock;
//! * [`CostModel`] — a roofline kernel-duration model calibrated to the
//!   Titan X Pascal (10.2 TFLOP/s, 480 GB/s, 5 µs launch overhead);
//! * [`TransferModel`] — the PCIe pinned-memory model with the paper's
//!   measured 6.3 / 6.4 GB/s bandwidths and its Equation 1
//!   ([`TransferModel::max_swap_bytes`]);
//! * [`alloc`] — the device allocators under instrumentation, chiefly the
//!   PyTorch-style [`alloc::CachingAllocator`];
//! * [`SimDevice`] — the instrumented device that stitches these together
//!   and emits [`pinpoint_trace::Trace`] events for every `malloc`, `free`,
//!   `read`, and `write`.
//!
//! # Examples
//!
//! ```
//! use pinpoint_device::{DeviceConfig, SimDevice};
//! use pinpoint_trace::MemoryKind;
//!
//! let mut dev = SimDevice::new(DeviceConfig::titan_x_pascal());
//! let w = dev.malloc(2 * 12288 * 4, MemoryKind::Weight, Some("w0"))?;
//! dev.launch_kernel("init_w0", 0, 2 * 12288 * 4, &[], &[w]);
//! assert_eq!(dev.trace().len(), 2);
//! # Ok::<(), pinpoint_device::alloc::AllocError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
mod clock;
mod cost;
mod device;
mod transfer;

pub use clock::SimClock;
pub use cost::CostModel;
pub use device::{AllocatorPolicy, DeviceConfig, SimDevice};
pub use transfer::{bandwidth_test, BandwidthTestReport, TransferModel};
