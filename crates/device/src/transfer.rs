//! The host↔device transfer model and the paper's Equation 1.
//!
//! The paper measured pinned-memory PCIe bandwidth with the CUDA SDK's
//! `bandwidthTest` (6.3 GB/s host→device, 6.4 GB/s device→host on their
//! testbed) and derived Equation 1: a block whose access-time interval is
//! `T` can be swapped out and back without slowing training only if
//!
//! ```text
//! S / B_d2h + S / B_h2d ≤ T   ⇒   S ≤ T / (1/B_d2h + 1/B_h2d)
//! ```
//!
//! [`TransferModel::max_swap_bytes`] is that bound; the paper's two worked
//! examples (79.37 KB at 25 µs, 2.54 GB at 0.8 s) are unit tests here.

/// PCIe-like host↔device transfer model (pinned memory).
#[derive(Debug, Clone, PartialEq)]
pub struct TransferModel {
    /// Host→device bandwidth, bytes per second.
    pub h2d_bytes_per_sec: f64,
    /// Device→host bandwidth, bytes per second.
    pub d2h_bytes_per_sec: f64,
    /// Fixed per-transfer latency in nanoseconds (driver + DMA setup).
    pub latency_ns: u64,
}

impl TransferModel {
    /// The paper's measured Titan X Pascal values: 6.3 GB/s h2d,
    /// 6.4 GB/s d2h (decimal gigabytes, as in the paper's arithmetic).
    pub fn titan_x_pascal_pinned() -> Self {
        TransferModel {
            h2d_bytes_per_sec: 6.3e9,
            d2h_bytes_per_sec: 6.4e9,
            latency_ns: 10_000,
        }
    }

    /// Time to copy `bytes` host→device.
    pub fn h2d_time_ns(&self, bytes: usize) -> u64 {
        self.latency_ns + (bytes as f64 / self.h2d_bytes_per_sec * 1e9) as u64
    }

    /// Time to copy `bytes` device→host.
    pub fn d2h_time_ns(&self, bytes: usize) -> u64 {
        self.latency_ns + (bytes as f64 / self.d2h_bytes_per_sec * 1e9) as u64
    }

    /// Equation 1 of the paper: the largest block size (bytes) that can be
    /// swapped to the host and back within an access-time interval of
    /// `ati_ns` without extending the training's critical path.
    ///
    /// Note the bound ignores the fixed latency term, exactly as the paper's
    /// arithmetic does; see [`TransferModel::max_swap_bytes_with_latency`]
    /// for the refined bound.
    pub fn max_swap_bytes(&self, ati_ns: u64) -> f64 {
        let t = ati_ns as f64 / 1e9;
        t / (1.0 / self.d2h_bytes_per_sec + 1.0 / self.h2d_bytes_per_sec)
    }

    /// Equation 1 refined with the fixed per-transfer latency: solves
    /// `2·latency + S/B_d2h + S/B_h2d ≤ T`. Returns 0 when even an empty
    /// transfer pair does not fit.
    pub fn max_swap_bytes_with_latency(&self, ati_ns: u64) -> f64 {
        let t = ati_ns.saturating_sub(2 * self.latency_ns) as f64 / 1e9;
        (t / (1.0 / self.d2h_bytes_per_sec + 1.0 / self.h2d_bytes_per_sec)).max(0.0)
    }

    /// Whether a block of `size` bytes with interval `ati_ns` is profitable
    /// to swap under Equation 1 (the paper's criterion for Fig. 4 outliers).
    pub fn swappable(&self, size: usize, ati_ns: u64) -> bool {
        (size as f64) <= self.max_swap_bytes(ati_ns)
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        Self::titan_x_pascal_pinned()
    }
}

/// Result of the simulated `bandwidthTest` (mirrors the CUDA SDK sample the
/// paper used): measured bandwidths derived from timed bulk copies.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthTestReport {
    /// Transfer size used for the measurement, bytes.
    pub payload_bytes: usize,
    /// Measured host→device bandwidth, bytes/s.
    pub h2d_bytes_per_sec: f64,
    /// Measured device→host bandwidth, bytes/s.
    pub d2h_bytes_per_sec: f64,
}

/// Runs the simulated equivalent of CUDA's `bandwidthTest`: times a bulk
/// copy in each direction through the transfer model and reports effective
/// bandwidth (which is slightly below the model's peak because of the fixed
/// latency, just like the real tool's numbers sit below the PCIe peak).
pub fn bandwidth_test(model: &TransferModel, payload_bytes: usize) -> BandwidthTestReport {
    let h2d_ns = model.h2d_time_ns(payload_bytes);
    let d2h_ns = model.d2h_time_ns(payload_bytes);
    BandwidthTestReport {
        payload_bytes,
        h2d_bytes_per_sec: payload_bytes as f64 / (h2d_ns as f64 / 1e9),
        d2h_bytes_per_sec: payload_bytes as f64 / (d2h_ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_first_worked_example() {
        // S ≤ 25µs / (1/6.4GB/s + 1/6.3GB/s) = 79.37 KB
        let m = TransferModel::titan_x_pascal_pinned();
        let s = m.max_swap_bytes(25_000);
        assert!(
            (s / 1e3 - 79.37).abs() < 0.1,
            "expected ≈79.37 KB, got {} KB",
            s / 1e3
        );
    }

    #[test]
    fn papers_second_worked_example() {
        // S ≤ 0.8s / (1/6.4GB/s + 1/6.3GB/s) = 2.54 GB
        let m = TransferModel::titan_x_pascal_pinned();
        let s = m.max_swap_bytes(800_000_000);
        assert!(
            (s / 1e9 - 2.54).abs() < 0.01,
            "expected ≈2.54 GB, got {} GB",
            s / 1e9
        );
    }

    #[test]
    fn outlier_block_is_swappable_typical_block_is_not() {
        let m = TransferModel::titan_x_pascal_pinned();
        // the paper's red-marked outlier: 1200 MB block, 840 211 µs ATI
        assert!(m.swappable(1_200_000_000, 840_211_000));
        // a typical activation: 1 MB block with a 25 µs ATI
        assert!(!m.swappable(1_000_000, 25_000));
    }

    #[test]
    fn latency_refinement_tightens_the_bound() {
        let m = TransferModel::titan_x_pascal_pinned();
        let plain = m.max_swap_bytes(25_000);
        let refined = m.max_swap_bytes_with_latency(25_000);
        assert!(refined < plain);
        // 2×10µs latency leaves only 5µs of bandwidth budget
        assert!(refined > 0.0 && refined < plain * 0.3);
        // below the latency floor nothing fits
        assert_eq!(m.max_swap_bytes_with_latency(15_000), 0.0);
    }

    #[test]
    fn transfer_times_scale_linearly_plus_latency() {
        let m = TransferModel::titan_x_pascal_pinned();
        let t1 = m.h2d_time_ns(6_300_000); // 1 ms of payload
        assert!((t1 as i64 - 1_010_000).abs() < 1_000, "t1 = {t1}");
        let t2 = m.d2h_time_ns(0);
        assert_eq!(t2, m.latency_ns);
    }

    #[test]
    fn bandwidth_test_reports_near_peak_for_large_payloads() {
        let m = TransferModel::titan_x_pascal_pinned();
        let r = bandwidth_test(&m, 32 << 20); // 32 MiB, as the SDK default
        assert!(r.h2d_bytes_per_sec > 0.97 * m.h2d_bytes_per_sec);
        assert!(r.h2d_bytes_per_sec < m.h2d_bytes_per_sec);
        assert!(r.d2h_bytes_per_sec > 0.97 * m.d2h_bytes_per_sec);
    }

    #[test]
    fn bandwidth_test_underreports_for_tiny_payloads() {
        let m = TransferModel::titan_x_pascal_pinned();
        let r = bandwidth_test(&m, 4096);
        assert!(r.h2d_bytes_per_sec < 0.1 * m.h2d_bytes_per_sec);
    }
}
