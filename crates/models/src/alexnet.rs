//! AlexNet — the paper's "linear" (straight-chain) DNN for Fig. 6.
//!
//! Two feature-extractor geometries are provided, chosen automatically by
//! input size: the classical ImageNet stack (11×11 stride-4 stem) for
//! inputs ≥ 64 px, and the common CIFAR adaptation (3×3 stride-2 stem) for
//! small inputs — the paper evaluates AlexNet on both CIFAR-100 (32×32) and
//! ImageNet (224×224).

use pinpoint_nn::layers::{Conv2d, Linear};
use pinpoint_nn::{GraphBuilder, TensorId};

/// Emits the AlexNet forward graph for NCHW input, returning logits.
///
/// # Panics
///
/// Panics if the input is too small for the selected geometry (< 32 px).
pub fn forward(b: &mut GraphBuilder, x: TensorId, classes: usize) -> TensorId {
    let in_ch = b.shape(x).dim(1);
    let size = b.shape(x).dim(2);
    assert!(size >= 32, "AlexNet needs at least 32x32 input, got {size}");
    let h = if size >= 64 {
        imagenet_features(b, x, in_ch)
    } else {
        cifar_features(b, x, in_ch)
    };
    let h = b.flatten(h, "flatten");
    let flat = b.shape(h).dim(1);
    let fc1 = Linear::new(b, "classifier.fc1", flat, 4096, true);
    let fc2 = Linear::new(b, "classifier.fc2", 4096, 4096, true);
    let fc3 = Linear::new(b, "classifier.fc3", 4096, classes, true);
    let h = b.dropout(h, 0.5, "classifier.drop1");
    let h = fc1.forward(b, h);
    let h = b.relu(h, "classifier.relu1");
    let h = b.dropout(h, 0.5, "classifier.drop2");
    let h = fc2.forward(b, h);
    let h = b.relu(h, "classifier.relu2");
    fc3.forward(b, h)
}

fn imagenet_features(b: &mut GraphBuilder, x: TensorId, in_ch: usize) -> TensorId {
    let c1 = Conv2d::new(b, "features.conv1", in_ch, 64, 11, 4, 2);
    let c2 = Conv2d::new(b, "features.conv2", 64, 192, 5, 1, 2);
    let c3 = Conv2d::new(b, "features.conv3", 192, 384, 3, 1, 1);
    let c4 = Conv2d::new(b, "features.conv4", 384, 256, 3, 1, 1);
    let c5 = Conv2d::new(b, "features.conv5", 256, 256, 3, 1, 1);
    let h = c1.forward(b, x);
    let h = b.relu(h, "features.relu1");
    let h = b.maxpool2d(h, 3, 2, 0, "features.pool1");
    let h = c2.forward(b, h);
    let h = b.relu(h, "features.relu2");
    let h = b.maxpool2d(h, 3, 2, 0, "features.pool2");
    let h = c3.forward(b, h);
    let h = b.relu(h, "features.relu3");
    let h = c4.forward(b, h);
    let h = b.relu(h, "features.relu4");
    let h = c5.forward(b, h);
    let h = b.relu(h, "features.relu5");
    b.maxpool2d(h, 3, 2, 0, "features.pool3")
}

fn cifar_features(b: &mut GraphBuilder, x: TensorId, in_ch: usize) -> TensorId {
    let c1 = Conv2d::new(b, "features.conv1", in_ch, 64, 3, 2, 1);
    let c2 = Conv2d::new(b, "features.conv2", 64, 192, 3, 1, 1);
    let c3 = Conv2d::new(b, "features.conv3", 192, 384, 3, 1, 1);
    let c4 = Conv2d::new(b, "features.conv4", 384, 256, 3, 1, 1);
    let c5 = Conv2d::new(b, "features.conv5", 256, 256, 3, 1, 1);
    let h = c1.forward(b, x);
    let h = b.relu(h, "features.relu1");
    let h = b.maxpool2d(h, 2, 2, 0, "features.pool1");
    let h = c2.forward(b, h);
    let h = b.relu(h, "features.relu2");
    let h = b.maxpool2d(h, 2, 2, 0, "features.pool2");
    let h = c3.forward(b, h);
    let h = b.relu(h, "features.relu3");
    let h = c4.forward(b, h);
    let h = b.relu(h, "features.relu4");
    let h = c5.forward(b, h);
    let h = b.relu(h, "features.relu5");
    b.maxpool2d(h, 2, 2, 0, "features.pool3")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet_input_flattens_to_256x6x6() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [2, 3, 224, 224]);
        let logits = forward(&mut b, x, 1000);
        assert_eq!(b.shape(logits).dims(), &[2, 1000]);
        let flat = b
            .graph()
            .tensors()
            .iter()
            .find(|t| t.name == "flatten")
            .unwrap();
        assert_eq!(flat.shape.dims(), &[2, 256 * 6 * 6]);
    }

    #[test]
    fn cifar_input_uses_small_stem() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [2, 3, 32, 32]);
        let logits = forward(&mut b, x, 100);
        assert_eq!(b.shape(logits).dims(), &[2, 100]);
        let flat = b
            .graph()
            .tensors()
            .iter()
            .find(|t| t.name == "flatten")
            .unwrap();
        assert_eq!(flat.shape.dims(), &[2, 256 * 2 * 2]);
    }

    #[test]
    fn parameter_count_is_dominated_by_the_classifier() {
        // the well-known AlexNet fact: fc1 alone is ~37M of ~61M params
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 224, 224]);
        forward(&mut b, x, 1000);
        let total: usize = b
            .graph()
            .tensors()
            .iter()
            .filter(|t| t.kind == pinpoint_trace::MemoryKind::Weight)
            .map(|t| t.shape.numel())
            .sum();
        assert!(
            (55_000_000..70_000_000).contains(&total),
            "total params {total}"
        );
    }
}
