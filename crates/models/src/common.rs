//! The architecture registry and one-call training-program builder.

use crate::{alexnet, densenet, inception, lenet, mlp, mobilenet, resnet, vgg};
use pinpoint_nn::{backward, GraphBuilder, Optimizer, Program};

pub use crate::densenet::DenseNetDepth;
pub use crate::mlp::MlpConfig;
pub use crate::resnet::ResNetDepth;

/// Input image geometry (per example, NCHW without the batch dim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImageDims {
    /// Channels.
    pub channels: usize,
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
}

impl ImageDims {
    /// CIFAR-style 3×32×32.
    pub fn cifar() -> Self {
        ImageDims {
            channels: 3,
            height: 32,
            width: 32,
        }
    }

    /// ImageNet-style 3×224×224.
    pub fn imagenet() -> Self {
        ImageDims {
            channels: 3,
            height: 224,
            width: 224,
        }
    }

    /// Values per example.
    pub fn numel(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// Every architecture the reproduction evaluates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Architecture {
    /// The paper's Fig. 1 MLP (ignores image dims; uses its own feature
    /// count and class count).
    Mlp(MlpConfig),
    /// LeNet-5.
    LeNet5,
    /// AlexNet (geometry adapts to input size).
    AlexNet,
    /// VGG-16.
    Vgg16,
    /// ResNet at the given depth.
    ResNet(ResNetDepth),
    /// Inception-style multi-branch net.
    Inception,
    /// DenseNet-BC at the given depth (concatenation-heavy feature reuse).
    DenseNet(DenseNetDepth),
    /// MobileNetV1 (depthwise-separable convolutions).
    MobileNetV1,
}

impl Architecture {
    /// Display name, e.g. `"alexnet"` or `"resnet50"`.
    pub fn name(&self) -> String {
        match self {
            Architecture::Mlp(_) => "mlp".to_string(),
            Architecture::LeNet5 => "lenet5".to_string(),
            Architecture::AlexNet => "alexnet".to_string(),
            Architecture::Vgg16 => "vgg16".to_string(),
            Architecture::ResNet(d) => d.name().to_string(),
            Architecture::Inception => "inception".to_string(),
            Architecture::DenseNet(d) => d.name().to_string(),
            Architecture::MobileNetV1 => "mobilenet_v1".to_string(),
        }
    }

    /// Whether the dataflow is a straight chain (the paper's
    /// linear/non-linear distinction after Yang & Cheng [6]).
    pub fn is_linear_topology(&self) -> bool {
        matches!(
            self,
            Architecture::Mlp(_)
                | Architecture::LeNet5
                | Architecture::AlexNet
                | Architecture::Vgg16
                | Architecture::MobileNetV1
        )
    }
}

/// Builds the full training-iteration [`Program`] for an architecture:
/// forward, fused loss, autograd backward, and one optimizer step.
///
/// `image`/`classes` configure the conv nets; the MLP carries its own
/// feature and class counts in its config.
///
/// # Examples
///
/// ```
/// use pinpoint_models::{build_training_program, Architecture, ImageDims, MlpConfig};
/// use pinpoint_nn::Optimizer;
///
/// let program = build_training_program(
///     &Architecture::Mlp(MlpConfig::default()),
///     128,
///     ImageDims::cifar(),
///     100,
///     Optimizer::Sgd { lr: 0.01 },
/// );
/// assert!(program.summary().total_flops > 0);
/// ```
pub fn build_training_program(
    arch: &Architecture,
    batch: usize,
    image: ImageDims,
    classes: usize,
    opt: Optimizer,
) -> Program {
    let (graph, inputs, loss) = build_training_graph(arch, batch, image, classes, opt);
    Program::compile(graph, inputs, loss)
}

/// Data-parallel training configuration (DDP-style fused-bucket
/// all-reduce).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdpSpec {
    /// Number of replicas.
    pub world_size: usize,
    /// Gradient-fusion bucket size in bytes (PyTorch DDP default: 25 MB).
    pub bucket_bytes: usize,
    /// All-reduce interconnect bandwidth, bytes/s (e.g. PCIe ~12 GB/s
    /// effective, NVLink ~50 GB/s per direction).
    pub interconnect_bytes_per_sec: f64,
    /// The device cost model's DRAM bandwidth, used to express wire time
    /// in the cost model's units.
    pub dram_bytes_per_sec: f64,
}

impl DdpSpec {
    /// PCIe-interconnect defaults at the given world size, matched to the
    /// Titan-X-Pascal cost model.
    pub fn pcie(world_size: usize) -> Self {
        DdpSpec {
            world_size,
            bucket_bytes: 25 << 20,
            interconnect_bytes_per_sec: 12e9,
            dram_bytes_per_sec: 480e9,
        }
    }
}

/// Builds a data-parallel training program: forward, loss, backward, fused
/// per-bucket gradient all-reduce (rank-0 view; replicas are symmetric),
/// then the optimizer step.
///
/// With `world_size == 1` no all-reduce ops are emitted (the wire term is
/// zero), so the program degenerates to [`build_training_program`].
pub fn build_data_parallel_training_program(
    arch: &Architecture,
    batch: usize,
    image: ImageDims,
    classes: usize,
    opt: Optimizer,
    ddp: &DdpSpec,
) -> Program {
    let mut b = GraphBuilder::new();
    let (x, logits) = build_forward(&mut b, arch, batch, image, classes);
    let batch_of = |id| b.shape(id).dim(0);
    let y = b.labels("y", batch_of(logits));
    let (loss, _probs) = b.softmax_cross_entropy(logits, y, "loss");
    let grads = backward(&mut b, loss);
    if ddp.world_size > 1 {
        // fuse gradients into buckets in (reverse) parameter order, as DDP
        // does while the backward pass produces them
        let mut bucket: Vec<pinpoint_nn::TensorId> = Vec::new();
        let mut bucket_bytes = 0usize;
        let mut bucket_idx = 0usize;
        let flush =
            |b: &mut GraphBuilder, bucket: &mut Vec<pinpoint_nn::TensorId>, idx: &mut usize| {
                if !bucket.is_empty() {
                    b.allreduce(
                        bucket,
                        ddp.world_size,
                        ddp.interconnect_bytes_per_sec,
                        ddp.dram_bytes_per_sec,
                        &format!("ddp.allreduce{idx}", idx = *idx),
                    );
                    *idx += 1;
                    bucket.clear();
                }
            };
        for (_, &g) in grads.iter().rev() {
            bucket_bytes += b.shape(g).numel() * 4;
            bucket.push(g);
            if bucket_bytes >= ddp.bucket_bytes {
                flush(&mut b, &mut bucket, &mut bucket_idx);
                bucket_bytes = 0;
            }
        }
        flush(&mut b, &mut bucket, &mut bucket_idx);
    }
    opt.emit_step(&mut b, &grads);
    Program::compile(b.finish(), vec![x, y], loss)
}

/// Like [`build_training_program`] but returns the raw graph plus its
/// interface tensors, for callers that apply tape transformations (e.g.
/// [`pinpoint_nn::checkpoint::apply_checkpointing`]) before compiling.
pub fn build_training_graph(
    arch: &Architecture,
    batch: usize,
    image: ImageDims,
    classes: usize,
    opt: Optimizer,
) -> (
    pinpoint_nn::Graph,
    Vec<pinpoint_nn::TensorId>,
    pinpoint_nn::TensorId,
) {
    let mut b = GraphBuilder::new();
    let (x, logits) = build_forward(&mut b, arch, batch, image, classes);
    let batch_of = |id| b.shape(id).dim(0);
    let y = b.labels("y", batch_of(logits));
    let (loss, _probs) = b.softmax_cross_entropy(logits, y, "loss");
    let grads = backward(&mut b, loss);
    opt.emit_step(&mut b, &grads);
    (b.finish(), vec![x, y], loss)
}

/// Builds a **forward-only** program: the same architecture, no loss, no
/// backward, no optimizer; the logits are fetched back to the host.
///
/// This is the forward slice of the training iteration — since nothing is
/// kept for a backward pass, activations die at their last forward use, so
/// the footprint gap to [`build_training_program`] measures exactly what
/// training's saved intermediates cost. (Layers stay in training mode:
/// batch-norm uses batch statistics and dropout still allocates its mask,
/// so this is a memory model of inference, not a numerics-exact eval mode.)
pub fn build_forward_program(
    arch: &Architecture,
    batch: usize,
    image: ImageDims,
    classes: usize,
) -> Program {
    let mut b = GraphBuilder::new();
    let (x, logits) = build_forward(&mut b, arch, batch, image, classes);
    Program::compile(b.finish(), vec![x], logits)
}

fn build_forward(
    b: &mut GraphBuilder,
    arch: &Architecture,
    batch: usize,
    image: ImageDims,
    classes: usize,
) -> (pinpoint_nn::TensorId, pinpoint_nn::TensorId) {
    match arch {
        Architecture::Mlp(cfg) => {
            let x = b.input("x", [batch, cfg.in_features]);
            let logits = mlp::forward(b, x, cfg);
            (x, logits)
        }
        _ => {
            let x = b.input("x", [batch, image.channels, image.height, image.width]);
            let logits = match arch {
                Architecture::LeNet5 => lenet::forward(b, x, classes),
                Architecture::AlexNet => alexnet::forward(b, x, classes),
                Architecture::Vgg16 => vgg::forward(b, x, classes),
                Architecture::ResNet(d) => resnet::forward(b, x, *d, classes),
                Architecture::Inception => inception::forward(b, x, classes),
                Architecture::DenseNet(d) => densenet::forward(b, x, *d, classes),
                Architecture::MobileNetV1 => mobilenet::forward(b, x, classes),
                Architecture::Mlp(_) => unreachable!(),
            };
            (x, logits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_architecture_compiles_to_a_program() {
        let archs = [
            Architecture::Mlp(MlpConfig::default()),
            Architecture::LeNet5,
            Architecture::AlexNet,
            Architecture::Vgg16,
            Architecture::ResNet(ResNetDepth::R18),
            Architecture::Inception,
        ];
        for arch in archs {
            let p = build_training_program(
                &arch,
                4,
                ImageDims::cifar(),
                100,
                Optimizer::Sgd { lr: 0.1 },
            );
            assert!(
                p.summary().num_ops > 0,
                "{} produced an empty program",
                arch.name()
            );
            assert!(!p.params().is_empty(), "{} has no params", arch.name());
        }
    }

    #[test]
    fn topology_classification_matches_the_paper() {
        assert!(Architecture::AlexNet.is_linear_topology());
        assert!(Architecture::Vgg16.is_linear_topology());
        assert!(!Architecture::ResNet(ResNetDepth::R50).is_linear_topology());
        assert!(!Architecture::Inception.is_linear_topology());
    }

    #[test]
    fn momentum_optimizer_adds_state_bytes() {
        let arch = Architecture::LeNet5;
        let plain =
            build_training_program(&arch, 4, ImageDims::cifar(), 10, Optimizer::Sgd { lr: 0.1 });
        let with_momentum = build_training_program(
            &arch,
            4,
            ImageDims::cifar(),
            10,
            Optimizer::SgdMomentum { lr: 0.1, mu: 0.9 },
        );
        assert_eq!(plain.summary().optimizer_state_bytes, 0);
        assert_eq!(
            with_momentum.summary().optimizer_state_bytes,
            with_momentum.summary().weight_bytes
        );
    }

    #[test]
    fn ddp_world_one_emits_no_allreduce() {
        let p = build_data_parallel_training_program(
            &Architecture::LeNet5,
            4,
            ImageDims::cifar(),
            10,
            Optimizer::Sgd { lr: 0.1 },
            &DdpSpec::pcie(1),
        );
        assert!(!p
            .graph()
            .ops()
            .iter()
            .any(|o| matches!(o.kind, pinpoint_nn::OpKind::AllReduce { .. })));
    }

    #[test]
    fn ddp_buckets_cover_every_gradient_once() {
        let ddp = DdpSpec {
            bucket_bytes: 64 << 10, // small buckets → several all-reduces
            ..DdpSpec::pcie(4)
        };
        let p = build_data_parallel_training_program(
            &Architecture::LeNet5,
            4,
            ImageDims::cifar(),
            10,
            Optimizer::Sgd { lr: 0.1 },
            &ddp,
        );
        let allreduces: Vec<_> = p
            .graph()
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, pinpoint_nn::OpKind::AllReduce { .. }))
            .collect();
        assert!(allreduces.len() >= 2, "LeNet grads should span buckets");
        let bucketed: usize = allreduces.iter().map(|o| o.inputs.len()).sum();
        // every parameter's gradient is reduced exactly once
        assert_eq!(bucketed, p.params().len());
        // all-reduce happens before any optimizer step
        let first_step = p
            .graph()
            .ops()
            .iter()
            .position(|o| matches!(o.kind, pinpoint_nn::OpKind::SgdStep { .. }))
            .unwrap();
        let last_ar = p
            .graph()
            .ops()
            .iter()
            .rposition(|o| matches!(o.kind, pinpoint_nn::OpKind::AllReduce { .. }))
            .unwrap();
        assert!(last_ar < first_step);
    }

    #[test]
    fn bigger_batch_multiplies_activation_bytes() {
        let arch = Architecture::AlexNet;
        let p32 = build_training_program(
            &arch,
            32,
            ImageDims::cifar(),
            100,
            Optimizer::Sgd { lr: 0.1 },
        );
        let p256 = build_training_program(
            &arch,
            256,
            ImageDims::cifar(),
            100,
            Optimizer::Sgd { lr: 0.1 },
        );
        let (a32, a256) = (
            p32.summary().activation_bytes,
            p256.summary().activation_bytes,
        );
        let ratio = a256 as f64 / a32 as f64;
        assert!((7.0..9.0).contains(&ratio), "ratio {ratio}");
        // while weights are batch-independent
        assert_eq!(p32.summary().weight_bytes, p256.summary().weight_bytes);
    }
}
