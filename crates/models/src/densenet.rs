//! DenseNet (Huang et al.) — the concatenation-heavy architecture whose
//! feature reuse makes it the classic *memory* stressor: every layer's
//! output stays live until the end of its dense block, because all later
//! layers concatenate it. Exactly the long-lived-intermediate behavior the
//! paper's breakdown figures quantify.

use pinpoint_nn::layers::{BatchNorm2d, Conv2d, Linear};
use pinpoint_nn::{GraphBuilder, TensorId};

/// Supported DenseNet depths (growth rate 32, BC variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DenseNetDepth {
    /// DenseNet-121: blocks `[6, 12, 24, 16]`.
    D121,
    /// DenseNet-169: blocks `[6, 12, 32, 32]`.
    D169,
}

impl DenseNetDepth {
    /// Layers per dense block.
    pub fn blocks(self) -> [usize; 4] {
        match self {
            DenseNetDepth::D121 => [6, 12, 24, 16],
            DenseNetDepth::D169 => [6, 12, 32, 32],
        }
    }

    /// Conventional name, e.g. `"densenet121"`.
    pub fn name(self) -> &'static str {
        match self {
            DenseNetDepth::D121 => "densenet121",
            DenseNetDepth::D169 => "densenet169",
        }
    }
}

const GROWTH: usize = 32;

#[allow(clippy::too_many_arguments)]
fn bn_relu_conv(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> TensorId {
    let bn = BatchNorm2d::new(b, &format!("{name}.bn"), in_ch);
    let conv = Conv2d::new(b, &format!("{name}.conv"), in_ch, out_ch, k, stride, pad);
    let h = bn.forward(b, x);
    let h = b.relu(h, &format!("{name}.relu"));
    conv.forward(b, h)
}

/// One dense layer: BN-ReLU-1×1 (bottleneck to 4·growth) then
/// BN-ReLU-3×3 (growth channels), concatenated onto the running features.
fn dense_layer(
    b: &mut GraphBuilder,
    name: &str,
    features: TensorId,
    in_ch: usize,
) -> (TensorId, usize) {
    let bottleneck = bn_relu_conv(
        b,
        &format!("{name}.1"),
        features,
        in_ch,
        4 * GROWTH,
        1,
        1,
        0,
    );
    let new = bn_relu_conv(
        b,
        &format!("{name}.2"),
        bottleneck,
        4 * GROWTH,
        GROWTH,
        3,
        1,
        1,
    );
    let out = b.concat_channels(&[features, new], &format!("{name}.cat"));
    (out, in_ch + GROWTH)
}

/// Transition: BN-ReLU-1×1 halving channels, then 2×2 average pool.
fn transition(b: &mut GraphBuilder, name: &str, x: TensorId, in_ch: usize) -> (TensorId, usize) {
    let out_ch = in_ch / 2;
    let h = bn_relu_conv(b, name, x, in_ch, out_ch, 1, 1, 0);
    let h = b.avgpool2d(h, 2, 2, 0, &format!("{name}.pool"));
    (h, out_ch)
}

/// Emits the DenseNet-BC forward graph for NCHW input, returning logits.
pub fn forward(
    b: &mut GraphBuilder,
    x: TensorId,
    depth: DenseNetDepth,
    classes: usize,
) -> TensorId {
    let in_ch = b.shape(x).dim(1);
    let mut h = {
        let conv = Conv2d::new(b, "stem.conv", in_ch, 64, 7, 2, 3);
        let bn = BatchNorm2d::new(b, "stem.bn", 64);
        let h = conv.forward(b, x);
        let h = bn.forward(b, h);
        b.relu(h, "stem.relu")
    };
    h = b.maxpool2d(h, 3, 2, 1, "stem.pool");
    let mut ch = 64usize;
    let blocks = depth.blocks();
    for (bi, &layers) in blocks.iter().enumerate() {
        for li in 0..layers {
            let (out, c) = dense_layer(b, &format!("block{}.layer{}", bi + 1, li), h, ch);
            h = out;
            ch = c;
        }
        if bi + 1 < blocks.len() {
            let (out, c) = transition(b, &format!("trans{}", bi + 1), h, ch);
            h = out;
            ch = c;
        }
    }
    let bn = BatchNorm2d::new(b, "final.bn", ch);
    h = bn.forward(b, h);
    h = b.relu(h, "final.relu");
    let h = b.global_avgpool(h, "gap");
    let fc = Linear::new(b, "fc", ch, classes, true);
    fc.forward(b, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_nn::OpKind;

    #[test]
    fn densenet121_channel_arithmetic() {
        // after block 1: 64 + 6·32 = 256; transition halves to 128; etc.
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 64, 64]);
        forward(&mut b, x, DenseNetDepth::D121, 10);
        let ch_of = |name: &str| {
            b.graph()
                .tensors()
                .iter()
                .find(|t| t.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .shape
                .dim(1)
        };
        assert_eq!(ch_of("block1.layer5.cat.out"), 256);
        assert_eq!(ch_of("trans1.pool.out"), 128);
        assert_eq!(ch_of("block2.layer11.cat.out"), 128 + 12 * 32);
        // final features of DenseNet-121: 1024 channels
        assert_eq!(ch_of("block4.layer15.cat.out"), 1024);
    }

    #[test]
    fn one_concat_per_dense_layer() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 64, 64]);
        forward(&mut b, x, DenseNetDepth::D121, 10);
        let concats = b
            .graph()
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::ConcatChannels { .. }))
            .count();
        assert_eq!(concats, 6 + 12 + 24 + 16);
    }

    #[test]
    fn parameter_count_is_densenet_scale() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 224, 224]);
        forward(&mut b, x, DenseNetDepth::D121, 1000);
        let params: usize = b
            .graph()
            .tensors()
            .iter()
            .filter(|t| t.kind == pinpoint_trace::MemoryKind::Weight)
            .map(|t| t.shape.numel())
            .sum();
        // DenseNet-121 ≈ 8M params
        assert!((6_000_000..10_000_000).contains(&params), "{params}");
    }

    #[test]
    fn logits_shape() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [2, 3, 32, 32]);
        let logits = forward(&mut b, x, DenseNetDepth::D169, 100);
        assert_eq!(b.shape(logits).dims(), &[2, 100]);
    }
}
