//! GoogLeNet-style Inception network with true channel concatenation.
//!
//! The paper's introduction motivates memory pressure with the Inception
//! family (Inception-V4 "requests up to 45 GB of device memory" [6]); this
//! model reproduces the family's memory-relevant structure: four parallel
//! branches per block (1×1, 1×1→3×3, 1×1→double-3×3, pool→1×1) whose
//! outputs are all live simultaneously until the channel concat. Widths
//! follow GoogLeNet (Szegedy et al.); the 5×5 branch uses the standard
//! double-3×3 factorization.

use pinpoint_nn::layers::{Conv2d, Linear};
use pinpoint_nn::{GraphBuilder, TensorId};

#[allow(clippy::too_many_arguments)]
fn conv_relu(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> TensorId {
    let conv = Conv2d::new(b, &format!("{name}.conv"), in_ch, out_ch, k, stride, pad);
    let h = conv.forward(b, x);
    b.relu(h, &format!("{name}.relu"))
}

/// Widths of one inception block: `(b1, b3_reduce, b3, b5_reduce, b5,
/// pool_proj)`. Output channels = `b1 + b3 + b5 + pool_proj`.
type BlockWidths = (usize, usize, usize, usize, usize, usize);

fn inception_block(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    in_ch: usize,
    w: BlockWidths,
) -> (TensorId, usize) {
    let (b1, b3r, b3, b5r, b5, pp) = w;
    let branch1 = conv_relu(b, &format!("{name}.b1"), x, in_ch, b1, 1, 1, 0);
    let branch3 = {
        let r = conv_relu(b, &format!("{name}.b3.reduce"), x, in_ch, b3r, 1, 1, 0);
        conv_relu(b, &format!("{name}.b3"), r, b3r, b3, 3, 1, 1)
    };
    let branch5 = {
        let r = conv_relu(b, &format!("{name}.b5.reduce"), x, in_ch, b5r, 1, 1, 0);
        let m = conv_relu(b, &format!("{name}.b5.a"), r, b5r, b5, 3, 1, 1);
        conv_relu(b, &format!("{name}.b5.b"), m, b5, b5, 3, 1, 1)
    };
    let branch_pool = {
        let p = b.maxpool2d(x, 3, 1, 1, &format!("{name}.pool"));
        conv_relu(b, &format!("{name}.pool_proj"), p, in_ch, pp, 1, 1, 0)
    };
    let out = b.concat_channels(
        &[branch1, branch3, branch5, branch_pool],
        &format!("{name}.concat"),
    );
    (out, b1 + b3 + b5 + pp)
}

/// GoogLeNet's nine inception blocks, grouped by stage.
const STAGE3: [BlockWidths; 2] = [(64, 96, 128, 16, 32, 32), (128, 128, 192, 32, 96, 64)];
const STAGE4: [BlockWidths; 5] = [
    (192, 96, 208, 16, 48, 64),
    (160, 112, 224, 24, 64, 64),
    (128, 128, 256, 24, 64, 64),
    (112, 144, 288, 32, 64, 64),
    (256, 160, 320, 32, 128, 128),
];
const STAGE5: [BlockWidths; 2] = [(256, 160, 320, 32, 128, 128), (384, 192, 384, 48, 128, 128)];

/// Emits the GoogLeNet-style forward graph, returning logits.
pub fn forward(b: &mut GraphBuilder, x: TensorId, classes: usize) -> TensorId {
    let in_ch = b.shape(x).dim(1);
    let mut h = conv_relu(b, "stem.1", x, in_ch, 64, 7, 2, 3);
    h = b.maxpool2d(h, 3, 2, 1, "stem.pool1");
    h = conv_relu(b, "stem.2", h, 64, 64, 1, 1, 0);
    h = conv_relu(b, "stem.3", h, 64, 192, 3, 1, 1);
    h = b.maxpool2d(h, 3, 2, 1, "stem.pool2");
    let mut ch = 192usize;
    for (i, &w) in STAGE3.iter().enumerate() {
        let (out, c) = inception_block(b, &format!("inc3{}", (b'a' + i as u8) as char), h, ch, w);
        h = out;
        ch = c;
    }
    h = b.maxpool2d(h, 3, 2, 1, "pool3");
    for (i, &w) in STAGE4.iter().enumerate() {
        let (out, c) = inception_block(b, &format!("inc4{}", (b'a' + i as u8) as char), h, ch, w);
        h = out;
        ch = c;
    }
    h = b.maxpool2d(h, 3, 2, 1, "pool4");
    for (i, &w) in STAGE5.iter().enumerate() {
        let (out, c) = inception_block(b, &format!("inc5{}", (b'a' + i as u8) as char), h, ch, w);
        h = out;
        ch = c;
    }
    let h = b.global_avgpool(h, "gap");
    let fc = Linear::new(b, "fc", ch, classes, true);
    fc.forward(b, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_nn::OpKind;

    #[test]
    fn produces_logits_for_both_input_sizes() {
        for (hw, classes) in [(32usize, 100usize), (224, 1000)] {
            let mut b = GraphBuilder::new();
            let x = b.input("x", [2, 3, hw, hw]);
            let logits = forward(&mut b, x, classes);
            assert_eq!(b.shape(logits).dims(), &[2, classes]);
        }
    }

    #[test]
    fn nine_blocks_each_concat_four_branches() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 64, 64]);
        forward(&mut b, x, 10);
        let concats: Vec<_> = b
            .graph()
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::ConcatChannels { .. }))
            .collect();
        assert_eq!(concats.len(), 9);
        for c in concats {
            assert_eq!(c.inputs.len(), 4, "four branches per block");
        }
    }

    #[test]
    fn stage_output_channels_match_googlenet() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 224, 224]);
        forward(&mut b, x, 1000);
        let out_of = |name: &str| {
            b.graph()
                .tensors()
                .iter()
                .find(|t| t.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .shape
                .dim(1)
        };
        assert_eq!(out_of("inc3a.concat.out"), 256);
        assert_eq!(out_of("inc3b.concat.out"), 480);
        assert_eq!(out_of("inc4e.concat.out"), 832);
        assert_eq!(out_of("inc5b.concat.out"), 1024);
    }

    #[test]
    fn parameter_count_is_googlenet_scale() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 224, 224]);
        forward(&mut b, x, 1000);
        let params: usize = b
            .graph()
            .tensors()
            .iter()
            .filter(|t| t.kind == pinpoint_trace::MemoryKind::Weight)
            .map(|t| t.shape.numel())
            .sum();
        // GoogLeNet ≈ 6-7M params; double-3×3 factorization adds some
        assert!((5_000_000..12_000_000).contains(&params), "{params}");
    }
}
