//! LeNet-5 (the classical small CNN, after LeCun et al. [12] — the source
//! of the paper's three-way memory taxonomy).

use pinpoint_nn::layers::{Conv2d, Linear};
use pinpoint_nn::{GraphBuilder, TensorId};

/// Emits the LeNet-5 forward graph for NCHW input, returning logits.
///
/// Works for any input ≥ 16×16 (two 5×5 convs with 2×2 pools); the
/// classifier adapts to the flattened size.
pub fn forward(b: &mut GraphBuilder, x: TensorId, classes: usize) -> TensorId {
    let in_ch = b.shape(x).dim(1);
    let c1 = Conv2d::new(b, "conv1", in_ch, 6, 5, 1, 2);
    let c2 = Conv2d::new(b, "conv2", 6, 16, 5, 1, 0);
    let h = c1.forward(b, x);
    let h = b.relu(h, "relu1");
    let h = b.maxpool2d(h, 2, 2, 0, "pool1");
    let h = c2.forward(b, h);
    let h = b.relu(h, "relu2");
    let h = b.maxpool2d(h, 2, 2, 0, "pool2");
    let h = b.flatten(h, "flatten");
    let flat = b.shape(h).dim(1);
    let fc1 = Linear::new(b, "fc1", flat, 120, true);
    let fc2 = Linear::new(b, "fc2", 120, 84, true);
    let fc3 = Linear::new(b, "fc3", 84, classes, true);
    let h = fc1.forward(b, h);
    let h = b.relu(h, "relu3");
    let h = fc2.forward(b, h);
    let h = b.relu(h, "relu4");
    fc3.forward(b, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_32x32_shapes() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 1, 32, 32]);
        let logits = forward(&mut b, x, 10);
        assert_eq!(b.shape(logits).dims(), &[4, 10]);
        // conv2 output: 16 x 6 x 6 after pools → flatten 576
        let flat = b
            .graph()
            .tensors()
            .iter()
            .find(|t| t.name == "flatten")
            .unwrap();
        assert_eq!(flat.shape.dims(), &[4, 16 * 6 * 6]);
    }

    #[test]
    fn rgb_input_accepted() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [2, 3, 28, 28]);
        let logits = forward(&mut b, x, 100);
        assert_eq!(b.shape(logits).dims(), &[2, 100]);
    }
}
