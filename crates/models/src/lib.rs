//! # pinpoint-models
//!
//! The model zoo for the `pinpoint` reproduction of *"Pinpointing the
//! Memory Behaviors of DNN Training"* (ISPASS 2021): every architecture the
//! paper characterizes, expressed over the `pinpoint-nn` graph builder.
//!
//! * [`mlp`] — the paper's Fig. 1 MLP (`W0: 2×12288`, `W1: 12288×2`);
//! * [`lenet`] — LeNet-5;
//! * [`alexnet`] — AlexNet (Fig. 6's "linear" DNN; ImageNet and CIFAR
//!   geometries);
//! * [`vgg`] — VGG-16;
//! * [`resnet`] — ResNet-18/34/50/101/152 (Fig. 7's "non-linear" DNNs);
//! * [`inception`] — a GoogLeNet-style Inception net (true concat);
//! * [`densenet`] — DenseNet-BC 121/169 (concatenation-heavy feature reuse);
//! * [`mobilenet`] — MobileNetV1 (depthwise-separable convolutions).
//!
//! [`build_training_program`] assembles a complete training iteration
//! (forward + loss + backward + optimizer step) for any [`Architecture`].
//!
//! # Examples
//!
//! ```
//! use pinpoint_models::{build_training_program, Architecture, ImageDims, ResNetDepth};
//! use pinpoint_nn::Optimizer;
//!
//! let program = build_training_program(
//!     &Architecture::ResNet(ResNetDepth::R50),
//!     32,
//!     ImageDims::cifar(),
//!     100,
//!     Optimizer::SgdMomentum { lr: 0.1, mu: 0.9 },
//! );
//! // bottleneck ResNet-50: ~23.5M backbone parameters
//! let params = program.summary().weight_bytes / 4;
//! assert!(params > 20_000_000 && params < 30_000_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alexnet;
mod common;
pub mod densenet;
pub mod inception;
pub mod lenet;
pub mod mlp;
pub mod mobilenet;
pub mod resnet;
pub mod vgg;

pub use common::{
    build_data_parallel_training_program, build_forward_program, build_training_graph,
    build_training_program, Architecture, DdpSpec, DenseNetDepth, ImageDims, MlpConfig,
    ResNetDepth,
};
