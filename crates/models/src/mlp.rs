//! The paper's Fig. 1 MLP.
//!
//! Topology: `x → (★ W0) → (+ b0) → f → (★ W1) → (+ b1) → softmax-xent`,
//! where ★ is `mat_mul`, + is `add_bias`, and f is ReLU. The paper's
//! shapes: `W0: (2, 12288)`, `b0: (12288)`, `W1: (12288, 2)`, `b1: (2)`.

use pinpoint_nn::layers::Linear;
use pinpoint_nn::{GraphBuilder, TensorId};

/// Configuration of the Fig. 1 MLP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlpConfig {
    /// Input feature count (the paper uses 2).
    pub in_features: usize,
    /// Hidden width (the paper uses 12288).
    pub hidden: usize,
    /// Output classes (the paper uses 2).
    pub classes: usize,
}

impl Default for MlpConfig {
    /// The paper's exact Fig. 1 shapes.
    fn default() -> Self {
        MlpConfig {
            in_features: 2,
            hidden: 12288,
            classes: 2,
        }
    }
}

/// Emits the MLP forward graph, returning the logits.
pub fn forward(b: &mut GraphBuilder, x: TensorId, cfg: &MlpConfig) -> TensorId {
    let fc0 = Linear::new(b, "fc0", cfg.in_features, cfg.hidden, true);
    let fc1 = Linear::new(b, "fc1", cfg.hidden, cfg.classes, true);
    let h = fc0.forward(b, x);
    let h = b.relu(h, "relu0");
    fc1.forward(b, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shapes_by_default() {
        let cfg = MlpConfig::default();
        assert_eq!((cfg.in_features, cfg.hidden, cfg.classes), (2, 12288, 2));
    }

    #[test]
    fn forward_produces_class_logits() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [128, 2]);
        let cfg = MlpConfig::default();
        let logits = forward(&mut b, x, &cfg);
        assert_eq!(b.shape(logits).dims(), &[128, 2]);
        // fc0 matmul, bias, relu, fc1 matmul, bias
        assert_eq!(b.graph().ops().len(), 5);
    }
}
