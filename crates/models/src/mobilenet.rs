//! MobileNetV1 (Howard et al.) — the depthwise-separable family: every
//! block is a depthwise 3×3 (one filter per channel) followed by a
//! pointwise 1×1, each with batch-norm and ReLU. Memory-wise it trades the
//! dense conv's big weight tensors for *more* intermediate activations —
//! another data point for the paper's breakdown figures.

use pinpoint_nn::layers::{BatchNorm2d, Conv2d, DepthwiseConv2d, Linear};
use pinpoint_nn::{GraphBuilder, TensorId};

/// `(output channels, stride)` of the 13 separable blocks.
const BLOCKS: [(usize, usize); 13] = [
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
];

fn bn_relu(b: &mut GraphBuilder, name: &str, x: TensorId, ch: usize) -> TensorId {
    let bn = BatchNorm2d::new(b, &format!("{name}.bn"), ch);
    let h = bn.forward(b, x);
    b.relu(h, &format!("{name}.relu"))
}

/// Emits the MobileNetV1 forward graph for NCHW input, returning logits.
pub fn forward(b: &mut GraphBuilder, x: TensorId, classes: usize) -> TensorId {
    let in_ch = b.shape(x).dim(1);
    let stem = Conv2d::new(b, "stem.conv", in_ch, 32, 3, 2, 1);
    let mut h = stem.forward(b, x);
    h = bn_relu(b, "stem", h, 32);
    let mut ch = 32usize;
    for (i, &(out_ch, stride)) in BLOCKS.iter().enumerate() {
        let dw = DepthwiseConv2d::new(b, &format!("block{i}.dw"), ch, 3, stride, 1);
        h = dw.forward(b, h);
        h = bn_relu(b, &format!("block{i}.dw"), h, ch);
        let pw = Conv2d::new(b, &format!("block{i}.pw"), ch, out_ch, 1, 1, 0);
        h = pw.forward(b, h);
        h = bn_relu(b, &format!("block{i}.pw"), h, out_ch);
        ch = out_ch;
    }
    let h = b.global_avgpool(h, "gap");
    let fc = Linear::new(b, "fc", ch, classes, true);
    fc.forward(b, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_nn::OpKind;

    #[test]
    fn logits_shape_for_both_geometries() {
        for (hw, classes) in [(224usize, 1000usize), (32, 100)] {
            let mut b = GraphBuilder::new();
            let x = b.input("x", [2, 3, hw, hw]);
            let logits = forward(&mut b, x, classes);
            assert_eq!(b.shape(logits).dims(), &[2, classes]);
        }
    }

    #[test]
    fn thirteen_depthwise_blocks() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 224, 224]);
        forward(&mut b, x, 1000);
        let dw = b
            .graph()
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::DepthwiseConv2d(_)))
            .count();
        assert_eq!(dw, 13);
    }

    #[test]
    fn parameter_count_is_mobilenet_scale() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 224, 224]);
        forward(&mut b, x, 1000);
        let params: usize = b
            .graph()
            .tensors()
            .iter()
            .filter(|t| t.kind == pinpoint_trace::MemoryKind::Weight)
            .map(|t| t.shape.numel())
            .sum();
        // MobileNetV1 ≈ 4.2M params
        assert!((3_500_000..5_000_000).contains(&params), "{params}");
    }

    #[test]
    fn spatial_dims_shrink_to_7x7_on_imagenet() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 224, 224]);
        forward(&mut b, x, 1000);
        let last = b
            .graph()
            .tensors()
            .iter()
            .find(|t| t.name == "block12.pw.relu.out")
            .unwrap();
        assert_eq!(last.shape.dims(), &[1, 1024, 7, 7]);
    }
}
