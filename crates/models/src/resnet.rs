//! ResNet-18/34/50/101/152 — the paper's "non-linear" (branchy) DNN for
//! Fig. 7, with basic blocks (18/34) and bottleneck blocks (50/101/152).

use pinpoint_nn::layers::{BatchNorm2d, Conv2d, Linear};
use pinpoint_nn::{GraphBuilder, TensorId};

/// Supported ResNet depths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResNetDepth {
    /// 18 layers, basic blocks `[2, 2, 2, 2]`.
    R18,
    /// 34 layers, basic blocks `[3, 4, 6, 3]`.
    R34,
    /// 50 layers, bottleneck blocks `[3, 4, 6, 3]`.
    R50,
    /// 101 layers, bottleneck blocks `[3, 4, 23, 3]`.
    R101,
    /// 152 layers, bottleneck blocks `[3, 8, 36, 3]`.
    R152,
}

impl ResNetDepth {
    /// All depths the paper's Fig. 7 sweeps.
    pub const ALL: [ResNetDepth; 5] = [
        ResNetDepth::R18,
        ResNetDepth::R34,
        ResNetDepth::R50,
        ResNetDepth::R101,
        ResNetDepth::R152,
    ];

    /// Blocks per stage.
    pub fn blocks(self) -> [usize; 4] {
        match self {
            ResNetDepth::R18 => [2, 2, 2, 2],
            ResNetDepth::R34 => [3, 4, 6, 3],
            ResNetDepth::R50 => [3, 4, 6, 3],
            ResNetDepth::R101 => [3, 4, 23, 3],
            ResNetDepth::R152 => [3, 8, 36, 3],
        }
    }

    /// Whether stages use bottleneck (1×1 → 3×3 → 1×1) blocks.
    pub fn bottleneck(self) -> bool {
        matches!(
            self,
            ResNetDepth::R50 | ResNetDepth::R101 | ResNetDepth::R152
        )
    }

    /// Channel expansion of the block output (1 basic, 4 bottleneck).
    pub fn expansion(self) -> usize {
        if self.bottleneck() {
            4
        } else {
            1
        }
    }

    /// The conventional layer-count name, e.g. `"resnet50"`.
    pub fn name(self) -> &'static str {
        match self {
            ResNetDepth::R18 => "resnet18",
            ResNetDepth::R34 => "resnet34",
            ResNetDepth::R50 => "resnet50",
            ResNetDepth::R101 => "resnet101",
            ResNetDepth::R152 => "resnet152",
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn conv_bn(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> TensorId {
    let conv = Conv2d::new(b, &format!("{name}.conv"), in_ch, out_ch, k, stride, pad);
    let bn = BatchNorm2d::new(b, &format!("{name}.bn"), out_ch);
    let h = conv.forward(b, x);
    bn.forward(b, h)
}

fn basic_block(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
) -> TensorId {
    let h = conv_bn(b, &format!("{name}.1"), x, in_ch, out_ch, 3, stride, 1);
    let h = b.relu(h, &format!("{name}.relu1"));
    let h = conv_bn(b, &format!("{name}.2"), h, out_ch, out_ch, 3, 1, 1);
    let skip = if stride != 1 || in_ch != out_ch {
        conv_bn(b, &format!("{name}.down"), x, in_ch, out_ch, 1, stride, 0)
    } else {
        x
    };
    let h = b.add(h, skip, &format!("{name}.add"));
    b.relu(h, &format!("{name}.relu2"))
}

fn bottleneck_block(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    in_ch: usize,
    mid_ch: usize,
    stride: usize,
) -> TensorId {
    let out_ch = mid_ch * 4;
    let h = conv_bn(b, &format!("{name}.1"), x, in_ch, mid_ch, 1, 1, 0);
    let h = b.relu(h, &format!("{name}.relu1"));
    let h = conv_bn(b, &format!("{name}.2"), h, mid_ch, mid_ch, 3, stride, 1);
    let h = b.relu(h, &format!("{name}.relu2"));
    let h = conv_bn(b, &format!("{name}.3"), h, mid_ch, out_ch, 1, 1, 0);
    let skip = if stride != 1 || in_ch != out_ch {
        conv_bn(b, &format!("{name}.down"), x, in_ch, out_ch, 1, stride, 0)
    } else {
        x
    };
    let h = b.add(h, skip, &format!("{name}.add"));
    b.relu(h, &format!("{name}.relu3"))
}

/// Emits the ResNet forward graph for NCHW input, returning logits.
///
/// Uses the ImageNet stem (7×7 stride-2 conv + 3×3 stride-2 max-pool); it
/// also accepts 32×32 inputs (spatial dims bottom out at 1×1).
pub fn forward(b: &mut GraphBuilder, x: TensorId, depth: ResNetDepth, classes: usize) -> TensorId {
    let in_ch = b.shape(x).dim(1);
    let mut h = conv_bn(b, "stem", x, in_ch, 64, 7, 2, 3);
    h = b.relu(h, "stem.relu");
    h = b.maxpool2d(h, 3, 2, 1, "stem.pool");
    let widths = [64usize, 128, 256, 512];
    let mut ch = 64usize;
    for (stage, (&width, &blocks)) in widths.iter().zip(depth.blocks().iter()).enumerate() {
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let name = format!("layer{}.block{}", stage + 1, blk);
            if depth.bottleneck() {
                h = bottleneck_block(b, &name, h, ch, width, stride);
                ch = width * 4;
            } else {
                h = basic_block(b, &name, h, ch, width, stride);
                ch = width;
            }
        }
    }
    let h = b.global_avgpool(h, "gap");
    let fc = Linear::new(b, "fc", ch, classes, true);
    fc.forward(b, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_nn::OpKind;

    fn conv_count(depth: ResNetDepth) -> usize {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 64, 64]);
        forward(&mut b, x, depth, 10);
        b.graph()
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Conv2d(_)))
            .count()
    }

    #[test]
    fn depth_names_and_blocks() {
        assert_eq!(ResNetDepth::R50.name(), "resnet50");
        assert_eq!(ResNetDepth::R152.blocks(), [3, 8, 36, 3]);
        assert!(!ResNetDepth::R34.bottleneck());
        assert_eq!(ResNetDepth::R101.expansion(), 4);
    }

    #[test]
    fn resnet18_has_twenty_convs() {
        // 1 stem + 16 block convs + 3 downsample convs
        assert_eq!(conv_count(ResNetDepth::R18), 20);
    }

    #[test]
    fn resnet50_has_fifty_three_convs() {
        // 1 stem + 48 block convs + 4 downsample convs
        assert_eq!(conv_count(ResNetDepth::R50), 53);
    }

    #[test]
    fn logits_shape_for_imagenet_and_cifar() {
        for (hw, classes) in [(224, 1000), (32, 100)] {
            let mut b = GraphBuilder::new();
            let x = b.input("x", [2, 3, hw, hw]);
            let logits = forward(&mut b, x, ResNetDepth::R18, classes);
            assert_eq!(b.shape(logits).dims(), &[2, classes]);
        }
    }

    #[test]
    fn deeper_resnets_have_more_params() {
        let params = |d: ResNetDepth| -> usize {
            let mut b = GraphBuilder::new();
            let x = b.input("x", [1, 3, 32, 32]);
            forward(&mut b, x, d, 100);
            b.graph()
                .tensors()
                .iter()
                .filter(|t| t.kind == pinpoint_trace::MemoryKind::Weight)
                .map(|t| t.shape.numel())
                .sum()
        };
        let (p18, p34, p50, p101, p152) = (
            params(ResNetDepth::R18),
            params(ResNetDepth::R34),
            params(ResNetDepth::R50),
            params(ResNetDepth::R101),
            params(ResNetDepth::R152),
        );
        assert!(p18 < p34 && p34 < p50 && p50 < p101 && p101 < p152);
        // resnet18 ≈ 11M backbone params
        assert!((10_000_000..13_000_000).contains(&p18), "p18 = {p18}");
        // resnet152 ≈ 58-60M
        assert!((55_000_000..65_000_000).contains(&p152), "p152 = {p152}");
    }
}
