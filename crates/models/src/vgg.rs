//! VGG-16 — a deep "linear" (straight-chain) DNN with heavy activations.

use pinpoint_nn::layers::{Conv2d, Linear};
use pinpoint_nn::{GraphBuilder, TensorId};

/// The VGG-16 configuration: channel widths between 2×2 max-pools.
const STAGES: [&[usize]; 5] = [
    &[64, 64],
    &[128, 128],
    &[256, 256, 256],
    &[512, 512, 512],
    &[512, 512, 512],
];

/// Emits the VGG-16 forward graph for NCHW input, returning logits.
///
/// Works for 32×32 (five pools → 1×1) up to 224×224 (→ 7×7).
pub fn forward(b: &mut GraphBuilder, x: TensorId, classes: usize) -> TensorId {
    let mut in_ch = b.shape(x).dim(1);
    let mut h = x;
    for (si, widths) in STAGES.iter().enumerate() {
        for (ci, &out_ch) in widths.iter().enumerate() {
            let conv = Conv2d::new(
                b,
                &format!("features.s{si}.conv{ci}"),
                in_ch,
                out_ch,
                3,
                1,
                1,
            );
            h = conv.forward(b, h);
            h = b.relu(h, &format!("features.s{si}.relu{ci}"));
            in_ch = out_ch;
        }
        h = b.maxpool2d(h, 2, 2, 0, &format!("features.s{si}.pool"));
    }
    let h = b.flatten(h, "flatten");
    let flat = b.shape(h).dim(1);
    let fc1 = Linear::new(b, "classifier.fc1", flat, 4096, true);
    let fc2 = Linear::new(b, "classifier.fc2", 4096, 4096, true);
    let fc3 = Linear::new(b, "classifier.fc3", 4096, classes, true);
    let h = fc1.forward(b, h);
    let h = b.relu(h, "classifier.relu1");
    let h = b.dropout(h, 0.5, "classifier.drop1");
    let h = fc2.forward(b, h);
    let h = b.relu(h, "classifier.relu2");
    let h = b.dropout(h, 0.5, "classifier.drop2");
    fc3.forward(b, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet_flatten_is_512x7x7() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 224, 224]);
        let logits = forward(&mut b, x, 1000);
        assert_eq!(b.shape(logits).dims(), &[1, 1000]);
        let flat = b
            .graph()
            .tensors()
            .iter()
            .find(|t| t.name == "flatten")
            .unwrap();
        assert_eq!(flat.shape.dims(), &[1, 512 * 7 * 7]);
    }

    #[test]
    fn cifar_flatten_is_512() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 3, 32, 32]);
        forward(&mut b, x, 100);
        let flat = b
            .graph()
            .tensors()
            .iter()
            .find(|t| t.name == "flatten")
            .unwrap();
        assert_eq!(flat.shape.dims(), &[4, 512]);
    }

    #[test]
    fn has_thirteen_conv_layers() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [1, 3, 32, 32]);
        forward(&mut b, x, 10);
        let convs = b
            .graph()
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, pinpoint_nn::OpKind::Conv2d(_)))
            .count();
        assert_eq!(convs, 13);
    }
}
