//! Reverse-mode autodiff: walks the forward tape backwards and emits
//! gradient ops into the same graph.
//!
//! The emission mirrors what an eager framework's autograd engine does at
//! runtime, which is exactly what the paper traced: backward kernels
//! consume saved forward tensors (keeping them live — the dominant
//! "intermediate results" of Figs. 5–7) and produce gradient tensors whose
//! lifetimes end at the optimizer step.

use crate::builder::GraphBuilder;
use crate::graph::{OpKind, OpRecord, TensorId};
use pinpoint_tensor::Shape;
use pinpoint_trace::MemoryKind;
use std::collections::{BTreeMap, HashMap};

/// Emits backward ops for everything `loss` depends on, returning the
/// gradient tensor of each trainable parameter.
///
/// `loss` must be the scalar produced by
/// [`GraphBuilder::softmax_cross_entropy`].
///
/// # Panics
///
/// Panics if `loss` was not produced by a fused softmax-cross-entropy op.
pub fn backward(b: &mut GraphBuilder, loss: TensorId) -> BTreeMap<TensorId, TensorId> {
    let fwd_ops: Vec<OpRecord> = b.graph().ops().to_vec();
    assert!(
        fwd_ops
            .iter()
            .any(|op| matches!(op.kind, OpKind::SoftmaxXentFwd { .. }) && op.outputs[0] == loss),
        "backward requires a softmax-cross-entropy loss"
    );
    let mut ad = Autograd {
        contributions: HashMap::new(),
    };
    for op in fwd_ops.iter().rev() {
        ad.process_op(b, op, loss);
    }
    // materialize parameter gradients
    let weights: Vec<TensorId> = (0..b.graph().tensors().len())
        .map(TensorId)
        .filter(|t| b.graph().tensor(*t).kind == MemoryKind::Weight)
        .collect();
    let mut grads = BTreeMap::new();
    for w in weights {
        if let Some(g) = ad.materialize(b, w) {
            grads.insert(w, g);
        }
    }
    grads
}

struct Autograd {
    /// Pending gradient contributions per tensor.
    contributions: HashMap<TensorId, Vec<TensorId>>,
}

impl Autograd {
    fn contribute(&mut self, b: &GraphBuilder, target: TensorId, grad: TensorId) {
        // inputs (data, labels) never require gradients
        if b.graph().tensor(target).kind == MemoryKind::Input {
            return;
        }
        self.contributions.entry(target).or_default().push(grad);
    }

    /// Sums (if needed) and returns the gradient of `t`, or `None` if no
    /// gradient flows to it.
    fn materialize(&mut self, b: &mut GraphBuilder, t: TensorId) -> Option<TensorId> {
        let parts = self.contributions.remove(&t)?;
        let mut iter = parts.into_iter();
        let mut acc = iter.next()?;
        for part in iter {
            let shape = b.shape(acc).clone();
            let n = shape.numel();
            let kind = b.graph().tensor(acc).kind;
            let name = format!("{}.grad_accum", b.graph().tensor(t).name);
            let sum = b.new_grad_tensor(shape, kind, name.clone());
            b.emit_grad_op(
                OpKind::Add { n },
                vec![acc, part],
                vec![sum],
                0,
                n as u64,
                name,
            );
            acc = sum;
        }
        Some(acc)
    }

    fn grad_kind(b: &GraphBuilder, target: TensorId) -> MemoryKind {
        if b.graph().tensor(target).kind == MemoryKind::Weight {
            MemoryKind::WeightGrad
        } else {
            MemoryKind::ActivationGrad
        }
    }

    fn new_grad(
        &self,
        b: &mut GraphBuilder,
        like: TensorId,
        shape: Shape,
        name: String,
    ) -> TensorId {
        let kind = Self::grad_kind(b, like);
        b.new_grad_tensor(shape, kind, name)
    }

    fn process_op(&mut self, b: &mut GraphBuilder, op: &OpRecord, loss: TensorId) {
        // seed: the loss op converts probs+labels into dlogits directly
        if let OpKind::SoftmaxXentFwd { rows, cols } = op.kind {
            if op.outputs[0] != loss {
                return;
            }
            let (logits, labels) = (op.inputs[0], op.inputs[1]);
            let probs = op.outputs[1];
            let name = format!("{}.bwd", op.name);
            let dlogits = self.new_grad(
                b,
                logits,
                Shape::new(vec![rows, cols]),
                format!("{name}.dlogits"),
            );
            b.emit_grad_op(
                OpKind::SoftmaxXentGrad { rows, cols },
                vec![probs, labels],
                vec![dlogits],
                0,
                (3 * rows * cols) as u64,
                name,
            );
            self.contribute(b, logits, dlogits);
            return;
        }
        // everything else needs an incoming gradient on its primary output
        let Some(dy) = self.materialize(b, op.outputs[0]) else {
            return;
        };
        let name = format!("{}.bwd", op.name);
        match op.kind {
            OpKind::View => {
                let x = op.inputs[0];
                let xshape = b.shape(x).clone();
                let dx = b.grad_alias(dy, xshape, format!("{name}.dx"));
                self.contribute(b, x, dx);
            }
            OpKind::MatMul { ta, tb, m, k, n } => {
                let (a, bb) = (op.inputs[0], op.inputs[1]);
                let flops = 2 * (m as u64) * (k as u64) * (n as u64);
                // da
                if b.graph().tensor(a).kind != MemoryKind::Input {
                    let (lhs, rhs, fa, fb, om, ok, on) = match (ta, tb) {
                        (false, false) => (dy, bb, false, true, m, n, k),
                        (true, false) => (bb, dy, false, true, k, n, m),
                        (false, true) => (dy, bb, false, false, m, n, k),
                        (true, true) => (bb, dy, true, true, k, n, m),
                    };
                    let da = self.new_grad(b, a, b.shape(a).clone(), format!("{name}.da"));
                    b.emit_grad_op(
                        OpKind::MatMul {
                            ta: fa,
                            tb: fb,
                            m: om,
                            k: ok,
                            n: on,
                        },
                        vec![lhs, rhs],
                        vec![da],
                        0,
                        flops,
                        format!("{name}.da"),
                    );
                    self.contribute(b, a, da);
                }
                // db
                if b.graph().tensor(bb).kind != MemoryKind::Input {
                    let (lhs, rhs, fa, fb, om, ok, on) = match (ta, tb) {
                        (false, false) => (a, dy, true, false, k, m, n),
                        (true, false) => (a, dy, false, false, k, m, n),
                        (false, true) => (dy, a, true, false, n, m, k),
                        (true, true) => (dy, a, true, true, n, m, k),
                    };
                    let db = self.new_grad(b, bb, b.shape(bb).clone(), format!("{name}.db"));
                    b.emit_grad_op(
                        OpKind::MatMul {
                            ta: fa,
                            tb: fb,
                            m: om,
                            k: ok,
                            n: on,
                        },
                        vec![lhs, rhs],
                        vec![db],
                        0,
                        flops,
                        format!("{name}.db"),
                    );
                    self.contribute(b, bb, db);
                }
            }
            OpKind::AddBias { rows, cols } => {
                let (x, bias) = (op.inputs[0], op.inputs[1]);
                // dx = dy (identity), no kernel
                self.contribute(b, x, dy);
                let dbias = self.new_grad(b, bias, Shape::new(vec![cols]), format!("{name}.db"));
                b.emit_grad_op(
                    OpKind::BiasGrad { rows, cols },
                    vec![dy],
                    vec![dbias],
                    0,
                    (rows * cols) as u64,
                    format!("{name}.db"),
                );
                self.contribute(b, bias, dbias);
            }
            OpKind::Relu { n } => {
                let x = op.inputs[0];
                let dx = self.new_grad(b, x, b.shape(x).clone(), format!("{name}.dx"));
                b.emit_grad_op(
                    OpKind::ReluGrad { n },
                    vec![x, dy],
                    vec![dx],
                    0,
                    n as u64,
                    name,
                );
                self.contribute(b, x, dx);
            }
            OpKind::Add { .. } => {
                self.contribute(b, op.inputs[0], dy);
                self.contribute(b, op.inputs[1], dy);
            }
            OpKind::Conv2d(g) => {
                let (x, w) = (op.inputs[0], op.inputs[1]);
                let need_dx = b.graph().tensor(x).kind != MemoryKind::Input;
                let dw = self.new_grad(b, w, b.shape(w).clone(), format!("{name}.dw"));
                let mut outputs = Vec::new();
                let dx = if need_dx {
                    let dx = self.new_grad(b, x, b.shape(x).clone(), format!("{name}.dx"));
                    outputs.push(dx);
                    Some(dx)
                } else {
                    None
                };
                outputs.push(dw);
                let mult = if need_dx { 2 } else { 1 };
                b.emit_grad_op(
                    OpKind::Conv2dGrad(g),
                    vec![x, w, dy],
                    outputs,
                    g.col_numel() * 4,
                    g.flops() * mult,
                    name,
                );
                if let Some(dx) = dx {
                    self.contribute(b, x, dx);
                }
                self.contribute(b, w, dw);
            }
            OpKind::DepthwiseConv2d(g) => {
                let (x, w) = (op.inputs[0], op.inputs[1]);
                let dx = self.new_grad(b, x, b.shape(x).clone(), format!("{name}.dx"));
                let dw = self.new_grad(b, w, b.shape(w).clone(), format!("{name}.dw"));
                b.emit_grad_op(
                    OpKind::DepthwiseConv2dGrad(g),
                    vec![x, w, dy],
                    vec![dx, dw],
                    0,
                    2 * g.flops(),
                    name,
                );
                if b.graph().tensor(x).kind != MemoryKind::Input {
                    self.contribute(b, x, dx);
                }
                self.contribute(b, w, dw);
            }
            OpKind::MaxPoolFwd(g) => {
                let x = op.inputs[0];
                let argmax = op.outputs[1];
                let dx = self.new_grad(b, x, b.shape(x).clone(), format!("{name}.dx"));
                let flops = (g.n * g.c * g.oh() * g.ow()) as u64;
                b.emit_grad_op(
                    OpKind::MaxPoolGrad(g),
                    vec![dy, argmax],
                    vec![dx],
                    0,
                    flops,
                    name,
                );
                self.contribute(b, x, dx);
            }
            OpKind::AvgPoolFwd(g) => {
                let x = op.inputs[0];
                let dx = self.new_grad(b, x, b.shape(x).clone(), format!("{name}.dx"));
                let flops = (g.n * g.c * g.oh() * g.ow() * g.kh * g.kw) as u64;
                b.emit_grad_op(OpKind::AvgPoolGrad(g), vec![dy], vec![dx], 0, flops, name);
                self.contribute(b, x, dx);
            }
            OpKind::GlobalAvgPoolFwd { n, c, hw } => {
                let x = op.inputs[0];
                let dx = self.new_grad(b, x, b.shape(x).clone(), format!("{name}.dx"));
                b.emit_grad_op(
                    OpKind::GlobalAvgPoolGrad { n, c, hw },
                    vec![dy],
                    vec![dx],
                    0,
                    (n * c * hw) as u64,
                    name,
                );
                self.contribute(b, x, dx);
            }
            OpKind::BatchNormFwd { n, c, hw, .. } => {
                let (x, gamma, beta) = (op.inputs[0], op.inputs[1], op.inputs[2]);
                let (save_mean, save_inv_std) = (op.outputs[1], op.outputs[2]);
                let dx = self.new_grad(b, x, b.shape(x).clone(), format!("{name}.dx"));
                let dgamma = self.new_grad(b, gamma, Shape::new(vec![c]), format!("{name}.dgamma"));
                let dbeta = self.new_grad(b, beta, Shape::new(vec![c]), format!("{name}.dbeta"));
                b.emit_grad_op(
                    OpKind::BatchNormGrad { n, c, hw },
                    vec![x, gamma, dy, save_mean, save_inv_std],
                    vec![dx, dgamma, dbeta],
                    0,
                    (8 * n * c * hw) as u64,
                    name,
                );
                self.contribute(b, x, dx);
                self.contribute(b, gamma, dgamma);
                self.contribute(b, beta, dbeta);
            }
            OpKind::ConcatChannels { n, hw, ref parts } => {
                // one SplitChannels op scatters dy back to every branch
                let mut outputs = Vec::with_capacity(op.inputs.len());
                for (i, &x) in op.inputs.iter().enumerate() {
                    let dx = self.new_grad(b, x, b.shape(x).clone(), format!("{name}.dx{i}"));
                    outputs.push(dx);
                }
                let total: usize = parts.iter().sum();
                b.emit_grad_op(
                    OpKind::SplitChannels {
                        n,
                        hw,
                        parts: parts.clone(),
                    },
                    vec![dy],
                    outputs.clone(),
                    0,
                    (n * total * hw) as u64,
                    name,
                );
                for (&x, dx) in op.inputs.iter().zip(outputs) {
                    self.contribute(b, x, dx);
                }
            }
            OpKind::DropoutFwd { n, .. } => {
                let x = op.inputs[0];
                let mask = op.outputs[1];
                let dx = self.new_grad(b, x, b.shape(x).clone(), format!("{name}.dx"));
                b.emit_grad_op(
                    OpKind::DropoutGrad { n },
                    vec![dy, mask],
                    vec![dx],
                    0,
                    n as u64,
                    name,
                );
                self.contribute(b, x, dx);
            }
            // backward/optimizer ops never appear in the forward tape
            OpKind::SoftmaxXentFwd { .. } => unreachable!("handled above"),
            _ => panic!("unexpected op in forward tape: {:?}", op.kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::InitSpec;

    /// The paper's Fig. 1 MLP at batch 4: x → fc0 → relu → fc1 → loss.
    fn mlp_builder() -> (GraphBuilder, TensorId, Vec<TensorId>) {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 2]);
        let y = b.labels("y", 4);
        let w0 = b.param("w0", [2, 8], InitSpec::Uniform { bound: 0.5 });
        let b0 = b.param("b0", [8], InitSpec::Zeros);
        let w1 = b.param("w1", [8, 2], InitSpec::Uniform { bound: 0.5 });
        let b1 = b.param("b1", [2], InitSpec::Zeros);
        let h = b.matmul(x, w0, false, false, "fc0.matmul");
        let h = b.add_bias(h, b0, "fc0.bias");
        let h = b.relu(h, "fc0.relu");
        let logits = b.matmul(h, w1, false, false, "fc1.matmul");
        let logits = b.add_bias(logits, b1, "fc1.bias");
        let (loss, _probs) = b.softmax_cross_entropy(logits, y, "loss");
        (b, loss, vec![w0, b0, w1, b1])
    }

    #[test]
    fn backward_produces_grad_for_every_param() {
        let (mut b, loss, params) = mlp_builder();
        let grads = backward(&mut b, loss);
        assert_eq!(grads.len(), 4);
        for p in &params {
            let g = grads[p];
            assert_eq!(b.shape(g).dims(), b.shape(*p).dims());
            assert_eq!(b.graph().tensor(g).kind, MemoryKind::WeightGrad);
        }
    }

    #[test]
    fn backward_does_not_differentiate_the_input() {
        let (mut b, loss, _) = mlp_builder();
        let n_ops_before = b.graph().ops().len();
        backward(&mut b, loss);
        let bwd_ops = &b.graph().ops()[n_ops_before..];
        // first-layer matmul emits only dw (x is an Input), so exactly
        // one backward matmul references fc0
        let fc0_grad_matmuls = bwd_ops
            .iter()
            .filter(|o| o.name.starts_with("fc0.matmul.bwd"))
            .count();
        assert_eq!(fc0_grad_matmuls, 1);
    }

    #[test]
    fn residual_addition_accumulates_gradients() {
        // x → a (relu), then y = a + a: grad of a must be summed once
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 2]);
        let w = b.param("w", [2, 2], InitSpec::Ones);
        let labels = b.labels("y", 4);
        let a = b.matmul(x, w, false, false, "mm");
        let s = b.add(a, a, "res");
        let (loss, _) = b.softmax_cross_entropy(s, labels, "loss");
        let grads = backward(&mut b, loss);
        assert_eq!(grads.len(), 1);
        // an Add accumulation op must exist for a's two contributions
        let has_accum = b
            .graph()
            .ops()
            .iter()
            .any(|o| o.name.contains("grad_accum"));
        assert!(has_accum, "two contributions to `a` need an accumulation");
    }

    #[test]
    fn concat_backward_splits_per_branch() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [2, 3, 4, 4]);
        let labels = b.labels("y", 2);
        let w1 = b.param("w1", [5, 3, 1, 1], InitSpec::Ones);
        let w2 = b.param("w2", [7, 3, 1, 1], InitSpec::Ones);
        let fc = b.param("fc", [12, 2], InitSpec::Ones);
        let b1 = b.conv2d(x, w1, 1, 0, "branch1");
        let b2 = b.conv2d(x, w2, 1, 0, "branch2");
        let cat = b.concat_channels(&[b1, b2], "cat");
        let g = b.global_avgpool(cat, "gap");
        let logits = b.matmul(g, fc, false, false, "head");
        let (loss, _) = b.softmax_cross_entropy(logits, labels, "loss");
        let grads = backward(&mut b, loss);
        assert_eq!(grads.len(), 3); // w1, w2, fc
        let split = b
            .graph()
            .ops()
            .iter()
            .find(|o| matches!(o.kind, OpKind::SplitChannels { .. }))
            .expect("split op emitted");
        assert_eq!(split.outputs.len(), 2);
        // both branch gradients have the branch shapes
        assert_eq!(b.shape(split.outputs[0]).dims(), &[2, 5, 4, 4]);
        assert_eq!(b.shape(split.outputs[1]).dims(), &[2, 7, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "softmax-cross-entropy loss")]
    fn rejects_non_loss_tensor() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [2, 2]);
        let w = b.param("w", [2, 2], InitSpec::Ones);
        let y = b.matmul(x, w, false, false, "mm");
        backward(&mut b, y);
    }

    #[test]
    fn conv_and_pool_backward_chain() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [2, 3, 8, 8]);
        let labels = b.labels("y", 2);
        let w = b.param("conv.w", [4, 3, 3, 3], InitSpec::Normal { std: 0.1 });
        let gamma = b.param("bn.gamma", [4], InitSpec::Ones);
        let beta = b.param("bn.beta", [4], InitSpec::Zeros);
        let rm = b.state("bn.rm", [4], InitSpec::Zeros);
        let rv = b.state("bn.rv", [4], InitSpec::Ones);
        let fcw = b.param("fc.w", [4, 2], InitSpec::Normal { std: 0.1 });
        let c = b.conv2d(x, w, 1, 1, "conv");
        let c = b.batchnorm(c, gamma, beta, rm, rv, 0.1, 1e-5, "bn");
        let c = b.relu(c, "relu");
        let p = b.maxpool2d(c, 2, 2, 0, "pool");
        let g = b.global_avgpool(p, "gap");
        let logits = b.matmul(g, fcw, false, false, "fc");
        let (loss, _) = b.softmax_cross_entropy(logits, labels, "loss");
        let grads = backward(&mut b, loss);
        assert_eq!(grads.len(), 4); // conv.w, gamma, beta, fc.w
                                    // conv grad op should omit dx (its input is the data)
        let conv_grad = b
            .graph()
            .ops()
            .iter()
            .find(|o| matches!(o.kind, OpKind::Conv2dGrad(_)))
            .unwrap();
        assert_eq!(conv_grad.outputs.len(), 1, "only dw for the first conv");
    }
}
