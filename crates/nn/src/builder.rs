//! Define-by-run graph construction.
//!
//! [`GraphBuilder`] is the API layers use to emit ops. Every method does
//! shape inference eagerly (panicking on inconsistent shapes, like an eager
//! framework would) and records the FLOP/byte cost the device's cost model
//! will charge at execution time.

use crate::graph::{Graph, InitSpec, OpKind, OpRecord, StorageId, TensorId, TensorMeta};
use pinpoint_tensor::kernels::conv::Conv2dGeom;
use pinpoint_tensor::kernels::depthwise::DwConv2dGeom;
use pinpoint_tensor::kernels::pool::Pool2dGeom;
use pinpoint_tensor::Shape;
use pinpoint_trace::MemoryKind;

/// Builder for one training-iteration graph.
///
/// # Examples
///
/// ```
/// use pinpoint_nn::{GraphBuilder, InitSpec};
///
/// let mut b = GraphBuilder::new();
/// let x = b.input("x", [128, 2]);
/// let w = b.param("w0", [2, 12288], InitSpec::Uniform { bound: 0.5 });
/// let h = b.matmul(x, w, false, false, "fc0.matmul");
/// assert_eq!(b.shape(h).dims(), &[128, 12288]);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: Graph,
    scope: Vec<String>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a name scope; tensors and ops created until the matching
    /// [`GraphBuilder::pop_scope`] are prefixed `scope.`.
    pub fn push_scope(&mut self, name: &str) {
        self.scope.push(name.to_string());
    }

    /// Pops the innermost name scope.
    pub fn pop_scope(&mut self) {
        self.scope.pop();
    }

    fn scoped(&self, name: &str) -> String {
        if self.scope.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.scope.join("."), name)
        }
    }

    /// Shape of a tensor.
    pub fn shape(&self, id: TensorId) -> &Shape {
        &self.graph.tensors[id.0].shape
    }

    /// Immutable access to the graph built so far.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Finishes building, returning the graph.
    pub fn finish(self) -> Graph {
        self.graph
    }

    fn new_tensor(
        &mut self,
        shape: Shape,
        kind: MemoryKind,
        name: String,
        persistent: bool,
        init: Option<InitSpec>,
    ) -> TensorId {
        let storage = StorageId(self.graph.num_storages);
        self.graph.num_storages += 1;
        self.graph.tensors.push(TensorMeta {
            shape,
            kind,
            name,
            storage,
            persistent,
            init,
        });
        TensorId(self.graph.tensors.len() - 1)
    }

    fn alias_tensor(&mut self, base: TensorId, shape: Shape, name: String) -> TensorId {
        let base_meta = &self.graph.tensors[base.0];
        assert_eq!(
            shape.numel(),
            base_meta.shape.numel(),
            "view of {} must preserve element count ({} vs {})",
            base_meta.name,
            shape.numel(),
            base_meta.shape.numel()
        );
        let meta = TensorMeta {
            shape,
            kind: base_meta.kind,
            name,
            storage: base_meta.storage,
            persistent: base_meta.persistent,
            init: None,
        };
        self.graph.tensors.push(meta);
        TensorId(self.graph.tensors.len() - 1)
    }

    fn operand_bytes(&self, ids: &[TensorId]) -> u64 {
        ids.iter()
            .map(|t| self.graph.tensors[t.0].size_bytes() as u64)
            .sum()
    }

    fn push_op(
        &mut self,
        kind: OpKind,
        inputs: Vec<TensorId>,
        outputs: Vec<TensorId>,
        workspace_bytes: usize,
        flops: u64,
        name: String,
    ) {
        let bytes =
            self.operand_bytes(&inputs) + self.operand_bytes(&outputs) + workspace_bytes as u64;
        self.graph.ops.push(OpRecord {
            kind,
            inputs,
            outputs,
            workspace_bytes,
            flops,
            bytes,
            name,
        });
    }

    // ---------------------------------------------------------------------
    // tensor declarations
    // ---------------------------------------------------------------------

    /// Declares a per-iteration input tensor (staged host→device each
    /// iteration).
    pub fn input(&mut self, name: &str, shape: impl Into<Shape>) -> TensorId {
        let name = self.scoped(name);
        self.new_tensor(shape.into(), MemoryKind::Input, name, false, None)
    }

    /// Declares the per-iteration integer class labels (stored as one f32
    /// per example, staged with the inputs).
    pub fn labels(&mut self, name: &str, batch: usize) -> TensorId {
        let name = self.scoped(name);
        self.new_tensor(
            Shape::new(vec![batch]),
            MemoryKind::Input,
            name,
            false,
            None,
        )
    }

    /// Declares a trainable parameter (persistent, initialized once).
    pub fn param(&mut self, name: &str, shape: impl Into<Shape>, init: InitSpec) -> TensorId {
        let name = self.scoped(name);
        self.new_tensor(shape.into(), MemoryKind::Weight, name, true, Some(init))
    }

    /// Declares persistent non-trainable state (momentum buffers, running
    /// statistics).
    pub fn state(&mut self, name: &str, shape: impl Into<Shape>, init: InitSpec) -> TensorId {
        let name = self.scoped(name);
        self.new_tensor(
            shape.into(),
            MemoryKind::OptimizerState,
            name,
            true,
            Some(init),
        )
    }

    fn activation(&mut self, name: &str, shape: Shape) -> TensorId {
        let name = self.scoped(name);
        self.new_tensor(shape, MemoryKind::Activation, name, false, None)
    }

    // ---------------------------------------------------------------------
    // forward ops
    // ---------------------------------------------------------------------

    /// Matrix product `op(a) · op(b)`; `ta`/`tb` transpose the operands.
    ///
    /// # Panics
    ///
    /// Panics if operands are not rank-2 or contraction extents differ.
    pub fn matmul(&mut self, a: TensorId, b: TensorId, ta: bool, tb: bool, name: &str) -> TensorId {
        let sa = self.shape(a).clone();
        let sb = self.shape(b).clone();
        assert_eq!(sa.rank(), 2, "matmul lhs must be rank 2, got {sa}");
        assert_eq!(sb.rank(), 2, "matmul rhs must be rank 2, got {sb}");
        let (m, ka) = if ta {
            (sa.dim(1), sa.dim(0))
        } else {
            (sa.dim(0), sa.dim(1))
        };
        let (kb, n) = if tb {
            (sb.dim(1), sb.dim(0))
        } else {
            (sb.dim(0), sb.dim(1))
        };
        assert_eq!(
            ka, kb,
            "matmul contraction mismatch: {sa} (ta={ta}) × {sb} (tb={tb})"
        );
        let y = self.activation(&format!("{name}.out"), Shape::new(vec![m, n]));
        let flops = 2 * (m as u64) * (ka as u64) * (n as u64);
        self.push_op(
            OpKind::MatMul {
                ta,
                tb,
                m,
                k: ka,
                n,
            },
            vec![a, b],
            vec![y],
            0,
            flops,
            self.scoped(name),
        );
        y
    }

    /// Broadcast bias addition over the last dimension of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics on rank/extent mismatch.
    pub fn add_bias(&mut self, x: TensorId, bias: TensorId, name: &str) -> TensorId {
        let sx = self.shape(x).clone();
        let sb = self.shape(bias).clone();
        assert_eq!(sx.rank(), 2, "add_bias input must be rank 2");
        assert_eq!(sb.rank(), 1, "bias must be rank 1");
        assert_eq!(sx.dim(1), sb.dim(0), "bias length must match columns");
        let (rows, cols) = (sx.dim(0), sx.dim(1));
        let y = self.activation(&format!("{name}.out"), sx);
        self.push_op(
            OpKind::AddBias { rows, cols },
            vec![x, bias],
            vec![y],
            0,
            (rows * cols) as u64,
            self.scoped(name),
        );
        y
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: TensorId, name: &str) -> TensorId {
        let sx = self.shape(x).clone();
        let n = sx.numel();
        let y = self.activation(&format!("{name}.out"), sx);
        self.push_op(
            OpKind::Relu { n },
            vec![x],
            vec![y],
            0,
            n as u64,
            self.scoped(name),
        );
        y
    }

    /// Elementwise sum (residual connections).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&mut self, a: TensorId, b: TensorId, name: &str) -> TensorId {
        let sa = self.shape(a).clone();
        assert_eq!(&sa, self.shape(b), "add operands must match shapes");
        let n = sa.numel();
        let y = self.activation(&format!("{name}.out"), sa);
        self.push_op(
            OpKind::Add { n },
            vec![a, b],
            vec![y],
            0,
            n as u64,
            self.scoped(name),
        );
        y
    }

    /// Zero-cost reshape (shares storage; no device events).
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn view(&mut self, x: TensorId, shape: impl Into<Shape>, name: &str) -> TensorId {
        let shape = shape.into();
        let scoped = self.scoped(name);
        let y = self.alias_tensor(x, shape, scoped.clone());
        self.push_op(OpKind::View, vec![x], vec![y], 0, 0, scoped);
        y
    }

    /// Flattens `[N, ...]` to `[N, prod(...)]` as a view.
    pub fn flatten(&mut self, x: TensorId, name: &str) -> TensorId {
        let sx = self.shape(x).clone();
        assert!(sx.rank() >= 2, "flatten needs at least rank 2");
        let n = sx.dim(0);
        let rest: usize = sx.dims()[1..].iter().product();
        self.view(x, [n, rest], name)
    }

    /// 2-D convolution (NCHW); weight is `[F, C, KH, KW]`.
    ///
    /// # Panics
    ///
    /// Panics on rank/extent mismatches or degenerate geometry.
    pub fn conv2d(
        &mut self,
        x: TensorId,
        weight: TensorId,
        stride: usize,
        pad: usize,
        name: &str,
    ) -> TensorId {
        let sx = self.shape(x).clone();
        let sw = self.shape(weight).clone();
        assert_eq!(sx.rank(), 4, "conv2d input must be NCHW");
        assert_eq!(sw.rank(), 4, "conv2d weight must be FCKK");
        assert_eq!(sx.dim(1), sw.dim(1), "channel mismatch");
        let g = Conv2dGeom {
            n: sx.dim(0),
            c: sx.dim(1),
            h: sx.dim(2),
            w: sx.dim(3),
            f: sw.dim(0),
            kh: sw.dim(2),
            kw: sw.dim(3),
            stride,
            pad,
        };
        g.validate();
        let y = self.activation(
            &format!("{name}.out"),
            Shape::new(vec![g.n, g.f, g.oh(), g.ow()]),
        );
        let workspace = g.col_numel() * 4;
        self.push_op(
            OpKind::Conv2d(g),
            vec![x, weight],
            vec![y],
            workspace,
            g.flops(),
            self.scoped(name),
        );
        y
    }

    /// Depthwise 2-D convolution (NCHW); weight is `[C, 1, K, K]`.
    ///
    /// # Panics
    ///
    /// Panics on rank/extent mismatches or degenerate geometry.
    pub fn depthwise_conv2d(
        &mut self,
        x: TensorId,
        weight: TensorId,
        stride: usize,
        pad: usize,
        name: &str,
    ) -> TensorId {
        let sx = self.shape(x).clone();
        let sw = self.shape(weight).clone();
        assert_eq!(sx.rank(), 4, "depthwise input must be NCHW");
        assert_eq!(sw.rank(), 4, "depthwise weight must be C1KK");
        assert_eq!(sw.dim(0), sx.dim(1), "one filter per channel");
        assert_eq!(sw.dim(1), 1, "depthwise filters have one input channel");
        assert_eq!(sw.dim(2), sw.dim(3), "square kernels only");
        let g = DwConv2dGeom {
            n: sx.dim(0),
            c: sx.dim(1),
            h: sx.dim(2),
            w: sx.dim(3),
            k: sw.dim(2),
            stride,
            pad,
        };
        g.validate();
        let y = self.activation(
            &format!("{name}.out"),
            Shape::new(vec![g.n, g.c, g.oh(), g.ow()]),
        );
        self.push_op(
            OpKind::DepthwiseConv2d(g),
            vec![x, weight],
            vec![y],
            0,
            g.flops(),
            self.scoped(name),
        );
        y
    }

    fn pool_geom(&self, x: TensorId, k: usize, stride: usize, pad: usize) -> Pool2dGeom {
        let sx = self.shape(x);
        assert_eq!(sx.rank(), 4, "pooling input must be NCHW");
        Pool2dGeom {
            n: sx.dim(0),
            c: sx.dim(1),
            h: sx.dim(2),
            w: sx.dim(3),
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    /// Max pooling with a square window.
    pub fn maxpool2d(
        &mut self,
        x: TensorId,
        k: usize,
        stride: usize,
        pad: usize,
        name: &str,
    ) -> TensorId {
        let g = self.pool_geom(x, k, stride, pad);
        let out_shape = Shape::new(vec![g.n, g.c, g.oh(), g.ow()]);
        let y = self.activation(&format!("{name}.out"), out_shape.clone());
        let argmax = self.activation(&format!("{name}.argmax"), out_shape.clone());
        let flops = (out_shape.numel() * k * k) as u64;
        self.push_op(
            OpKind::MaxPoolFwd(g),
            vec![x],
            vec![y, argmax],
            0,
            flops,
            self.scoped(name),
        );
        y
    }

    /// Average pooling with a square window.
    pub fn avgpool2d(
        &mut self,
        x: TensorId,
        k: usize,
        stride: usize,
        pad: usize,
        name: &str,
    ) -> TensorId {
        let g = self.pool_geom(x, k, stride, pad);
        let out_shape = Shape::new(vec![g.n, g.c, g.oh(), g.ow()]);
        let y = self.activation(&format!("{name}.out"), out_shape.clone());
        let flops = (out_shape.numel() * k * k) as u64;
        self.push_op(
            OpKind::AvgPoolFwd(g),
            vec![x],
            vec![y],
            0,
            flops,
            self.scoped(name),
        );
        y
    }

    /// Global average pooling `[N,C,H,W] -> [N,C]`.
    pub fn global_avgpool(&mut self, x: TensorId, name: &str) -> TensorId {
        let sx = self.shape(x).clone();
        assert_eq!(sx.rank(), 4, "global_avgpool input must be NCHW");
        let (n, c, hw) = (sx.dim(0), sx.dim(1), sx.dim(2) * sx.dim(3));
        let y = self.activation(&format!("{name}.out"), Shape::new(vec![n, c]));
        self.push_op(
            OpKind::GlobalAvgPoolFwd { n, c, hw },
            vec![x],
            vec![y],
            0,
            (n * c * hw) as u64,
            self.scoped(name),
        );
        y
    }

    /// Batch normalization (training mode) over NCHW or NC input.
    ///
    /// `gamma`/`beta` are trainable; `running_mean`/`running_var` are
    /// persistent state updated in place.
    ///
    /// # Panics
    ///
    /// Panics on rank/extent mismatches.
    #[allow(clippy::too_many_arguments)]
    pub fn batchnorm(
        &mut self,
        x: TensorId,
        gamma: TensorId,
        beta: TensorId,
        running_mean: TensorId,
        running_var: TensorId,
        momentum: f32,
        eps: f32,
        name: &str,
    ) -> TensorId {
        let sx = self.shape(x).clone();
        let (n, c, hw) = match sx.rank() {
            4 => (sx.dim(0), sx.dim(1), sx.dim(2) * sx.dim(3)),
            2 => (sx.dim(0), sx.dim(1), 1),
            r => panic!("batchnorm input must be rank 2 or 4, got rank {r}"),
        };
        for (t, what) in [
            (gamma, "gamma"),
            (beta, "beta"),
            (running_mean, "running_mean"),
            (running_var, "running_var"),
        ] {
            assert_eq!(
                self.shape(t).numel(),
                c,
                "{what} must have {c} elements for {name}"
            );
        }
        let y = self.activation(&format!("{name}.out"), sx);
        let save_mean = self.activation(&format!("{name}.save_mean"), Shape::new(vec![c]));
        let save_inv_std = self.activation(&format!("{name}.save_inv_std"), Shape::new(vec![c]));
        self.push_op(
            OpKind::BatchNormFwd {
                n,
                c,
                hw,
                momentum,
                eps,
            },
            vec![x, gamma, beta, running_mean, running_var],
            vec![y, save_mean, save_inv_std, running_mean, running_var],
            0,
            (4 * n * c * hw) as u64,
            self.scoped(name),
        );
        y
    }

    /// Concatenates NCHW tensors along the channel dimension (Inception
    /// branch merge).
    ///
    /// # Panics
    ///
    /// Panics unless all inputs are rank 4 and agree on batch and spatial
    /// dims, or if fewer than two inputs are given.
    pub fn concat_channels(&mut self, inputs: &[TensorId], name: &str) -> TensorId {
        assert!(inputs.len() >= 2, "concat needs at least two inputs");
        let first = self.shape(inputs[0]).clone();
        assert_eq!(first.rank(), 4, "concat inputs must be NCHW");
        let (n, h, w) = (first.dim(0), first.dim(2), first.dim(3));
        let mut parts = Vec::with_capacity(inputs.len());
        for &t in inputs {
            let s = self.shape(t);
            assert_eq!(s.rank(), 4, "concat inputs must be NCHW");
            assert_eq!(
                (s.dim(0), s.dim(2), s.dim(3)),
                (n, h, w),
                "concat inputs must agree on batch and spatial dims"
            );
            parts.push(s.dim(1));
        }
        let total: usize = parts.iter().sum();
        let y = self.activation(&format!("{name}.out"), Shape::new(vec![n, total, h, w]));
        let numel = (n * total * h * w) as u64;
        self.push_op(
            OpKind::ConcatChannels {
                n,
                hw: h * w,
                parts,
            },
            inputs.to_vec(),
            vec![y],
            0,
            numel, // a copy: one op per element
            self.scoped(name),
        );
        y
    }

    /// Emits an Adam update (in place on `w` and its moment buffers).
    #[allow(clippy::too_many_arguments)]
    pub fn adam_step(
        &mut self,
        w: TensorId,
        m: TensorId,
        v: TensorId,
        g: TensorId,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        name: &str,
    ) {
        let n = self.shape(w).numel();
        for (t, what) in [(m, "m"), (v, "v"), (g, "g")] {
            assert_eq!(n, self.shape(t).numel(), "{what} shape mismatch");
        }
        self.push_op(
            OpKind::AdamStep {
                n,
                lr,
                beta1,
                beta2,
                eps,
            },
            vec![w, m, v, g],
            vec![w, m, v],
            0,
            (10 * n) as u64,
            self.scoped(name),
        );
    }

    /// Inverted dropout with drop probability `p` (training mode).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn dropout(&mut self, x: TensorId, p: f32, name: &str) -> TensorId {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        let sx = self.shape(x).clone();
        let n = sx.numel();
        let y = self.activation(&format!("{name}.out"), sx.clone());
        let mask = self.activation(&format!("{name}.mask"), sx);
        self.push_op(
            OpKind::DropoutFwd { n, p },
            vec![x],
            vec![y, mask],
            0,
            (2 * n) as u64,
            self.scoped(name),
        );
        y
    }

    /// Fused softmax + mean cross-entropy. Returns `(loss, probs)`; `loss`
    /// is a scalar, `probs` is kept for the backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not rank 2 or `labels` length differs from the
    /// batch.
    pub fn softmax_cross_entropy(
        &mut self,
        logits: TensorId,
        labels: TensorId,
        name: &str,
    ) -> (TensorId, TensorId) {
        let sl = self.shape(logits).clone();
        assert_eq!(sl.rank(), 2, "logits must be rank 2");
        let (rows, cols) = (sl.dim(0), sl.dim(1));
        assert_eq!(
            self.shape(labels).numel(),
            rows,
            "labels length must equal the batch"
        );
        let loss = self.activation(&format!("{name}.loss"), Shape::scalar());
        let probs = self.activation(&format!("{name}.probs"), sl);
        self.push_op(
            OpKind::SoftmaxXentFwd { rows, cols },
            vec![logits, labels],
            vec![loss, probs],
            0,
            (5 * rows * cols) as u64,
            self.scoped(name),
        );
        (loss, probs)
    }

    // ---------------------------------------------------------------------
    // backward/optimizer op emitters (used by autograd and optimizers)
    // ---------------------------------------------------------------------

    pub(crate) fn emit_grad_op(
        &mut self,
        kind: OpKind,
        inputs: Vec<TensorId>,
        outputs: Vec<TensorId>,
        workspace_bytes: usize,
        flops: u64,
        name: String,
    ) {
        self.push_op(kind, inputs, outputs, workspace_bytes, flops, name);
    }

    pub(crate) fn grad_alias(&mut self, base: TensorId, shape: Shape, name: String) -> TensorId {
        let y = self.alias_tensor(base, shape, name.clone());
        self.push_op(OpKind::View, vec![base], vec![y], 0, 0, name);
        y
    }

    pub(crate) fn new_grad_tensor(
        &mut self,
        shape: Shape,
        kind: MemoryKind,
        name: String,
    ) -> TensorId {
        self.new_tensor(shape, kind, name, false, None)
    }

    /// Emits a fused gradient all-reduce over `grads` (in place), charging
    /// the ring-all-reduce wire time `2·(N−1)/N · bytes / interconnect` by
    /// expressing it as equivalent device-DRAM bytes for the cost model
    /// (`dram_bytes_per_sec` must match the device's cost model).
    ///
    /// # Panics
    ///
    /// Panics if `grads` is empty or `world_size == 0`.
    pub fn allreduce(
        &mut self,
        grads: &[TensorId],
        world_size: usize,
        interconnect_bytes_per_sec: f64,
        dram_bytes_per_sec: f64,
        name: &str,
    ) {
        assert!(!grads.is_empty(), "allreduce needs at least one gradient");
        assert!(world_size >= 1, "world size must be positive");
        let n: usize = grads.iter().map(|&g| self.shape(g).numel()).sum();
        let wire_bytes = 2.0 * (world_size as f64 - 1.0) / world_size as f64 * (n * 4) as f64;
        let equivalent_bytes =
            (wire_bytes / interconnect_bytes_per_sec * dram_bytes_per_sec) as u64;
        self.graph.ops.push(OpRecord {
            kind: OpKind::AllReduce { n, world_size },
            inputs: grads.to_vec(),
            outputs: grads.to_vec(),
            workspace_bytes: 0,
            flops: n as u64,
            bytes: equivalent_bytes,
            name: self.scoped(name),
        });
    }

    /// Emits a vanilla SGD update `w -= lr * g` (in place on `w`).
    pub fn sgd_step(&mut self, w: TensorId, g: TensorId, lr: f32, name: &str) {
        let n = self.shape(w).numel();
        assert_eq!(n, self.shape(g).numel(), "gradient shape mismatch");
        self.push_op(
            OpKind::SgdStep { n, lr },
            vec![w, g],
            vec![w],
            0,
            (2 * n) as u64,
            self.scoped(name),
        );
    }

    /// Emits a momentum SGD update (in place on `w` and `v`).
    pub fn sgd_momentum_step(
        &mut self,
        w: TensorId,
        v: TensorId,
        g: TensorId,
        lr: f32,
        mu: f32,
        name: &str,
    ) {
        let n = self.shape(w).numel();
        assert_eq!(n, self.shape(g).numel(), "gradient shape mismatch");
        assert_eq!(n, self.shape(v).numel(), "velocity shape mismatch");
        self.push_op(
            OpKind::SgdMomentumStep { n, lr, mu },
            vec![w, v, g],
            vec![w, v],
            0,
            (4 * n) as u64,
            self.scoped(name),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_infers_output_shape() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [128, 2]);
        let w = b.param("w", [2, 12288], InitSpec::Uniform { bound: 0.1 });
        let y = b.matmul(x, w, false, false, "mm");
        assert_eq!(b.shape(y).dims(), &[128, 12288]);
        let op = &b.graph().ops()[0];
        assert_eq!(op.flops, 2 * 128 * 2 * 12288);
        assert!(op.bytes > 0);
    }

    #[test]
    fn matmul_transpose_flags_swap_dims() {
        let mut b = GraphBuilder::new();
        let a = b.input("a", [3, 5]); // logical 5x3 when ta
        let c = b.input("c", [3, 7]);
        let y = b.matmul(a, c, true, false, "mm");
        assert_eq!(b.shape(y).dims(), &[5, 7]);
    }

    #[test]
    #[should_panic(expected = "contraction mismatch")]
    fn matmul_rejects_bad_contraction() {
        let mut b = GraphBuilder::new();
        let a = b.input("a", [2, 3]);
        let c = b.input("c", [4, 5]);
        b.matmul(a, c, false, false, "mm");
    }

    #[test]
    fn conv_shapes_and_workspace() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [8, 3, 32, 32]);
        let w = b.param("w", [16, 3, 3, 3], InitSpec::Normal { std: 0.1 });
        let y = b.conv2d(x, w, 1, 1, "conv1");
        assert_eq!(b.shape(y).dims(), &[8, 16, 32, 32]);
        let op = &b.graph().ops()[0];
        assert_eq!(op.workspace_bytes, 3 * 3 * 3 * 32 * 32 * 4);
    }

    #[test]
    fn view_shares_storage_and_costs_nothing() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 3, 2, 2]);
        let f = b.flatten(x, "flat");
        assert_eq!(b.shape(f).dims(), &[4, 12]);
        let g = b.graph();
        assert_eq!(g.tensor(x).storage, g.tensor(f).storage);
        assert_eq!(g.ops()[0].kind, OpKind::View);
        assert_eq!(g.ops()[0].flops, 0);
    }

    #[test]
    fn batchnorm_emits_saved_stats_and_rmw_running_stats() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 8, 5, 5]);
        let gamma = b.param("bn.gamma", [8], InitSpec::Ones);
        let beta = b.param("bn.beta", [8], InitSpec::Zeros);
        let rm = b.state("bn.running_mean", [8], InitSpec::Zeros);
        let rv = b.state("bn.running_var", [8], InitSpec::Ones);
        let _y = b.batchnorm(x, gamma, beta, rm, rv, 0.1, 1e-5, "bn");
        let op = &b.graph().ops()[0];
        assert_eq!(op.outputs.len(), 5);
        assert!(op.inputs.contains(&rm) && op.outputs.contains(&rm));
    }

    #[test]
    fn loss_returns_scalar_and_probs() {
        let mut b = GraphBuilder::new();
        let logits = b.input("logits", [16, 10]);
        let labels = b.labels("y", 16);
        let (loss, probs) = b.softmax_cross_entropy(logits, labels, "loss");
        assert_eq!(b.shape(loss).numel(), 1);
        assert_eq!(b.shape(probs).dims(), &[16, 10]);
    }

    #[test]
    fn scopes_prefix_names() {
        let mut b = GraphBuilder::new();
        b.push_scope("layer1");
        let x = b.input("x", [2, 2]);
        assert_eq!(b.graph().tensor(x).name, "layer1.x");
        b.pop_scope();
        let y = b.input("y", [2, 2]);
        assert_eq!(b.graph().tensor(y).name, "y");
    }

    #[test]
    fn pooling_shapes() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [2, 4, 8, 8]);
        let y = b.maxpool2d(x, 2, 2, 0, "pool");
        assert_eq!(b.shape(y).dims(), &[2, 4, 4, 4]);
        let z = b.global_avgpool(y, "gap");
        assert_eq!(b.shape(z).dims(), &[2, 4]);
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn dropout_rejects_p_of_one() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [2, 2]);
        b.dropout(x, 1.0, "drop");
    }

    #[test]
    fn concat_sums_channels() {
        let mut b = GraphBuilder::new();
        let x1 = b.input("x1", [2, 3, 4, 4]);
        let x2 = b.input("x2", [2, 5, 4, 4]);
        let y = b.concat_channels(&[x1, x2], "cat");
        assert_eq!(b.shape(y).dims(), &[2, 8, 4, 4]);
        let op = &b.graph().ops()[0];
        assert_eq!(
            op.kind,
            OpKind::ConcatChannels {
                n: 2,
                hw: 16,
                parts: vec![3, 5]
            }
        );
    }

    #[test]
    #[should_panic(expected = "agree on batch and spatial")]
    fn concat_rejects_spatial_mismatch() {
        let mut b = GraphBuilder::new();
        let x1 = b.input("x1", [2, 3, 4, 4]);
        let x2 = b.input("x2", [2, 3, 8, 8]);
        b.concat_channels(&[x1, x2], "cat");
    }

    #[test]
    fn adam_step_is_read_modify_write_on_three_tensors() {
        let mut b = GraphBuilder::new();
        let w = b.param("w", [4], InitSpec::Zeros);
        let m = b.state("w.m", [4], InitSpec::Zeros);
        let v = b.state("w.v", [4], InitSpec::Zeros);
        let g = b.input("g", [4]);
        b.adam_step(w, m, v, g, 1e-3, 0.9, 0.999, 1e-8, "adam.w");
        let op = &b.graph().ops()[0];
        assert_eq!(op.inputs, vec![w, m, v, g]);
        assert_eq!(op.outputs, vec![w, m, v]);
    }
}
