//! Activation checkpointing (gradient recomputation).
//!
//! The classic alternative to the paper's swapping direction: instead of
//! moving long-lived intermediates to the host, *drop* them after the
//! forward pass and recompute them from sparse checkpoints just before the
//! backward ops that need them. This module implements it as a tape
//! transformation, so the same executors (and the same instrumentation)
//! run the checkpointed program — letting the trace analysis quantify the
//! technique exactly like the paper quantifies everything else.
//!
//! The transform:
//!
//! 1. splits the tape at the loss op into forward and backward regions;
//! 2. keeps every `k`-th pure forward activation (plus everything
//!    non-recomputable: parameters, inputs, batch-norm outputs and saved
//!    statistics, dropout masks, the loss op's outputs) as a *checkpoint*;
//! 3. for each non-checkpointed activation a backward op consumes, inserts
//!    a clone of its producing op (and, recursively, any missing pure
//!    producers) immediately before that backward op, writing into fresh
//!    tensors;
//! 4. rewires the backward ops to the recomputed tensors.
//!
//! Because the dropped activations' last use is now inside the forward
//! pass, the executor's liveness analysis frees them early — trading
//! recompute FLOPs for peak footprint, observable directly in the trace.

use crate::graph::{Graph, OpKind, OpRecord, StorageId, TensorId, TensorMeta};
use pinpoint_trace::MemoryKind;
use std::collections::{HashMap, HashSet};

/// Whether an op may be replayed without side effects or randomness.
fn is_pure(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::View
            | OpKind::MatMul { .. }
            | OpKind::AddBias { .. }
            | OpKind::Relu { .. }
            | OpKind::Add { .. }
            | OpKind::Conv2d(_)
            | OpKind::DepthwiseConv2d(_)
            | OpKind::MaxPoolFwd(_)
            | OpKind::AvgPoolFwd(_)
            | OpKind::GlobalAvgPoolFwd { .. }
            | OpKind::ConcatChannels { .. }
    )
}

/// Applies activation checkpointing to a compiled tape.
///
/// `keep_every` controls checkpoint density: every `keep_every`-th pure
/// forward op's outputs are kept; the rest become recompute candidates.
/// `keep_every = 1` keeps everything (identity transform).
///
/// Returns the transformed graph; recompile it with
/// [`crate::Program::compile`] to refresh liveness.
///
/// # Panics
///
/// Panics if `keep_every == 0` or `loss` is not produced by an op in the
/// graph.
pub fn apply_checkpointing(graph: &Graph, loss: TensorId, keep_every: usize) -> Graph {
    assert!(keep_every >= 1, "keep_every must be at least 1");
    let loss_idx = graph
        .ops()
        .iter()
        .position(|op| op.outputs.first() == Some(&loss))
        .expect("loss must be produced by a graph op");
    let mut g = Graph {
        tensors: graph.tensors().to_vec(),
        ops: Vec::with_capacity(graph.ops().len()),
        num_storages: graph.num_storages(),
    };
    // --- select checkpoints ---------------------------------------------
    let mut checkpointed: HashSet<TensorId> = HashSet::new();
    let mut producer: HashMap<TensorId, usize> = HashMap::new();
    let mut pure_counter = 0usize;
    for (j, op) in graph.ops().iter().enumerate().take(loss_idx + 1) {
        for &out in &op.outputs {
            producer.entry(out).or_insert(j);
        }
        let keep = if !is_pure(&op.kind) || j == loss_idx {
            true
        } else {
            pure_counter += 1;
            pure_counter.is_multiple_of(keep_every)
        };
        if keep {
            checkpointed.extend(op.outputs.iter().copied());
        }
    }
    // non-activation tensors are always available
    let available = |t: TensorId, g: &Graph, recomputed: &HashMap<TensorId, TensorId>| {
        g.tensors[t.0].kind != MemoryKind::Activation
            || checkpointed.contains(&t)
            || recomputed.contains_key(&t)
            || !producer.contains_key(&t) // staged inputs
    };
    // --- copy the forward region unchanged --------------------------------
    for op in &graph.ops()[..=loss_idx] {
        g.ops.push(op.clone());
    }
    // --- walk the backward region, inserting recomputes -------------------
    let mut recomputed: HashMap<TensorId, TensorId> = HashMap::new();
    for op in &graph.ops()[loss_idx + 1..] {
        // ensure every forward-activation input is available
        for &input in &op.inputs.clone() {
            ensure_available(
                input,
                graph,
                &mut g,
                &checkpointed,
                &producer,
                &mut recomputed,
            );
        }
        let mut op = op.clone();
        for input in op.inputs.iter_mut() {
            if let Some(&r) = recomputed.get(input) {
                *input = r;
            }
        }
        g.ops.push(op);
        let _ = &available; // (closure kept for documentation of the rule)
    }
    g
}

/// Recursively emits recompute clones so `t` (and its pure ancestry) is
/// available, recording the substitution in `recomputed`.
fn ensure_available(
    t: TensorId,
    original: &Graph,
    g: &mut Graph,
    checkpointed: &HashSet<TensorId>,
    producer: &HashMap<TensorId, usize>,
    recomputed: &mut HashMap<TensorId, TensorId>,
) {
    if original.tensors()[t.0].kind != MemoryKind::Activation
        || checkpointed.contains(&t)
        || recomputed.contains_key(&t)
    {
        return;
    }
    let Some(&pidx) = producer.get(&t) else {
        return; // staged input or parameter: always available
    };
    let op = &original.ops()[pidx];
    debug_assert!(is_pure(&op.kind), "only pure ops lose their outputs");
    // make sure the producer's own inputs are available first
    for &input in &op.inputs {
        ensure_available(input, original, g, checkpointed, producer, recomputed);
    }
    let remap = |t: TensorId, recomputed: &HashMap<TensorId, TensorId>| {
        recomputed.get(&t).copied().unwrap_or(t)
    };
    let new_inputs: Vec<TensorId> = op.inputs.iter().map(|&i| remap(i, recomputed)).collect();
    // clone outputs into fresh tensors (views alias their recomputed base)
    let mut new_outputs = Vec::with_capacity(op.outputs.len());
    for &out in &op.outputs {
        let meta = &original.tensors()[out.0];
        let new_id = TensorId(g.tensors.len());
        let new_meta = if matches!(op.kind, OpKind::View) {
            let base = new_inputs[0];
            TensorMeta {
                shape: meta.shape.clone(),
                kind: meta.kind,
                name: format!("{}.recomp", meta.name),
                storage: g.tensors[base.0].storage,
                persistent: false,
                init: None,
            }
        } else {
            let storage = StorageId(g.num_storages);
            g.num_storages += 1;
            TensorMeta {
                shape: meta.shape.clone(),
                kind: meta.kind,
                name: format!("{}.recomp", meta.name),
                storage,
                persistent: false,
                init: None,
            }
        };
        g.tensors.push(new_meta);
        new_outputs.push(new_id);
        recomputed.insert(out, new_id);
    }
    g.ops.push(OpRecord {
        kind: op.kind.clone(),
        inputs: new_inputs,
        outputs: new_outputs,
        workspace_bytes: op.workspace_bytes,
        flops: op.flops,
        bytes: op.bytes,
        name: format!("{}.recomp", op.name),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::backward;
    use crate::builder::GraphBuilder;
    use crate::graph::InitSpec;
    use crate::optim::Optimizer;
    use crate::program::Program;

    fn deep_mlp(depth: usize) -> (Graph, Vec<TensorId>, TensorId) {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [8, 16]);
        let y = b.labels("y", 8);
        let mut h = x;
        for i in 0..depth {
            let w = b.param(&format!("w{i}"), [16, 16], InitSpec::Uniform { bound: 0.3 });
            h = b.matmul(h, w, false, false, &format!("fc{i}"));
            h = b.relu(h, &format!("relu{i}"));
        }
        let wout = b.param("w_out", [16, 2], InitSpec::Uniform { bound: 0.3 });
        let logits = b.matmul(h, wout, false, false, "head");
        let (loss, _) = b.softmax_cross_entropy(logits, y, "loss");
        let grads = backward(&mut b, loss);
        Optimizer::Sgd { lr: 0.1 }.emit_step(&mut b, &grads);
        (b.finish(), vec![x, y], loss)
    }

    #[test]
    fn keep_every_one_is_identity() {
        let (g, _, loss) = deep_mlp(4);
        let t = apply_checkpointing(&g, loss, 1);
        assert_eq!(t.ops().len(), g.ops().len());
        assert_eq!(t.tensors().len(), g.tensors().len());
    }

    #[test]
    fn recompute_ops_are_inserted_for_sparse_checkpoints() {
        let (g, _, loss) = deep_mlp(6);
        let t = apply_checkpointing(&g, loss, 4);
        assert!(t.ops().len() > g.ops().len(), "recompute clones added");
        let recomp = t
            .ops()
            .iter()
            .filter(|o| o.name.ends_with(".recomp"))
            .count();
        assert!(recomp > 0);
        // recompute clones appear only after the loss op
        let loss_idx = t
            .ops()
            .iter()
            .position(|o| o.outputs.first() == Some(&loss))
            .unwrap();
        assert!(t.ops()[..loss_idx]
            .iter()
            .all(|o| !o.name.ends_with(".recomp")));
    }

    #[test]
    fn checkpointed_program_compiles_and_frees_earlier() {
        let (g, inputs, loss) = deep_mlp(8);
        let baseline = Program::compile(g.clone(), inputs.clone(), loss);
        let t = apply_checkpointing(&g, loss, 4);
        let ckpt = Program::compile(t, inputs, loss);
        // at least one forward activation now dies in the forward region
        let fwd_ops = baseline
            .graph()
            .ops()
            .iter()
            .position(|o| o.outputs.first() == Some(&loss))
            .unwrap();
        let earlier_frees = |p: &Program| {
            (0..p.graph().num_storages())
                .filter(|&s| {
                    !p.liveness().persistent[s]
                        && p.liveness().last_use[s].is_some_and(|j| j <= fwd_ops)
                })
                .count()
        };
        assert!(
            earlier_frees(&ckpt) > earlier_frees(&baseline),
            "checkpointing must shorten activation lifetimes"
        );
    }

    #[test]
    #[should_panic(expected = "keep_every")]
    fn zero_keep_every_rejected() {
        let (g, _, loss) = deep_mlp(2);
        apply_checkpointing(&g, loss, 0);
    }
}
