//! Concrete kernel dispatch: real `f32` math on host shadow buffers.
//!
//! Used for the paper's MLP case study and for correctness tests. Big-model
//! sweeps use the symbolic executor, which skips this module entirely —
//! both modes replay the identical op tape through the identical allocator,
//! so their traces match.

use crate::graph::{Graph, InitSpec, OpKind, OpRecord, TensorId};
use pinpoint_tensor::kernels::conv::{conv2d_backward_mt, conv2d_forward_mt};
use pinpoint_tensor::kernels::elementwise::{
    add, add_bias, bias_grad, mul, relu, relu_backward, sgd_momentum_step, sgd_step,
};
use pinpoint_tensor::kernels::matmul::{matmul, Transpose};
use pinpoint_tensor::kernels::norm::{batchnorm_backward, batchnorm_forward};
use pinpoint_tensor::kernels::pool::{
    avgpool_backward, avgpool_forward, global_avgpool_backward, global_avgpool_forward,
    maxpool_backward, maxpool_forward,
};
use pinpoint_tensor::kernels::softmax::{softmax_cross_entropy, softmax_cross_entropy_backward};
use pinpoint_tensor::rng::Rng64;

fn t(flag: bool) -> Transpose {
    if flag {
        Transpose::Yes
    } else {
        Transpose::No
    }
}

fn storage(graph: &Graph, id: TensorId) -> usize {
    graph.tensor(id).storage.0
}

fn take(bufs: &mut [Option<Vec<f32>>], s: usize) -> Vec<f32> {
    bufs[s]
        .take()
        .unwrap_or_else(|| panic!("buffer for storage {s} missing"))
}

fn put(bufs: &mut [Option<Vec<f32>>], s: usize, v: Vec<f32>) {
    bufs[s] = Some(v);
}

fn get<'a>(bufs: &'a [Option<Vec<f32>>], graph: &Graph, id: TensorId) -> &'a [f32] {
    let s = storage(graph, id);
    bufs[s]
        .as_deref()
        .unwrap_or_else(|| panic!("buffer for {} missing", graph.tensor(id).name))
}

fn labels_u32(raw: &[f32]) -> Vec<u32> {
    raw.iter().map(|&v| v as u32).collect()
}

/// SplitMix64 → uniform in [0, 1).
fn unit_uniform(seed: u64) -> f64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Fills a fresh buffer according to an init spec, deterministically from
/// the given RNG.
pub(crate) fn fill_init(spec: InitSpec, buf: &mut [f32], rng: &mut Rng64) {
    match spec {
        InitSpec::Zeros => buf.fill(0.0),
        InitSpec::Ones => buf.fill(1.0),
        InitSpec::Uniform { bound } => {
            for v in buf.iter_mut() {
                *v = rng.gen_range_f32(-bound, bound);
            }
        }
        InitSpec::Normal { std } => {
            for v in buf.iter_mut() {
                *v = (rng.gen_normal() * std as f64) as f32;
            }
        }
    }
}

/// Executes one op on the shadow buffers. `step` is the 1-based iteration
/// count (Adam bias correction). `threads` bounds the worker threads the
/// conv kernels may fan out over (results are bit-identical at any count).
/// Returns the scalar loss when the op is the fused loss forward.
pub(crate) fn dispatch(
    op: &OpRecord,
    graph: &Graph,
    bufs: &mut [Option<Vec<f32>>],
    seed: u64,
    step: u64,
    threads: usize,
) -> Option<f32> {
    let s_out = |i: usize| storage(graph, op.outputs[i]);
    match op.kind {
        OpKind::View => unreachable!("views are skipped by the executor"),
        OpKind::MatMul { ta, tb, m, k, n } => {
            let mut y = take(bufs, s_out(0));
            matmul(
                get(bufs, graph, op.inputs[0]),
                t(ta),
                get(bufs, graph, op.inputs[1]),
                t(tb),
                &mut y,
                m,
                k,
                n,
            );
            put(bufs, s_out(0), y);
        }
        OpKind::AddBias { rows, cols } => {
            let mut y = take(bufs, s_out(0));
            add_bias(
                get(bufs, graph, op.inputs[0]),
                get(bufs, graph, op.inputs[1]),
                &mut y,
                rows,
                cols,
            );
            put(bufs, s_out(0), y);
        }
        OpKind::BiasGrad { rows, cols } => {
            let mut db = take(bufs, s_out(0));
            bias_grad(get(bufs, graph, op.inputs[0]), &mut db, rows, cols);
            put(bufs, s_out(0), db);
        }
        OpKind::Relu { .. } => {
            let mut y = take(bufs, s_out(0));
            relu(get(bufs, graph, op.inputs[0]), &mut y);
            put(bufs, s_out(0), y);
        }
        OpKind::ReluGrad { .. } => {
            let mut dx = take(bufs, s_out(0));
            relu_backward(
                get(bufs, graph, op.inputs[0]),
                get(bufs, graph, op.inputs[1]),
                &mut dx,
            );
            put(bufs, s_out(0), dx);
        }
        OpKind::Add { .. } => {
            let mut y = take(bufs, s_out(0));
            add(
                get(bufs, graph, op.inputs[0]),
                get(bufs, graph, op.inputs[1]),
                &mut y,
            );
            put(bufs, s_out(0), y);
        }
        OpKind::SoftmaxXentFwd { rows, cols } => {
            let labels = labels_u32(get(bufs, graph, op.inputs[1]));
            let mut loss_buf = take(bufs, s_out(0));
            let mut probs = take(bufs, s_out(1));
            let loss = softmax_cross_entropy(
                get(bufs, graph, op.inputs[0]),
                &labels,
                &mut probs,
                rows,
                cols,
            );
            loss_buf[0] = loss;
            put(bufs, s_out(0), loss_buf);
            put(bufs, s_out(1), probs);
            return Some(loss);
        }
        OpKind::SoftmaxXentGrad { rows, cols } => {
            let labels = labels_u32(get(bufs, graph, op.inputs[1]));
            let mut d = take(bufs, s_out(0));
            softmax_cross_entropy_backward(
                get(bufs, graph, op.inputs[0]),
                &labels,
                &mut d,
                rows,
                cols,
            );
            put(bufs, s_out(0), d);
        }
        OpKind::Conv2d(g) => {
            let mut y = take(bufs, s_out(0));
            conv2d_forward_mt(
                get(bufs, graph, op.inputs[0]),
                get(bufs, graph, op.inputs[1]),
                &mut y,
                &g,
                threads,
            );
            put(bufs, s_out(0), y);
        }
        OpKind::DepthwiseConv2d(g) => {
            let mut y = take(bufs, s_out(0));
            pinpoint_tensor::kernels::depthwise::depthwise_forward(
                get(bufs, graph, op.inputs[0]),
                get(bufs, graph, op.inputs[1]),
                &mut y,
                &g,
            );
            put(bufs, s_out(0), y);
        }
        OpKind::DepthwiseConv2dGrad(g) => {
            let mut dx = take(bufs, s_out(0));
            let mut dw = take(bufs, s_out(1));
            pinpoint_tensor::kernels::depthwise::depthwise_backward(
                get(bufs, graph, op.inputs[0]),
                get(bufs, graph, op.inputs[1]),
                get(bufs, graph, op.inputs[2]),
                &mut dx,
                &mut dw,
                &g,
            );
            put(bufs, s_out(0), dx);
            put(bufs, s_out(1), dw);
        }
        OpKind::Conv2dGrad(g) => {
            if op.outputs.len() == 2 {
                let mut dx = take(bufs, s_out(0));
                let mut dw = take(bufs, s_out(1));
                conv2d_backward_mt(
                    get(bufs, graph, op.inputs[0]),
                    get(bufs, graph, op.inputs[1]),
                    get(bufs, graph, op.inputs[2]),
                    &mut dx,
                    &mut dw,
                    &g,
                    threads,
                );
                put(bufs, s_out(0), dx);
                put(bufs, s_out(1), dw);
            } else {
                let mut dx = vec![0.0f32; g.n * g.c * g.h * g.w];
                let mut dw = take(bufs, s_out(0));
                conv2d_backward_mt(
                    get(bufs, graph, op.inputs[0]),
                    get(bufs, graph, op.inputs[1]),
                    get(bufs, graph, op.inputs[2]),
                    &mut dx,
                    &mut dw,
                    &g,
                    threads,
                );
                put(bufs, s_out(0), dw);
            }
        }
        OpKind::MaxPoolFwd(g) => {
            let mut y = take(bufs, s_out(0));
            let mut arg_f = take(bufs, s_out(1));
            let mut arg = vec![0u32; arg_f.len()];
            maxpool_forward(get(bufs, graph, op.inputs[0]), &mut y, &mut arg, &g);
            for (f, u) in arg_f.iter_mut().zip(&arg) {
                *f = *u as f32;
            }
            put(bufs, s_out(0), y);
            put(bufs, s_out(1), arg_f);
        }
        OpKind::MaxPoolGrad(g) => {
            let arg: Vec<u32> = get(bufs, graph, op.inputs[1])
                .iter()
                .map(|&v| v as u32)
                .collect();
            let mut dx = take(bufs, s_out(0));
            maxpool_backward(get(bufs, graph, op.inputs[0]), &arg, &mut dx, &g);
            put(bufs, s_out(0), dx);
        }
        OpKind::AvgPoolFwd(g) => {
            let mut y = take(bufs, s_out(0));
            avgpool_forward(get(bufs, graph, op.inputs[0]), &mut y, &g);
            put(bufs, s_out(0), y);
        }
        OpKind::AvgPoolGrad(g) => {
            let mut dx = take(bufs, s_out(0));
            avgpool_backward(get(bufs, graph, op.inputs[0]), &mut dx, &g);
            put(bufs, s_out(0), dx);
        }
        OpKind::GlobalAvgPoolFwd { n, c, hw } => {
            let mut y = take(bufs, s_out(0));
            global_avgpool_forward(get(bufs, graph, op.inputs[0]), &mut y, n, c, hw);
            put(bufs, s_out(0), y);
        }
        OpKind::GlobalAvgPoolGrad { n, c, hw } => {
            let mut dx = take(bufs, s_out(0));
            global_avgpool_backward(get(bufs, graph, op.inputs[0]), &mut dx, n, c, hw);
            put(bufs, s_out(0), dx);
        }
        OpKind::BatchNormFwd {
            n,
            c,
            hw,
            momentum,
            eps,
        } => {
            let mut y = take(bufs, s_out(0));
            let mut sm = take(bufs, s_out(1));
            let mut siv = take(bufs, s_out(2));
            let mut rm = take(bufs, s_out(3));
            let mut rv = take(bufs, s_out(4));
            batchnorm_forward(
                get(bufs, graph, op.inputs[0]),
                get(bufs, graph, op.inputs[1]),
                get(bufs, graph, op.inputs[2]),
                &mut y,
                &mut sm,
                &mut siv,
                &mut rm,
                &mut rv,
                n,
                c,
                hw,
                momentum,
                eps,
            );
            put(bufs, s_out(0), y);
            put(bufs, s_out(1), sm);
            put(bufs, s_out(2), siv);
            put(bufs, s_out(3), rm);
            put(bufs, s_out(4), rv);
        }
        OpKind::BatchNormGrad { n, c, hw } => {
            let mut dx = take(bufs, s_out(0));
            let mut dgamma = take(bufs, s_out(1));
            let mut dbeta = take(bufs, s_out(2));
            batchnorm_backward(
                get(bufs, graph, op.inputs[0]),
                get(bufs, graph, op.inputs[1]),
                get(bufs, graph, op.inputs[2]),
                get(bufs, graph, op.inputs[3]),
                get(bufs, graph, op.inputs[4]),
                &mut dx,
                &mut dgamma,
                &mut dbeta,
                n,
                c,
                hw,
            );
            put(bufs, s_out(0), dx);
            put(bufs, s_out(1), dgamma);
            put(bufs, s_out(2), dbeta);
        }
        OpKind::DropoutFwd { n, p } => {
            let mut y = take(bufs, s_out(0));
            let mut mask = take(bufs, s_out(1));
            let keep_scale = 1.0 / (1.0 - p);
            #[allow(clippy::needless_range_loop)] // i seeds the RNG stream
            for i in 0..n {
                mask[i] = if unit_uniform(seed.wrapping_add(i as u64)) < p as f64 {
                    0.0
                } else {
                    keep_scale
                };
            }
            mul(get(bufs, graph, op.inputs[0]), &mask, &mut y);
            put(bufs, s_out(0), y);
            put(bufs, s_out(1), mask);
        }
        OpKind::DropoutGrad { .. } => {
            let mut dx = take(bufs, s_out(0));
            mul(
                get(bufs, graph, op.inputs[0]),
                get(bufs, graph, op.inputs[1]),
                &mut dx,
            );
            put(bufs, s_out(0), dx);
        }
        OpKind::SgdStep { lr, .. } => {
            let sw = s_out(0);
            let mut w = take(bufs, sw);
            sgd_step(&mut w, get(bufs, graph, op.inputs[1]), lr);
            put(bufs, sw, w);
        }
        OpKind::SgdMomentumStep { lr, mu, .. } => {
            let sw = s_out(0);
            let sv = s_out(1);
            let mut w = take(bufs, sw);
            let mut v = take(bufs, sv);
            sgd_momentum_step(&mut w, &mut v, get(bufs, graph, op.inputs[2]), lr, mu);
            put(bufs, sw, w);
            put(bufs, sv, v);
        }
        OpKind::AdamStep {
            lr,
            beta1,
            beta2,
            eps,
            ..
        } => {
            let (sw, sm, sv) = (s_out(0), s_out(1), s_out(2));
            let mut w = take(bufs, sw);
            let mut m = take(bufs, sm);
            let mut v = take(bufs, sv);
            pinpoint_tensor::kernels::optim::adam_step(
                &mut w,
                &mut m,
                &mut v,
                get(bufs, graph, op.inputs[3]),
                lr,
                beta1,
                beta2,
                eps,
                step,
            );
            put(bufs, sw, w);
            put(bufs, sm, m);
            put(bufs, sv, v);
        }
        OpKind::AllReduce { .. } => {
            // all simulated replicas hold identical gradients, so the
            // average is the identity; touch each bucket member in place
            for i in 0..op.outputs.len() {
                let s = s_out(i);
                let g = take(bufs, s);
                put(bufs, s, g);
            }
        }
        OpKind::ConcatChannels { n, hw, ref parts } => {
            let mut y = take(bufs, s_out(0));
            let inputs: Vec<&[f32]> = op.inputs.iter().map(|&t| get(bufs, graph, t)).collect();
            pinpoint_tensor::kernels::concat::concat_channels(&inputs, &mut y, n, parts, hw);
            put(bufs, s_out(0), y);
        }
        OpKind::SplitChannels { n, hw, ref parts } => {
            let mut outs: Vec<Vec<f32>> = (0..op.outputs.len())
                .map(|i| take(bufs, s_out(i)))
                .collect();
            {
                let mut views: Vec<&mut [f32]> =
                    outs.iter_mut().map(|v| v.as_mut_slice()).collect();
                pinpoint_tensor::kernels::concat::split_channels(
                    get(bufs, graph, op.inputs[0]),
                    &mut views,
                    n,
                    parts,
                    hw,
                );
            }
            for (i, v) in outs.into_iter().enumerate() {
                put(bufs, s_out(i), v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_uniform_is_in_range_and_deterministic() {
        for s in 0..1000u64 {
            let u = unit_uniform(s);
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, unit_uniform(s));
        }
    }

    #[test]
    fn fill_init_shapes_distributions() {
        let mut rng = Rng64::seed_from_u64(7);
        let mut z = vec![1.0f32; 64];
        fill_init(InitSpec::Zeros, &mut z, &mut rng);
        assert!(z.iter().all(|&v| v == 0.0));
        let mut o = vec![0.0f32; 64];
        fill_init(InitSpec::Ones, &mut o, &mut rng);
        assert!(o.iter().all(|&v| v == 1.0));
        let mut u = vec![0.0f32; 4096];
        fill_init(InitSpec::Uniform { bound: 0.5 }, &mut u, &mut rng);
        assert!(u.iter().all(|&v| (-0.5..=0.5).contains(&v)));
        let mean: f32 = u.iter().sum::<f32>() / u.len() as f32;
        assert!(mean.abs() < 0.05, "uniform mean {mean}");
        let mut nrm = vec![0.0f32; 4096];
        fill_init(InitSpec::Normal { std: 2.0 }, &mut nrm, &mut rng);
        let m: f32 = nrm.iter().sum::<f32>() / nrm.len() as f32;
        let var: f32 = nrm.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / nrm.len() as f32;
        assert!(m.abs() < 0.2, "normal mean {m}");
        assert!((var.sqrt() - 2.0).abs() < 0.2, "normal std {}", var.sqrt());
    }
}
