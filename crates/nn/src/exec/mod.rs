//! Program executors: replay the compiled iteration through the
//! instrumented device, in concrete (real math) or symbolic (trace-only)
//! mode.

mod concrete;

use crate::graph::{OpKind, StorageId, TensorId};
use crate::program::Program;
use pinpoint_device::alloc::AllocError;
use pinpoint_device::SimDevice;
use pinpoint_tensor::rng::Rng64;
use pinpoint_trace::{BlockId, MemoryKind};

/// Whether an executor computes real values or only simulates memory/time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Real `f32` math on host shadow buffers (MLP case study, tests).
    Concrete,
    /// Allocator + clock + trace only (big-model sweeps).
    Symbolic,
}

/// One mini-batch of concrete training data.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchData {
    /// Flattened input tensor values (row-major).
    pub input: Vec<f32>,
    /// One label per example, stored as `f32` (cast to class index).
    pub labels: Vec<f32>,
}

/// Per-iteration result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterStats {
    /// Loss value (concrete mode only).
    pub loss: Option<f32>,
    /// Simulated duration of the iteration in nanoseconds.
    pub duration_ns: u64,
}

/// Replays a [`Program`] iteration by iteration through a [`SimDevice`].
///
/// Creating the executor allocates and initializes all persistent storages
/// (weights, optimizer state) on the device — the warm-up mallocs visible at
/// the left edge of the paper's Fig. 2 Gantt chart.
///
/// # Examples
///
/// ```
/// use pinpoint_nn::{GraphBuilder, InitSpec, Program, backward};
/// use pinpoint_nn::exec::{ExecMode, Executor};
/// use pinpoint_device::{DeviceConfig, SimDevice};
///
/// let mut b = GraphBuilder::new();
/// let x = b.input("x", [8, 2]);
/// let y = b.labels("y", 8);
/// let w = b.param("w", [2, 2], InitSpec::Uniform { bound: 0.5 });
/// let h = b.matmul(x, w, false, false, "mm");
/// let (loss, _) = b.softmax_cross_entropy(h, y, "loss");
/// let grads = backward(&mut b, loss);
/// for (p, g) in &grads { b.sgd_step(*p, *g, 0.1, "sgd"); }
/// let program = Program::compile(b.finish(), vec![x, y], loss);
///
/// let device = SimDevice::new(DeviceConfig::deterministic());
/// let mut exec = Executor::new(program, device, ExecMode::Symbolic)?;
/// exec.run_iteration(None)?;
/// assert!(exec.device().trace().len() > 0);
/// # Ok::<(), pinpoint_device::alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct Executor {
    program: Program,
    device: SimDevice,
    mode: ExecMode,
    /// Device block per storage (None = not currently allocated).
    blocks: Vec<Option<BlockId>>,
    /// Host shadow buffers per storage (concrete mode).
    buffers: Vec<Option<Vec<f32>>>,
    storage_sizes: Vec<usize>,
    iter: u64,
    loss_history: Vec<f32>,
    seed: u64,
    /// Worker threads for concrete conv kernels (1 = sequential). Never
    /// affects the trace or the numerics — kernels are bit-identical at
    /// every thread count.
    threads: usize,
}

impl Executor {
    /// Builds an executor with the default seed. See [`Executor::with_seed`].
    ///
    /// # Errors
    ///
    /// Propagates device OOM while allocating persistent storages.
    pub fn new(program: Program, device: SimDevice, mode: ExecMode) -> Result<Self, AllocError> {
        Self::with_seed(program, device, mode, 0x5EED)
    }

    /// Builds an executor, allocating and initializing persistent storages
    /// deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates device OOM while allocating persistent storages.
    pub fn with_seed(
        program: Program,
        mut device: SimDevice,
        mode: ExecMode,
        seed: u64,
    ) -> Result<Self, AllocError> {
        let n = program.graph().num_storages();
        let storage_sizes = program.graph().storage_sizes();
        let mut blocks = vec![None; n];
        let mut buffers: Vec<Option<Vec<f32>>> = vec![None; n];
        // allocate + initialize persistent storages
        let owners: Vec<_> = program
            .graph()
            .storage_owners()
            .iter()
            .map(|o| (o.kind, o.name.clone(), o.persistent, o.init))
            .collect();
        for (s, (kind, name, persistent, init)) in owners.iter().enumerate() {
            if !persistent {
                continue;
            }
            let id = device.malloc(storage_sizes[s], *kind, Some(name))?;
            blocks[s] = Some(id);
            device.launch_kernel(
                &format!("init.{name}"),
                0,
                storage_sizes[s] as u64,
                &[],
                &[id],
            );
            if mode == ExecMode::Concrete {
                let mut buf = vec![0.0f32; storage_sizes[s] / 4];
                let mut rng = Rng64::seed_from_u64(seed ^ (s as u64).wrapping_mul(0x9E37));
                if let Some(spec) = init {
                    concrete::fill_init(*spec, &mut buf, &mut rng);
                }
                buffers[s] = Some(buf);
            }
        }
        Ok(Executor {
            program,
            device,
            mode,
            blocks,
            buffers,
            storage_sizes,
            iter: 0,
            loss_history: Vec::new(),
            seed,
            threads: 1,
        })
    }

    /// Sets the worker-thread budget for concrete conv kernels. Zero is
    /// clamped to one. Results stay bit-identical at every count.
    pub fn set_threads(&mut self, n: usize) {
        self.threads = n.max(1);
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The device (and its trace so far).
    pub fn device(&self) -> &SimDevice {
        &self.device
    }

    /// Mutable device access, for drivers that interleave extra work
    /// (e.g. a per-epoch evaluation buffer) with training iterations.
    pub fn device_mut(&mut self) -> &mut SimDevice {
        &mut self.device
    }

    /// Losses of all concrete iterations so far.
    pub fn loss_history(&self) -> &[f32] {
        &self.loss_history
    }

    /// Number of iterations run.
    pub fn iterations_run(&self) -> u64 {
        self.iter
    }

    /// Consumes the executor, returning the device (with its full trace).
    pub fn into_device(self) -> SimDevice {
        self.device
    }

    /// A copy of a parameter's current values (concrete mode).
    pub fn param_values(&self, t: TensorId) -> Option<Vec<f32>> {
        let s = self.program.graph().tensor(t).storage.0;
        self.buffers[s].clone()
    }

    fn storage_of(&self, t: TensorId) -> StorageId {
        self.program.graph().tensor(t).storage
    }

    fn ensure_buffer(&mut self, s: StorageId) {
        if self.mode == ExecMode::Concrete && self.buffers[s.0].is_none() {
            self.buffers[s.0] = Some(vec![0.0f32; self.storage_sizes[s.0] / 4]);
        }
    }

    /// Runs one training iteration.
    ///
    /// In concrete mode `batch` must be `Some` and its lengths must match
    /// the program's input shapes; in symbolic mode it is ignored.
    ///
    /// # Errors
    ///
    /// Propagates device OOM.
    ///
    /// # Panics
    ///
    /// Panics in concrete mode when `batch` is missing or mis-sized.
    pub fn run_iteration(&mut self, batch: Option<&BatchData>) -> Result<IterStats, AllocError> {
        let t_start = self.device.now_ns();
        self.device.mark(format!("iter:{}", self.iter));
        // stage inputs host→device
        let inputs: Vec<TensorId> = self.program.inputs().to_vec();
        for (idx, &t) in inputs.iter().enumerate() {
            let s = self.storage_of(t);
            let size = self.storage_sizes[s.0];
            let name = self.program.graph().tensor(t).name.clone();
            let id = self.device.malloc(size, MemoryKind::Input, Some(&name))?;
            self.blocks[s.0] = Some(id);
            self.device.h2d(size, id, &format!("stage.{name}"));
            if self.mode == ExecMode::Concrete {
                let batch = batch.expect("concrete execution needs batch data");
                let data = match idx {
                    0 => &batch.input,
                    1 => &batch.labels,
                    _ => panic!("concrete mode supports (input, labels) staging"),
                };
                assert_eq!(
                    data.len(),
                    size / 4,
                    "batch field {idx} has {} values, expected {}",
                    data.len(),
                    size / 4
                );
                self.buffers[s.0] = Some(data.clone());
            }
        }
        let loss_storage = self.storage_of(self.program.loss());
        let mut iter_loss = None;
        // replay the tape
        let num_ops = self.program.graph().ops().len();
        for j in 0..num_ops {
            let op = self.program.graph().ops()[j].clone();
            if matches!(op.kind, OpKind::View) {
                continue;
            }
            // first-definition mallocs
            for &out in &op.outputs {
                let s = self.storage_of(out);
                if self.blocks[s.0].is_none() {
                    let meta = self.program.graph().tensor(out);
                    debug_assert!(!meta.persistent, "persistent storages pre-allocated");
                    let name = meta.name.clone();
                    let kind = meta.kind;
                    let id = self
                        .device
                        .malloc(self.storage_sizes[s.0], kind, Some(&name))?;
                    self.blocks[s.0] = Some(id);
                    self.ensure_buffer(s);
                }
            }
            // transient workspace
            let ws = if op.workspace_bytes > 0 {
                Some(self.device.malloc(
                    op.workspace_bytes,
                    MemoryKind::Workspace,
                    Some(&format!("{}.ws", op.name)),
                )?)
            } else {
                None
            };
            // operand event lists (dedup per block)
            let mut reads: Vec<BlockId> = Vec::new();
            for &t in &op.inputs {
                let id = self.blocks[self.storage_of(t).0]
                    .unwrap_or_else(|| panic!("op {} reads unallocated {}", op.name, t.0));
                if !reads.contains(&id) {
                    reads.push(id);
                }
            }
            let mut writes: Vec<BlockId> = Vec::new();
            for &t in &op.outputs {
                let id = self.blocks[self.storage_of(t).0].expect("output allocated above");
                if !writes.contains(&id) {
                    writes.push(id);
                }
            }
            if let Some(ws) = ws {
                reads.push(ws);
                writes.push(ws);
            }
            self.device
                .launch_kernel(&op.name, op.flops, op.bytes, &reads, &writes);
            if let Some(ws) = ws {
                self.device.free(ws)?;
            }
            if self.mode == ExecMode::Concrete {
                let op_seed = self
                    .seed
                    .wrapping_add(self.iter.wrapping_mul(1_000_003))
                    .wrapping_add(j as u64);
                if let Some(loss) = concrete::dispatch(
                    &op,
                    self.program.graph(),
                    &mut self.buffers,
                    op_seed,
                    self.iter + 1,
                    self.threads,
                ) {
                    iter_loss = Some(loss);
                }
            }
            // liveness frees
            for s in self.program.liveness().frees_after(j, loss_storage) {
                if let Some(id) = self.blocks[s.0].take() {
                    self.device.free(id)?;
                }
            }
        }
        // fetch the program output (the loss scalar, or the logits of a
        // forward-only program) and release it
        if let Some(loss_block) = self.blocks[loss_storage.0].take() {
            let bytes = self.storage_sizes[loss_storage.0];
            self.device.d2h(bytes, loss_block, "fetch_output");
            self.device.free(loss_block)?;
        }
        // safety net: nothing non-persistent may survive the iteration
        for (s, blk) in self.blocks.iter_mut().enumerate() {
            if blk.is_some() && !self.program.liveness().persistent[s] {
                let id = blk.take().expect("checked above");
                self.device.free(id)?;
            }
        }
        if let Some(l) = iter_loss {
            self.loss_history.push(l);
        }
        self.iter += 1;
        Ok(IterStats {
            loss: iter_loss,
            duration_ns: self.device.now_ns() - t_start,
        })
    }

    /// Runs `n` symbolic iterations (convenience for sweeps).
    ///
    /// # Errors
    ///
    /// Propagates device OOM.
    pub fn run_iterations(&mut self, n: usize) -> Result<(), AllocError> {
        for _ in 0..n {
            self.run_iteration(None)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::backward;
    use crate::builder::GraphBuilder;
    use crate::graph::InitSpec;
    use pinpoint_device::DeviceConfig;
    use pinpoint_trace::EventKind;

    fn mlp_program(batch: usize, hidden: usize) -> Program {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [batch, 2]);
        let y = b.labels("y", batch);
        let w0 = b.param("w0", [2, hidden], InitSpec::Uniform { bound: 1.0 });
        let b0 = b.param("b0", [hidden], InitSpec::Zeros);
        let w1 = b.param("w1", [hidden, 2], InitSpec::Uniform { bound: 0.3 });
        let b1 = b.param("b1", [2], InitSpec::Zeros);
        let h = b.matmul(x, w0, false, false, "fc0.matmul");
        let h = b.add_bias(h, b0, "fc0.bias");
        let h = b.relu(h, "fc0.relu");
        let l = b.matmul(h, w1, false, false, "fc1.matmul");
        let l = b.add_bias(l, b1, "fc1.bias");
        let (loss, _) = b.softmax_cross_entropy(l, y, "loss");
        let grads = backward(&mut b, loss);
        for (p, g) in &grads {
            b.sgd_step(*p, *g, 0.5, "sgd");
        }
        Program::compile(b.finish(), vec![x, y], loss)
    }

    fn two_blobs(batch: usize, iter: u64) -> BatchData {
        // class 0 near (-1, -1), class 1 near (1, 1); deterministic
        let mut input = Vec::with_capacity(batch * 2);
        let mut labels = Vec::with_capacity(batch);
        for i in 0..batch {
            let c = (i + iter as usize) % 2;
            let center = if c == 0 { -1.0 } else { 1.0 };
            let jitter = ((i as f32 * 12.9898 + iter as f32 * 78.233).sin() * 43758.5) % 0.5;
            input.push(center + jitter * 0.2);
            input.push(center - jitter * 0.2);
            labels.push(c as f32);
        }
        BatchData { input, labels }
    }

    #[test]
    fn symbolic_iterations_produce_valid_trace() {
        let p = mlp_program(128, 64);
        let dev = SimDevice::new(DeviceConfig::deterministic());
        let mut exec = Executor::new(p, dev, ExecMode::Symbolic).unwrap();
        exec.run_iterations(5).unwrap();
        let dev = exec.into_device();
        dev.trace().validate().unwrap();
        assert_eq!(dev.trace().markers().len(), 5);
        // no non-persistent memory leaks: live bytes after == persistent bytes
        let stats = dev.alloc_stats();
        assert!(stats.allocated_bytes > 0);
        // only the four persistent parameters remain live
        assert_eq!(stats.num_mallocs - stats.num_frees, 4);
    }

    #[test]
    fn steady_state_iterations_have_identical_event_shape() {
        let p = mlp_program(64, 32);
        let dev = SimDevice::new(DeviceConfig::deterministic());
        let mut exec = Executor::new(p, dev, ExecMode::Symbolic).unwrap();
        exec.run_iterations(4).unwrap();
        let dev = exec.into_device();
        let trace = dev.trace();
        // slice events per iteration marker and compare (kind, size, offset)
        let per_iter: Vec<Vec<(EventKind, usize, usize)>> = (0..trace.markers().len())
            .map(|i| {
                trace
                    .events_of_marker(i)
                    .iter()
                    .map(|e| (e.kind, e.size, e.offset))
                    .collect()
            })
            .collect();
        // iterations 1.. are identical; iteration 0 may include warm-up
        for w in per_iter[1..].windows(2) {
            assert_eq!(w[0], w[1], "steady-state iterations must repeat exactly");
        }
    }

    #[test]
    fn concrete_training_reduces_loss_on_separable_blobs() {
        let batch = 32;
        let p = mlp_program(batch, 16);
        let dev = SimDevice::new(DeviceConfig::deterministic());
        let mut exec = Executor::new(p, dev, ExecMode::Concrete).unwrap();
        for i in 0..30 {
            let b = two_blobs(batch, i);
            exec.run_iteration(Some(&b)).unwrap();
        }
        let hist = exec.loss_history();
        assert_eq!(hist.len(), 30);
        let first = hist[0];
        let last = *hist.last().unwrap();
        assert!(
            last < first * 0.5,
            "loss should drop on separable data: {first} -> {last}"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn concrete_and_symbolic_traces_match() {
        let make = || {
            let p = mlp_program(16, 8);
            SimDevice::new(DeviceConfig::deterministic());
            p
        };
        let dev1 = SimDevice::new(DeviceConfig::deterministic());
        let mut e1 = Executor::new(make(), dev1, ExecMode::Symbolic).unwrap();
        e1.run_iterations(3).unwrap();
        let dev2 = SimDevice::new(DeviceConfig::deterministic());
        let mut e2 = Executor::new(make(), dev2, ExecMode::Concrete).unwrap();
        for i in 0..3 {
            e2.run_iteration(Some(&two_blobs(16, i))).unwrap();
        }
        let t1 = e1.into_device().into_trace();
        let t2 = e2.into_device().into_trace();
        assert_eq!(t1.len(), t2.len());
        for (a, b) in t1.events().iter().zip(t2.events()) {
            assert_eq!(a, b, "symbolic and concrete traces must be identical");
        }
    }

    #[test]
    fn duration_is_positive_and_stable() {
        let p = mlp_program(128, 12288);
        let dev = SimDevice::new(DeviceConfig::deterministic());
        let mut exec = Executor::new(p, dev, ExecMode::Symbolic).unwrap();
        let s1 = exec.run_iteration(None).unwrap();
        let s2 = exec.run_iteration(None).unwrap();
        assert!(s1.duration_ns > 0);
        // deterministic cost model + same tape → very similar durations
        let ratio = s1.duration_ns as f64 / s2.duration_ns as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }
}
