//! The graph IR: tensors, storages, and op records.
//!
//! A training iteration is captured once as a list of [`OpRecord`]s (forward,
//! backward, optimizer) over [`TensorId`]s; the executors then replay it
//! iteration after iteration through the instrumented device. Tensors that
//! alias the same device memory (views) share a [`StorageId`] — the unit of
//! allocation, and therefore the unit the paper's trace observes.

use pinpoint_tensor::kernels::conv::Conv2dGeom;
use pinpoint_tensor::kernels::depthwise::DwConv2dGeom;
use pinpoint_tensor::kernels::pool::Pool2dGeom;
use pinpoint_tensor::Shape;
use pinpoint_trace::MemoryKind;

/// Identity of a logical tensor in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TensorId(pub usize);

/// Identity of a device storage (allocation unit); views share one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StorageId(pub usize);

/// How a persistent tensor is initialized before training starts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitSpec {
    /// All zeros (biases, momentum buffers, running means).
    Zeros,
    /// All ones (batch-norm gammas, running variances).
    Ones,
    /// Uniform in `[-bound, bound]` — Kaiming-style when
    /// `bound = sqrt(6 / fan_in)`.
    Uniform {
        /// Symmetric bound of the distribution.
        bound: f32,
    },
    /// Zero-mean Gaussian with the given standard deviation.
    Normal {
        /// Standard deviation.
        std: f32,
    },
}

/// Metadata of one logical tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorMeta {
    /// Logical shape.
    pub shape: Shape,
    /// Content tag used for the paper's breakdown figures.
    pub kind: MemoryKind,
    /// Human-readable name (layer-scoped, e.g. `"fc1.weight"`).
    pub name: String,
    /// The storage this tensor occupies (views share).
    pub storage: StorageId,
    /// Whether the storage outlives iterations (parameters, optimizer
    /// state, running statistics).
    pub persistent: bool,
    /// Initialization for persistent tensors.
    pub init: Option<InitSpec>,
}

impl TensorMeta {
    /// Dense size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.shape.size_bytes()
    }
}

/// The operation an [`OpRecord`] performs.
///
/// Every variant carries the static attributes the executors need: shapes
/// for kernel dispatch and the basis for FLOP/byte accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Zero-cost alias (reshape/flatten); no device events.
    View,
    /// `y = op(a) · op(b)`, with optional transposes.
    MatMul {
        /// Transpose the left operand.
        ta: bool,
        /// Transpose the right operand.
        tb: bool,
        /// Rows of the logical product.
        m: usize,
        /// Contraction extent.
        k: usize,
        /// Columns of the logical product.
        n: usize,
    },
    /// `y[r, c] = x[r, c] + bias[c]`.
    AddBias {
        /// Rows.
        rows: usize,
        /// Columns (bias length).
        cols: usize,
    },
    /// `db = column-sum(dy)`.
    BiasGrad {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Rectified linear unit over `n` elements.
    Relu {
        /// Element count.
        n: usize,
    },
    /// ReLU backward over `n` elements.
    ReluGrad {
        /// Element count.
        n: usize,
    },
    /// Elementwise sum of two same-shaped tensors.
    Add {
        /// Element count.
        n: usize,
    },
    /// Fused softmax + mean cross-entropy; outputs scalar loss and probs.
    SoftmaxXentFwd {
        /// Batch rows.
        rows: usize,
        /// Class count.
        cols: usize,
    },
    /// Gradient of the fused loss w.r.t. the logits.
    SoftmaxXentGrad {
        /// Batch rows.
        rows: usize,
        /// Class count.
        cols: usize,
    },
    /// 2-D convolution forward.
    Conv2d(Conv2dGeom),
    /// 2-D convolution backward (dx and/or dw; see outputs).
    Conv2dGrad(Conv2dGeom),
    /// Depthwise 2-D convolution forward (one filter per channel).
    DepthwiseConv2d(DwConv2dGeom),
    /// Depthwise convolution backward (dx and dw).
    DepthwiseConv2dGrad(DwConv2dGeom),
    /// Max-pool forward; outputs pooled values and argmax indices.
    MaxPoolFwd(Pool2dGeom),
    /// Max-pool backward via saved argmax.
    MaxPoolGrad(Pool2dGeom),
    /// Average-pool forward.
    AvgPoolFwd(Pool2dGeom),
    /// Average-pool backward.
    AvgPoolGrad(Pool2dGeom),
    /// Global average pool `[N,C,H,W] -> [N,C]`.
    GlobalAvgPoolFwd {
        /// Batch.
        n: usize,
        /// Channels.
        c: usize,
        /// Spatial positions per channel.
        hw: usize,
    },
    /// Backward of the global average pool.
    GlobalAvgPoolGrad {
        /// Batch.
        n: usize,
        /// Channels.
        c: usize,
        /// Spatial positions per channel.
        hw: usize,
    },
    /// Batch-norm forward (training mode).
    BatchNormFwd {
        /// Batch.
        n: usize,
        /// Channels.
        c: usize,
        /// Spatial positions per channel.
        hw: usize,
        /// Running-stat momentum.
        momentum: f32,
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// Batch-norm backward.
    BatchNormGrad {
        /// Batch.
        n: usize,
        /// Channels.
        c: usize,
        /// Spatial positions per channel.
        hw: usize,
    },
    /// Inverted dropout forward; outputs y and the scaled 0/1 mask.
    DropoutFwd {
        /// Element count.
        n: usize,
        /// Drop probability.
        p: f32,
    },
    /// Dropout backward via saved mask.
    DropoutGrad {
        /// Element count.
        n: usize,
    },
    /// `w -= lr * g` in place.
    SgdStep {
        /// Element count.
        n: usize,
        /// Learning rate.
        lr: f32,
    },
    /// Momentum SGD: `v = mu v + g; w -= lr v`, in place.
    SgdMomentumStep {
        /// Element count.
        n: usize,
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        mu: f32,
    },
    /// Adam: first/second-moment buffers and bias-corrected update, in
    /// place on `w`, `m`, `v`. The executor supplies the step count.
    AdamStep {
        /// Element count.
        n: usize,
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// Channel concatenation: k NCHW inputs with channel counts `parts`
    /// merge into one `[n, Σparts, hw]` output (Inception branches).
    ConcatChannels {
        /// Batch.
        n: usize,
        /// Spatial positions per channel.
        hw: usize,
        /// Channels contributed by each input, in order.
        parts: Vec<usize>,
    },
    /// Data-parallel gradient all-reduce over one fused bucket: averages
    /// the listed gradient tensors across `world_size` replicas, in place
    /// (bucket views, as in DDP — no extra device memory). The op's byte
    /// cost encodes the ring-all-reduce wire time.
    AllReduce {
        /// Total elements in the bucket.
        n: usize,
        /// Number of replicas.
        world_size: usize,
    },
    /// Inverse of [`OpKind::ConcatChannels`]: splits the gradient back into
    /// one output per branch.
    SplitChannels {
        /// Batch.
        n: usize,
        /// Spatial positions per channel.
        hw: usize,
        /// Channels of each output, in order.
        parts: Vec<usize>,
    },
}

impl OpKind {
    /// Whether this op is a pure-metadata alias with no device activity.
    pub fn is_view(&self) -> bool {
        matches!(self, OpKind::View)
    }
}

/// One recorded operation of the iteration program.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRecord {
    /// What the op computes.
    pub kind: OpKind,
    /// Tensors read.
    pub inputs: Vec<TensorId>,
    /// Tensors written. Fresh tensors are defined here; pre-existing ids
    /// (e.g. a weight updated in place) are read-modify-write targets.
    pub outputs: Vec<TensorId>,
    /// Transient kernel workspace (im2col buffers): allocated right before
    /// launch and freed right after, tagged `MemoryKind::Workspace`.
    pub workspace_bytes: usize,
    /// FLOPs for the cost model.
    pub flops: u64,
    /// Bytes moved through DRAM (sum of operand sizes) for the cost model.
    pub bytes: u64,
    /// Scoped display name, e.g. `"fc1.matmul.fwd"`.
    pub name: String,
}

/// The complete recorded graph: tensor table plus op tape.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    pub(crate) tensors: Vec<TensorMeta>,
    pub(crate) ops: Vec<OpRecord>,
    pub(crate) num_storages: usize,
}

impl Graph {
    /// Metadata of a tensor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn tensor(&self, id: TensorId) -> &TensorMeta {
        &self.tensors[id.0]
    }

    /// All tensors, indexable by [`TensorId`].
    pub fn tensors(&self) -> &[TensorMeta] {
        &self.tensors
    }

    /// The op tape in execution order.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Number of distinct storages (allocation units).
    pub fn num_storages(&self) -> usize {
        self.num_storages
    }

    /// The size in bytes of each storage (max over tensors sharing it).
    pub fn storage_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_storages];
        for t in &self.tensors {
            let s = t.storage.0;
            sizes[s] = sizes[s].max(t.size_bytes());
        }
        sizes
    }

    /// For each storage, the kind/name/persistence of its first tensor
    /// (views inherit the base tensor's tagging).
    pub fn storage_owners(&self) -> Vec<&TensorMeta> {
        let mut owner: Vec<Option<&TensorMeta>> = vec![None; self.num_storages];
        for t in &self.tensors {
            let slot = &mut owner[t.storage.0];
            if slot.is_none() {
                *slot = Some(t);
            }
        }
        owner
            .into_iter()
            .map(|o| o.expect("every storage has at least one tensor"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str, storage: usize, numel: usize) -> TensorMeta {
        TensorMeta {
            shape: Shape::new(vec![numel]),
            kind: MemoryKind::Activation,
            name: name.to_string(),
            storage: StorageId(storage),
            persistent: false,
            init: None,
        }
    }

    #[test]
    fn storage_sizes_take_max_over_views() {
        let g = Graph {
            tensors: vec![meta("a", 0, 16), meta("a_view", 0, 16), meta("b", 1, 4)],
            ops: vec![],
            num_storages: 2,
        };
        assert_eq!(g.storage_sizes(), vec![64, 16]);
    }

    #[test]
    fn storage_owner_is_first_tensor() {
        let g = Graph {
            tensors: vec![meta("base", 0, 8), meta("view", 0, 8)],
            ops: vec![],
            num_storages: 1,
        };
        assert_eq!(g.storage_owners()[0].name, "base");
    }

    #[test]
    fn view_is_the_only_zero_cost_kind() {
        assert!(OpKind::View.is_view());
        assert!(!OpKind::Relu { n: 4 }.is_view());
    }
}
