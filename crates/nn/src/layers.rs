//! Layer building blocks over the graph builder.
//!
//! Layers register their parameters at construction time and emit forward
//! ops in `forward`. Convolution layers are bias-free (batch-normed
//! architectures never use conv biases, and for the classical nets the
//! omitted biases are a negligible ~0.002 % of parameter bytes; see
//! DESIGN.md).

use crate::builder::GraphBuilder;
use crate::graph::{InitSpec, TensorId};

fn kaiming_uniform(fan_in: usize) -> InitSpec {
    InitSpec::Uniform {
        bound: (6.0 / fan_in as f32).sqrt(),
    }
}

/// A fully connected layer `y = x W (+ b)`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight tensor, shape `[in_features, out_features]`.
    pub weight: TensorId,
    /// Optional bias, shape `[out_features]`.
    pub bias: Option<TensorId>,
    name: String,
}

impl Linear {
    /// Declares the layer's parameters under `name`.
    pub fn new(
        b: &mut GraphBuilder,
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
    ) -> Self {
        let weight = b.param(
            &format!("{name}.weight"),
            [in_features, out_features],
            kaiming_uniform(in_features),
        );
        let bias = bias.then(|| b.param(&format!("{name}.bias"), [out_features], InitSpec::Zeros));
        Linear {
            weight,
            bias,
            name: name.to_string(),
        }
    }

    /// Emits the layer's forward ops.
    pub fn forward(&self, b: &mut GraphBuilder, x: TensorId) -> TensorId {
        let mut y = b.matmul(
            x,
            self.weight,
            false,
            false,
            &format!("{}.matmul", self.name),
        );
        if let Some(bias) = self.bias {
            y = b.add_bias(y, bias, &format!("{}.bias_add", self.name));
        }
        y
    }
}

/// A 2-D convolution layer (NCHW, square kernels, bias-free).
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Weight tensor, shape `[out_channels, in_channels, k, k]`.
    pub weight: TensorId,
    stride: usize,
    pad: usize,
    name: String,
}

impl Conv2d {
    /// Declares the layer's parameters under `name`.
    pub fn new(
        b: &mut GraphBuilder,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        let weight = b.param(
            &format!("{name}.weight"),
            [out_channels, in_channels, k, k],
            kaiming_uniform(in_channels * k * k),
        );
        Conv2d {
            weight,
            stride,
            pad,
            name: name.to_string(),
        }
    }

    /// Emits the layer's forward op.
    pub fn forward(&self, b: &mut GraphBuilder, x: TensorId) -> TensorId {
        b.conv2d(x, self.weight, self.stride, self.pad, &self.name)
    }
}

/// A depthwise 2-D convolution layer (one `k×k` filter per channel).
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    /// Weight tensor, shape `[channels, 1, k, k]`.
    pub weight: TensorId,
    stride: usize,
    pad: usize,
    name: String,
}

impl DepthwiseConv2d {
    /// Declares the layer's parameters under `name`.
    pub fn new(
        b: &mut GraphBuilder,
        name: &str,
        channels: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        let weight = b.param(
            &format!("{name}.weight"),
            [channels, 1, k, k],
            kaiming_uniform(k * k),
        );
        DepthwiseConv2d {
            weight,
            stride,
            pad,
            name: name.to_string(),
        }
    }

    /// Emits the layer's forward op.
    pub fn forward(&self, b: &mut GraphBuilder, x: TensorId) -> TensorId {
        b.depthwise_conv2d(x, self.weight, self.stride, self.pad, &self.name)
    }
}

/// Batch normalization over channels of NCHW (or features of NC) input.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    /// Per-channel scale.
    pub gamma: TensorId,
    /// Per-channel shift.
    pub beta: TensorId,
    running_mean: TensorId,
    running_var: TensorId,
    momentum: f32,
    eps: f32,
    name: String,
}

impl BatchNorm2d {
    /// Declares parameters and running statistics for `channels`.
    pub fn new(b: &mut GraphBuilder, name: &str, channels: usize) -> Self {
        let gamma = b.param(&format!("{name}.gamma"), [channels], InitSpec::Ones);
        let beta = b.param(&format!("{name}.beta"), [channels], InitSpec::Zeros);
        let running_mean = b.state(&format!("{name}.running_mean"), [channels], InitSpec::Zeros);
        let running_var = b.state(&format!("{name}.running_var"), [channels], InitSpec::Ones);
        BatchNorm2d {
            gamma,
            beta,
            running_mean,
            running_var,
            momentum: 0.1,
            eps: 1e-5,
            name: name.to_string(),
        }
    }

    /// Emits the layer's forward op (training mode).
    pub fn forward(&self, b: &mut GraphBuilder, x: TensorId) -> TensorId {
        b.batchnorm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            self.momentum,
            self.eps,
            &self.name,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::MemoryKind;

    #[test]
    fn linear_declares_params_and_chains_ops() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [8, 4]);
        let fc = Linear::new(&mut b, "fc", 4, 6, true);
        let y = fc.forward(&mut b, x);
        assert_eq!(b.shape(y).dims(), &[8, 6]);
        assert_eq!(b.graph().tensor(fc.weight).kind, MemoryKind::Weight);
        assert_eq!(b.graph().tensor(fc.weight).name, "fc.weight");
        assert_eq!(b.graph().ops().len(), 2);
    }

    #[test]
    fn linear_without_bias_emits_single_op() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [8, 4]);
        let fc = Linear::new(&mut b, "fc", 4, 6, false);
        let _ = fc.forward(&mut b, x);
        assert_eq!(b.graph().ops().len(), 1);
    }

    #[test]
    fn conv_bn_stack_shapes() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [2, 3, 16, 16]);
        let conv = Conv2d::new(&mut b, "conv1", 3, 8, 3, 2, 1);
        let bn = BatchNorm2d::new(&mut b, "bn1", 8);
        let y = conv.forward(&mut b, x);
        let y = bn.forward(&mut b, y);
        assert_eq!(b.shape(y).dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn kaiming_bound_shrinks_with_fan_in() {
        let InitSpec::Uniform { bound: b1 } = kaiming_uniform(10) else {
            panic!()
        };
        let InitSpec::Uniform { bound: b2 } = kaiming_uniform(1000) else {
            panic!()
        };
        assert!(b1 > b2);
    }
}
