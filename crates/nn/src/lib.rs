//! # pinpoint-nn
//!
//! A from-scratch, define-by-run DNN training framework built so its memory
//! behavior can be *pinpointed* — the substrate for the reproduction of
//! *"Pinpointing the Memory Behaviors of DNN Training"* (ISPASS 2021).
//!
//! The pipeline mirrors an eager framework's runtime:
//!
//! 1. [`GraphBuilder`] records one training iteration as a tape of ops
//!    (layers in [`layers`], loss, [`backward`] autograd emission, an
//!    [`Optimizer`] step);
//! 2. [`Program::compile`] runs storage [`Liveness`] analysis — when an
//!    eager framework's refcounts would drop each tensor;
//! 3. [`exec::Executor`] replays the tape through an instrumented
//!    [`pinpoint_device::SimDevice`], either **concretely** (real `f32`
//!    math; the paper's MLP case study) or **symbolically** (allocator,
//!    clock and trace only; the AlexNet/ResNet sweeps), producing the
//!    `malloc`/`free`/`read`/`write` traces the paper analyzes.
//!
//! # Examples
//!
//! Building and symbolically executing the paper's Fig. 1 MLP:
//!
//! ```
//! use pinpoint_nn::{backward, layers::Linear, GraphBuilder, Optimizer, Program};
//! use pinpoint_nn::exec::{ExecMode, Executor};
//! use pinpoint_device::{DeviceConfig, SimDevice};
//!
//! let mut b = GraphBuilder::new();
//! let x = b.input("x", [128, 2]);
//! let y = b.labels("y", 128);
//! let fc0 = Linear::new(&mut b, "fc0", 2, 12288, true);
//! let fc1 = Linear::new(&mut b, "fc1", 12288, 2, true);
//! let h = fc0.forward(&mut b, x);
//! let h = b.relu(h, "relu");
//! let logits = fc1.forward(&mut b, h);
//! let (loss, _) = b.softmax_cross_entropy(logits, y, "loss");
//! let grads = backward(&mut b, loss);
//! Optimizer::Sgd { lr: 0.01 }.emit_step(&mut b, &grads);
//! let program = Program::compile(b.finish(), vec![x, y], loss);
//!
//! let device = SimDevice::new(DeviceConfig::titan_x_pascal());
//! let mut exec = Executor::new(program, device, ExecMode::Symbolic)?;
//! exec.run_iterations(5)?;
//! exec.device().trace().validate().expect("well-formed trace");
//! # Ok::<(), pinpoint_device::alloc::AllocError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod autograd;
mod builder;
pub mod checkpoint;
pub mod exec;
mod graph;
pub mod layers;
mod liveness;
mod optim;
mod program;

pub use autograd::backward;
pub use builder::GraphBuilder;
pub use graph::{Graph, InitSpec, OpKind, OpRecord, StorageId, TensorId, TensorMeta};
pub use liveness::Liveness;
pub use optim::Optimizer;
pub use program::{Program, ProgramSummary};
