//! Storage liveness analysis.
//!
//! The executors free a device block as soon as its storage's last consumer
//! has run — the behavior of a refcounting eager framework, and the source
//! of the staircase lifetimes visible in the paper's Fig. 2 Gantt chart.

use crate::graph::{Graph, StorageId, TensorId};

/// Per-storage liveness facts for one iteration program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    /// Op index that first defines each storage (`None` for persistent
    /// storages and for input storages, which are staged before op 0).
    pub first_def: Vec<Option<usize>>,
    /// Op index of the last use (read or write) of each storage.
    pub last_use: Vec<Option<usize>>,
    /// Whether the storage survives across iterations.
    pub persistent: Vec<bool>,
}

impl Liveness {
    /// Computes liveness for `graph`, treating `inputs` as staged before the
    /// first op and the `loss` tensor's storage as kept until iteration end
    /// (it is fetched device→host after the last op).
    pub fn analyze(graph: &Graph, inputs: &[TensorId], loss: TensorId) -> Liveness {
        let n = graph.num_storages();
        let mut first_def = vec![None; n];
        let mut last_use = vec![None; n];
        let mut persistent = vec![false; n];
        for t in graph.tensors() {
            if t.persistent {
                persistent[t.storage.0] = true;
            }
        }
        let input_storages: Vec<StorageId> =
            inputs.iter().map(|t| graph.tensor(*t).storage).collect();
        for (j, op) in graph.ops().iter().enumerate() {
            for &t in op.inputs.iter().chain(op.outputs.iter()) {
                let s = graph.tensor(t).storage;
                last_use[s.0] = Some(j);
            }
            for &t in &op.outputs {
                let s = graph.tensor(t).storage;
                if first_def[s.0].is_none() && !persistent[s.0] && !input_storages.contains(&s) {
                    first_def[s.0] = Some(j);
                }
            }
        }
        // the loss is read by the host after the final op: extend its life
        let loss_storage = graph.tensor(loss).storage;
        if !graph.ops().is_empty() {
            last_use[loss_storage.0] = Some(graph.ops().len() - 1);
        }
        Liveness {
            first_def,
            last_use,
            persistent,
        }
    }

    /// Storages to free immediately after op `j` (non-persistent storages
    /// whose last use is `j`), excluding `keep` (the loss storage, freed
    /// after the host fetch).
    pub fn frees_after(&self, j: usize, keep: StorageId) -> Vec<StorageId> {
        (0..self.last_use.len())
            .filter(|&s| !self.persistent[s] && s != keep.0 && self.last_use[s] == Some(j))
            .map(StorageId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::InitSpec;

    #[test]
    fn inputs_have_no_first_def_and_params_are_persistent() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 2]);
        let y = b.labels("y", 4);
        let w = b.param("w", [2, 2], InitSpec::Ones);
        let h = b.matmul(x, w, false, false, "mm");
        let (loss, _probs) = b.softmax_cross_entropy(h, y, "loss");
        let g = b.finish();
        let lv = Liveness::analyze(&g, &[x, y], loss);
        let sx = g.tensor(x).storage;
        let sw = g.tensor(w).storage;
        let sh = g.tensor(h).storage;
        assert_eq!(lv.first_def[sx.0], None);
        assert!(lv.persistent[sw.0]);
        assert_eq!(lv.first_def[sh.0], Some(0));
        // h is last used by the loss op
        assert_eq!(lv.last_use[sh.0], Some(1));
    }

    #[test]
    fn loss_lives_to_the_final_op() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 2]);
        let y = b.labels("y", 4);
        let w = b.param("w", [2, 2], InitSpec::Ones);
        let h = b.matmul(x, w, false, false, "mm");
        let (loss, _) = b.softmax_cross_entropy(h, y, "loss");
        let h2 = b.relu(h, "post"); // an op after the loss
        let _ = h2;
        let g = b.finish();
        let lv = Liveness::analyze(&g, &[x, y], loss);
        let sl = g.tensor(loss).storage;
        assert_eq!(lv.last_use[sl.0], Some(g.ops().len() - 1));
    }

    #[test]
    fn frees_after_excludes_persistent_and_kept() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 2]);
        let y = b.labels("y", 4);
        let w = b.param("w", [2, 2], InitSpec::Ones);
        let h = b.matmul(x, w, false, false, "mm");
        let (loss, _) = b.softmax_cross_entropy(h, y, "loss");
        let g = b.finish();
        let lv = Liveness::analyze(&g, &[x, y], loss);
        let last = g.ops().len() - 1;
        let frees = lv.frees_after(last, g.tensor(loss).storage);
        let sw = g.tensor(w).storage;
        let sl = g.tensor(loss).storage;
        assert!(!frees.contains(&sw), "weights are persistent");
        assert!(!frees.contains(&sl), "loss is kept for the host fetch");
        // labels are consumed by the loss op → freed after it
        let sy = g.tensor(y).storage;
        assert!(frees.contains(&sy));
    }

    #[test]
    fn views_extend_storage_life() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 4]);
        let y = b.labels("y", 4);
        let w = b.param("w", [4, 2], InitSpec::Ones);
        let h = b.relu(x, "r");
        let v = b.view(h, [4, 4], "v");
        let m = b.matmul(v, w, false, false, "mm");
        let (loss, _) = b.softmax_cross_entropy(m, y, "loss");
        let g = b.finish();
        let lv = Liveness::analyze(&g, &[x, y], loss);
        let sh = g.tensor(h).storage;
        assert_eq!(sh, g.tensor(v).storage);
        // last use of h's storage is the matmul (op 2), not the view (op 1)
        assert_eq!(lv.last_use[sh.0], Some(2));
    }
}
