//! Optimizers: emit per-parameter update ops into the iteration program.

use crate::builder::GraphBuilder;
use crate::graph::{InitSpec, TensorId};
use std::collections::BTreeMap;

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Vanilla stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with classical momentum (allocates a persistent velocity buffer
    /// per parameter — optimizer state in the paper's breakdown).
    SgdMomentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        mu: f32,
    },
    /// Adam (two persistent moment buffers per parameter: optimizer state
    /// is *twice* the weight bytes — the regime ZeRO-Offload [10] targets).
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay (typ. 0.9).
        beta1: f32,
        /// Second-moment decay (typ. 0.999).
        beta2: f32,
        /// Numerical-stability epsilon.
        eps: f32,
    },
}

impl Optimizer {
    /// Adam with the standard hyperparameters (β1 = 0.9, β2 = 0.999,
    /// ε = 1e-8).
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

impl Optimizer {
    /// Emits one update op per `(param, grad)` pair, in parameter order.
    pub fn emit_step(&self, b: &mut GraphBuilder, grads: &BTreeMap<TensorId, TensorId>) {
        for (i, (&param, &grad)) in grads.iter().enumerate() {
            let pname = b.graph().tensor(param).name.clone();
            match *self {
                Optimizer::Sgd { lr } => {
                    b.sgd_step(param, grad, lr, &format!("sgd.{pname}"));
                }
                Optimizer::SgdMomentum { lr, mu } => {
                    let shape = b.shape(param).clone();
                    let v = b.state(&format!("{pname}.momentum"), shape, InitSpec::Zeros);
                    b.sgd_momentum_step(param, v, grad, lr, mu, &format!("sgd_m.{pname}"));
                }
                Optimizer::Adam {
                    lr,
                    beta1,
                    beta2,
                    eps,
                } => {
                    let shape = b.shape(param).clone();
                    let m = b.state(&format!("{pname}.exp_avg"), shape.clone(), InitSpec::Zeros);
                    let v = b.state(&format!("{pname}.exp_avg_sq"), shape, InitSpec::Zeros);
                    b.adam_step(
                        param,
                        m,
                        v,
                        grad,
                        lr,
                        beta1,
                        beta2,
                        eps,
                        &format!("adam.{pname}"),
                    );
                }
            }
            let _ = i;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::backward;
    use crate::graph::OpKind;
    use pinpoint_trace::MemoryKind;

    fn setup() -> (GraphBuilder, BTreeMap<TensorId, TensorId>) {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 2]);
        let y = b.labels("y", 4);
        let w = b.param("w", [2, 2], InitSpec::Ones);
        let h = b.matmul(x, w, false, false, "mm");
        let (loss, _) = b.softmax_cross_entropy(h, y, "loss");
        let grads = backward(&mut b, loss);
        (b, grads)
    }

    #[test]
    fn sgd_emits_one_step_per_param() {
        let (mut b, grads) = setup();
        let n_before = b.graph().ops().len();
        Optimizer::Sgd { lr: 0.1 }.emit_step(&mut b, &grads);
        let steps = &b.graph().ops()[n_before..];
        assert_eq!(steps.len(), 1);
        assert!(matches!(steps[0].kind, OpKind::SgdStep { .. }));
    }

    #[test]
    fn adam_allocates_two_moment_buffers() {
        let (mut b, grads) = setup();
        Optimizer::adam(1e-3).emit_step(&mut b, &grads);
        let names: Vec<_> = b
            .graph()
            .tensors()
            .iter()
            .filter(|t| t.kind == MemoryKind::OptimizerState)
            .map(|t| t.name.clone())
            .collect();
        assert_eq!(names, vec!["w.exp_avg", "w.exp_avg_sq"]);
        assert!(b
            .graph()
            .ops()
            .iter()
            .any(|o| matches!(o.kind, OpKind::AdamStep { .. })));
    }

    #[test]
    fn momentum_allocates_persistent_velocity() {
        let (mut b, grads) = setup();
        Optimizer::SgdMomentum { lr: 0.1, mu: 0.9 }.emit_step(&mut b, &grads);
        let v = b
            .graph()
            .tensors()
            .iter()
            .find(|t| t.name == "w.momentum")
            .expect("velocity state declared");
        assert!(v.persistent);
        assert_eq!(v.kind, MemoryKind::OptimizerState);
    }
}
