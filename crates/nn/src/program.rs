//! The compiled iteration program: graph + liveness + interface tensors.

use crate::graph::{Graph, TensorId};
use crate::liveness::Liveness;
use pinpoint_trace::MemoryKind;

/// A compiled training iteration, ready to be replayed by an executor.
///
/// Holds the op tape (forward + backward + optimizer), the per-iteration
/// interface (staged inputs, fetched loss), the trainable parameters, and
/// the storage liveness the executor uses to place frees.
#[derive(Debug, Clone)]
pub struct Program {
    graph: Graph,
    inputs: Vec<TensorId>,
    loss: TensorId,
    params: Vec<TensorId>,
    liveness: Liveness,
}

impl Program {
    /// Compiles a finished graph into a program.
    ///
    /// `inputs` are the tensors staged host→device every iteration (data and
    /// labels, in staging order); `loss` is the scalar fetched back.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any input tensor is not of
    /// `MemoryKind::Input`.
    pub fn compile(graph: Graph, inputs: Vec<TensorId>, loss: TensorId) -> Program {
        assert!(!inputs.is_empty(), "a program needs staged inputs");
        for &t in &inputs {
            assert_eq!(
                graph.tensor(t).kind,
                MemoryKind::Input,
                "staged tensor {} must be MemoryKind::Input",
                graph.tensor(t).name
            );
        }
        let params: Vec<TensorId> = (0..graph.tensors().len())
            .map(TensorId)
            .filter(|&t| graph.tensor(t).kind == MemoryKind::Weight)
            .collect();
        let liveness = Liveness::analyze(&graph, &inputs, loss);
        Program {
            graph,
            inputs,
            loss,
            params,
            liveness,
        }
    }

    /// The op tape and tensor table.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Tensors staged host→device each iteration.
    pub fn inputs(&self) -> &[TensorId] {
        &self.inputs
    }

    /// The scalar loss fetched device→host each iteration.
    pub fn loss(&self) -> TensorId {
        self.loss
    }

    /// Trainable parameters, in declaration order.
    pub fn params(&self) -> &[TensorId] {
        &self.params
    }

    /// Storage liveness facts.
    pub fn liveness(&self) -> &Liveness {
        &self.liveness
    }

    /// Static byte accounting of the program (pre-execution estimate of the
    /// paper's Figs. 5–7 breakdown).
    pub fn summary(&self) -> ProgramSummary {
        let mut s = ProgramSummary {
            num_ops: self.graph.ops().len(),
            num_tensors: self.graph.tensors().len(),
            num_storages: self.graph.num_storages(),
            ..ProgramSummary::default()
        };
        let sizes = self.graph.storage_sizes();
        for (owner, size) in self.graph.storage_owners().iter().zip(&sizes) {
            let bytes = *size as u64;
            match owner.kind {
                MemoryKind::Input => s.input_bytes += bytes,
                MemoryKind::Weight => s.weight_bytes += bytes,
                MemoryKind::WeightGrad => s.weight_grad_bytes += bytes,
                MemoryKind::OptimizerState => s.optimizer_state_bytes += bytes,
                MemoryKind::Activation => s.activation_bytes += bytes,
                MemoryKind::ActivationGrad => s.activation_grad_bytes += bytes,
                MemoryKind::Workspace | MemoryKind::Other => s.workspace_bytes += bytes,
            }
        }
        for op in self.graph.ops() {
            s.total_flops += op.flops;
            s.workspace_bytes += op.workspace_bytes as u64;
        }
        s
    }
}

/// Static per-kind byte totals and op counts of a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramSummary {
    /// Number of ops in the tape.
    pub num_ops: usize,
    /// Number of logical tensors.
    pub num_tensors: usize,
    /// Number of allocation units.
    pub num_storages: usize,
    /// Bytes of staged input data.
    pub input_bytes: u64,
    /// Bytes of trainable weights.
    pub weight_bytes: u64,
    /// Bytes of weight gradients.
    pub weight_grad_bytes: u64,
    /// Bytes of optimizer state and running statistics.
    pub optimizer_state_bytes: u64,
    /// Bytes of forward activations.
    pub activation_bytes: u64,
    /// Bytes of activation gradients.
    pub activation_grad_bytes: u64,
    /// Bytes of transient kernel workspaces (summed over ops).
    pub workspace_bytes: u64,
    /// Total FLOPs per iteration.
    pub total_flops: u64,
}

impl ProgramSummary {
    /// Sum over all kinds: the total bytes the program would touch if every
    /// storage were live at once (an upper bound on the footprint).
    pub fn total_bytes(&self) -> u64 {
        self.input_bytes
            + self.weight_bytes
            + self.weight_grad_bytes
            + self.optimizer_state_bytes
            + self.activation_bytes
            + self.activation_grad_bytes
            + self.workspace_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::backward;
    use crate::builder::GraphBuilder;
    use crate::graph::InitSpec;

    fn tiny_program() -> Program {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 2]);
        let y = b.labels("y", 4);
        let w = b.param("w", [2, 2], InitSpec::Ones);
        let h = b.matmul(x, w, false, false, "mm");
        let (loss, _) = b.softmax_cross_entropy(h, y, "loss");
        let grads = backward(&mut b, loss);
        for (p, g) in &grads {
            b.sgd_step(*p, *g, 0.1, "sgd");
        }
        Program::compile(b.finish(), vec![x, y], loss)
    }

    #[test]
    fn compile_collects_params_and_liveness() {
        let p = tiny_program();
        assert_eq!(p.params().len(), 1);
        assert_eq!(p.inputs().len(), 2);
        assert!(p.liveness().persistent[p.graph().tensor(p.params()[0]).storage.0]);
    }

    #[test]
    fn summary_accounts_every_kind() {
        let p = tiny_program();
        let s = p.summary();
        assert_eq!(s.weight_bytes, 2 * 2 * 4);
        assert_eq!(s.weight_grad_bytes, 2 * 2 * 4);
        assert_eq!(s.input_bytes, (4 * 2 + 4) * 4);
        assert!(s.activation_bytes > 0);
        assert!(s.total_flops > 0);
        assert_eq!(
            s.total_bytes(),
            s.input_bytes
                + s.weight_bytes
                + s.weight_grad_bytes
                + s.activation_bytes
                + s.activation_grad_bytes
        );
    }

    #[test]
    #[should_panic(expected = "MemoryKind::Input")]
    fn compile_rejects_non_input_staging() {
        let mut b = GraphBuilder::new();
        let x = b.input("x", [4, 2]);
        let y = b.labels("y", 4);
        let w = b.param("w", [2, 2], InitSpec::Ones);
        let h = b.matmul(x, w, false, false, "mm");
        let (loss, _) = b.softmax_cross_entropy(h, y, "loss");
        Program::compile(b.finish(), vec![w], loss);
    }
}
