//! Span exports: Chrome `trace_event` JSON and folded flamegraph stacks.
//!
//! # Trace-JSON schema
//!
//! The Chrome export is an object with a single `traceEvents` array of
//! complete (`"ph":"X"`) events:
//!
//! ```json
//! {"traceEvents":[
//!   {"name":"store.chunk","ph":"X","pid":1,"tid":3,
//!    "ts":12.345,"dur":6.789,
//!    "args":{"depth":1,"ticket":4,"arg":2}}
//! ]}
//! ```
//!
//! * `ts`/`dur` are microseconds with nanosecond precision (three
//!   decimals), relative to the tracer epoch;
//! * `tid` is the track ordinal + 1 (`pid` is always 1);
//! * `args.depth` and `args.ticket` carry the exact tree: sorting a
//!   `tid`'s events by `ticket` is a preorder walk, and `depth` closes
//!   subtrees — consumers (and our round-trip tests) rebuild the span
//!   hierarchy without relying on timestamp containment;
//! * `args.arg` appears only on spans recorded with an argument.
//!
//! The output is plain JSON parseable by `pinpoint_trace::json` and
//! loadable in Perfetto / `chrome://tracing`. The folded export emits
//! one `path stack;leaf <self-time-ns>` line per unique stack with
//! non-zero self time, sorted, ready for `flamegraph.pl`-style tooling.

use crate::span::{TraceSnapshot, NO_ARG};
use std::fmt::Write as _;

impl TraceSnapshot {
    /// Serializes the snapshot as Chrome `trace_event` JSON.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for track in &self.tracks {
            for rec in &track.records {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"depth\":{},\"ticket\":{}",
                    escape(rec.name),
                    track.ord + 1,
                    rec.start_ns / 1_000,
                    rec.start_ns % 1_000,
                    rec.dur_ns / 1_000,
                    rec.dur_ns % 1_000,
                    rec.depth,
                    rec.ticket,
                );
                if rec.arg != NO_ARG {
                    let _ = write!(out, ",\"arg\":{}", rec.arg);
                }
                out.push_str("}}");
            }
        }
        out.push_str("]}");
        out
    }

    /// Serializes the snapshot as folded flamegraph stacks (self time
    /// per unique path, in nanoseconds), sorted by path.
    pub fn to_folded(&self) -> String {
        let mut self_ns: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        // inclusive time per path, then subtract each span's children
        self.walk_paths(|_, rec, path| {
            *self_ns.entry(path.to_string()).or_insert(0) += rec.dur_ns;
        });
        let child_sums: Vec<(String, u64)> = self_ns
            .keys()
            .map(|path| {
                let mut children = 0u64;
                // a child path is `path;name` with no further ';'
                // boundary before its own children — sum only direct
                // children's inclusive time
                for (p, inc) in self_ns.range::<str, _>((
                    std::ops::Bound::Excluded(path.as_str()),
                    std::ops::Bound::Unbounded,
                )) {
                    if !p.starts_with(path.as_str()) {
                        break;
                    }
                    let rest = &p[path.len()..];
                    if let Some(tail) = rest.strip_prefix(';') {
                        if !tail.contains(';') {
                            children += inc;
                        }
                    }
                }
                (path.clone(), children)
            })
            .collect();
        let mut out = String::new();
        for (path, children) in child_sums {
            let inclusive = self_ns[&path];
            let own = inclusive.saturating_sub(children);
            if own > 0 {
                let _ = writeln!(out, "{} {}", path, own);
            }
        }
        out
    }
}

/// Minimal JSON string escaper (span names are static identifiers, but
/// the output must stay well-formed for any name).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::span::{test_lock, tracer};

    #[test]
    fn chrome_json_is_well_formed() {
        let _l = test_lock();
        let t = tracer();
        t.clear();
        t.set_enabled(true);
        {
            let _a = t.span("outer");
            let _b = t.span_with("inner", 5);
        }
        t.set_enabled(false);
        let json = t.snapshot().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"outer\""));
        assert!(json.contains("\"name\":\"inner\""));
        assert!(json.contains("\"arg\":5"));
        assert!(json.contains("\"ph\":\"X\""));
        // balanced braces (no nested strings with braces in span names)
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        t.clear();
    }

    #[test]
    fn folded_subtracts_child_time() {
        let _l = test_lock();
        let t = tracer();
        t.clear();
        t.set_enabled(true);
        {
            let _a = t.span("root");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = t.span("child");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        t.set_enabled(false);
        let folded = t.snapshot().to_folded();
        let mut root_self = None;
        let mut child_self = None;
        for line in folded.lines() {
            let (path, ns) = line.rsplit_once(' ').unwrap();
            let ns: u64 = ns.parse().unwrap();
            if path == "root" {
                root_self = Some(ns);
            }
            if path == "root;child" {
                child_self = Some(ns);
            }
        }
        let root_self = root_self.expect("root line");
        let child_self = child_self.expect("child line");
        let totals = t.snapshot().totals_by_name();
        let root_total = totals.iter().find(|(n, _, _)| *n == "root").unwrap().2;
        // root's self time excludes the child's ~2ms of inclusive time
        assert!(root_self < root_total, "{root_self} vs {root_total}");
        assert!(child_self >= 1_000_000, "{child_self}");
        t.clear();
    }
}
