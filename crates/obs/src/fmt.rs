//! Human-readable byte and duration formatting — the single definition
//! shared by every crate's output path (`pinpoint_core::report` re-exports
//! these for the CLI and figure renderers).

/// Formats a byte count with a decimal human unit — powers of 1000, i.e.
/// the paper's KB/MB/GB usage.
pub fn human_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} KB", b / 1e3)
    } else {
        format!("{bytes} B")
    }
}

/// Formats nanoseconds as the paper's µs/ms/s units.
pub fn human_time(ns: u64) -> String {
    let t = ns as f64;
    if t >= 1e9 {
        format!("{:.3} s", t / 1e9)
    } else if t >= 1e6 {
        format!("{:.2} ms", t / 1e6)
    } else if t >= 1e3 {
        format!("{:.2} us", t / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(79_370), "79.37 KB");
        assert_eq!(human_bytes(1_200_000_000), "1.20 GB");
        assert_eq!(human_time(500), "500 ns");
        assert_eq!(human_time(25_000), "25.00 us");
        assert_eq!(human_time(840_210_000), "840.21 ms");
        assert_eq!(human_time(2_500_000_000), "2.500 s");
    }
}
