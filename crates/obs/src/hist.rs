//! Lock-free log2-bucketed latency histograms.
//!
//! Values (nanoseconds, byte counts — any `u64`) land in the bucket
//! indexed by their bit length: value `0` in bucket 0, and `v > 0` in
//! bucket `64 - v.leading_zeros()`, i.e. bucket `i >= 1` covers
//! `[2^(i-1), 2^i - 1]`. 65 fixed buckets cover the whole `u64` range, so
//! recording is a single relaxed `fetch_add` with no allocation and no
//! locking, safe from any number of threads.
//!
//! Percentiles are **exact-rank**: `percentile(p)` computes the rank
//! `ceil(p/100 * n)` and walks the cumulative counts to the bucket that
//! contains that rank, reporting the bucket's upper bound — a value `>=`
//! the true percentile, within one power of two. That bound is the right
//! shape for latency SLO reporting (never under-reports) and keeps the
//! extraction allocation-free.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets in a [`Histogram`] (bit lengths 0..=64).
pub const HIST_BUCKETS: usize = 65;

/// Bucket index for a value: its bit length.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// A concurrent log2-bucketed histogram of `u64` samples.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; callable from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time copy of the bucket counts.
    ///
    /// Concurrent recorders may land between the individual bucket loads;
    /// the snapshot is internally consistent enough for reporting (each
    /// bucket count is itself exact at some instant, and `count` is
    /// re-derived from the copied buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Exact-rank percentile over the live counters (see module docs).
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// Resets every bucket to zero (tests and per-run scoping).
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`]'s buckets.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Total samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in the snapshot.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Exact-rank percentile: the upper bound of the bucket containing
    /// rank `ceil(p/100 * count)`. Returns 0 when empty; `p` is clamped
    /// to `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }

    /// The occupied buckets as `(lower, upper, count)` triples, in value
    /// order — the shape `BENCH_serve.json` and `/metrics` publish.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), bucket_upper(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_lower(i)), i);
            assert_eq!(bucket_of(bucket_upper(i)), i);
        }
    }

    #[test]
    fn exact_rank_percentiles() {
        let h = Histogram::new();
        // 100 samples: 50 fast (~100ns bucket), 40 medium (~10us), 10 slow (~1ms)
        for _ in 0..50 {
            h.record(100);
        }
        for _ in 0..40 {
            h.record(10_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        // rank 50 lands in the 100ns bucket [64,127]
        assert_eq!(s.percentile(50.0), 127);
        // rank 90 lands in the 10us bucket [8192,16383]
        assert_eq!(s.percentile(90.0), 16_383);
        // rank 99 lands in the 1ms bucket [524288,1048575]
        assert_eq!(s.percentile(99.0), 1_048_575);
        assert_eq!(s.percentile(100.0), 1_048_575);
        assert!(s.percentile(50.0) <= s.percentile(90.0));
        let nz = s.nonzero_buckets();
        assert_eq!(nz.len(), 3);
        assert_eq!(nz[0].2 + nz[1].2 + nz[2].2, 100);
    }

    #[test]
    fn empty_and_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(99.0), 0);
        h.record(0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.snapshot().nonzero_buckets(), vec![(0, 0, 1)]);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().count(), 4000);
    }
}
