//! # pinpoint-obs
//!
//! Self-observability for the `pinpoint` stack — the instrumentation
//! substrate the paper's own method implies: you cannot optimize what you
//! cannot pinpoint, and that holds for the analysis pipeline itself just
//! as much as for the DNN training loops it studies. Every later
//! optimization (ROADMAP items 2–4) starts from the per-stage timings this
//! crate records.
//!
//! Three pieces, all std-only and shared by every layer above:
//!
//! * [`Tracer`] — hierarchical timed spans recorded into per-thread ring
//!   buffers through an RAII [`SpanGuard`]. Span *structure* (names,
//!   nesting, per-chunk arguments) is deterministic for a given workload
//!   at any thread count; only durations vary. When disabled (the
//!   default) a span open/close is a single relaxed atomic load and
//!   performs **zero allocation** — the guard never touches thread-local
//!   state, mirroring the store's `decode_reallocs()` zero-alloc
//!   contract. Snapshots export as Chrome `trace_event` JSON (loadable in
//!   Perfetto / `chrome://tracing`) and as folded-stack flamegraph lines.
//! * [`Histogram`] — lock-free log2-bucketed latency histogram with
//!   exact-rank p50/p90/p99 extraction.
//! * [`Registry`] — named counters, gauges, and histograms with a
//!   deterministic, registration-ordered snapshot; the backing store for
//!   the serve daemon's `/metrics` endpoint.
//!
//! The byte/duration pretty-printers ([`human_bytes`], [`human_time`])
//! also live here — this crate sits at the bottom of the workspace graph,
//! so `store`, `analysis`, `serve`, and `core` can all share one
//! definition (`pinpoint_core::report` re-exports them for existing
//! callers).
//!
//! # Example
//!
//! ```
//! use pinpoint_obs::tracer;
//!
//! tracer().set_enabled(true);
//! {
//!     let _outer = tracer().span("report");
//!     let _inner = tracer().span_with("store.chunk", 3);
//! } // guards close in LIFO order
//! let snap = tracer().snapshot();
//! assert_eq!(snap.paths(), vec!["report".to_string(), "report;store.chunk".to_string()]);
//! tracer().set_enabled(false);
//! tracer().clear();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chrome;
mod fmt;
mod hist;
mod registry;
mod span;

pub use fmt::{human_bytes, human_time};
pub use hist::{Histogram, HistogramSnapshot, HIST_BUCKETS};
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use span::{tracer, SpanGuard, SpanRecord, ThreadTrack, TraceSnapshot, Tracer, NO_ARG};
