//! A unified registry of named counters, gauges, and histograms.
//!
//! Handles are cheap `Arc` clones over relaxed atomics, so hot paths
//! touch no locks; the registry's own mutex is taken only at
//! registration time (get-or-create by name) and when snapshotting.
//! Snapshots list every metric in **registration order**, which makes
//! rendered output (the serve daemon's `/metrics` JSON) deterministic.

use crate::hist::{Histogram, HistogramSnapshot};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Named metrics, created on first use and listed in registration order.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<Vec<(&'static str, Counter)>>,
    gauges: Mutex<Vec<(&'static str, Gauge)>>,
    hists: Mutex<Vec<(&'static str, Arc<Histogram>)>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.counters.lock().map(|v| v.len()).unwrap_or(0);
        let g = self.gauges.lock().map(|v| v.len()).unwrap_or(0);
        let h = self.hists.lock().map(|v| v.len()).unwrap_or(0);
        f.debug_struct("Registry")
            .field("counters", &c)
            .field("gauges", &g)
            .field("histograms", &h)
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut v = self.counters.lock().unwrap();
        if let Some((_, c)) = v.iter().find(|(n, _)| *n == name) {
            return c.clone();
        }
        let c = Counter::default();
        v.push((name, c.clone()));
        c
    }

    /// Returns the gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut v = self.gauges.lock().unwrap();
        if let Some((_, g)) = v.iter().find(|(n, _)| *n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        v.push((name, g.clone()));
        g
    }

    /// Returns the histogram named `name`, creating it empty on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut v = self.hists.lock().unwrap();
        if let Some((_, h)) = v.iter().find(|(n, _)| *n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        v.push((name, Arc::clone(&h)));
        h
    }

    /// Copies every metric's current value, in registration order.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(n, c)| (*n, c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(n, g)| (*n, g.get()))
                .collect(),
            hists: self
                .hists
                .lock()
                .unwrap()
                .iter()
                .map(|(n, h)| (*n, h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`], in registration order.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(name, snapshot)` for every histogram.
    pub hists: Vec<(&'static str, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_state() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        assert_eq!(r.counter("a").get(), 3);
        r.gauge("depth").set(7);
        assert_eq!(r.gauge("depth").get(), 7);
        r.histogram("lat").record(100);
        assert_eq!(r.histogram("lat").count(), 1);
    }

    #[test]
    fn snapshot_preserves_registration_order() {
        let r = Registry::new();
        r.counter("z");
        r.counter("a");
        r.counter("m");
        let names: Vec<_> = r.snapshot().counters.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["z", "a", "m"]);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let r = Registry::new();
        let c = r.counter("hits");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(r.counter("hits").get(), 80_000);
    }
}
