//! Hierarchical timed spans with per-thread ring buffers.
//!
//! # Model
//!
//! A span is opened with [`Tracer::span`] (or [`Tracer::span_with`] to
//! attach a `u64` argument such as a chunk index) and closed when the
//! returned [`SpanGuard`] drops — RAII guarantees every opened span
//! closes, and LIFO drop order guarantees well-formed nesting. Each OS
//! thread records into its own fixed-capacity ring buffer, so recording
//! never blocks another thread and memory stays bounded: when a ring
//! fills, the **oldest** records are overwritten and counted in
//! [`ThreadTrack::dropped`].
//!
//! Completed spans carry a per-track `ticket` assigned at *open* time, so
//! sorting a track's records by ticket yields a preorder traversal of the
//! span forest; together with the recorded `depth` this reconstructs the
//! exact tree. Span *structure* — names, nesting, arguments — is
//! deterministic for a given workload at any thread count (worker threads
//! start their own roots; canonicalize with
//! [`TraceSnapshot::relative_paths`] to compare across thread counts).
//! Only durations and track assignment vary.
//!
//! # Cost
//!
//! Disabled (the default): one relaxed atomic load per open, nothing per
//! close, **zero allocation** — thread-local state is never created, the
//! mirror of the store's `decode_reallocs()` contract
//! ([`Tracer::buffer_allocs`] stays flat, asserted in tests). Enabled:
//! two `Instant` reads and two uncontended per-thread mutex hops per
//! span; ring buffers are allocated once per worker thread and recycled
//! through a free list when threads exit, so repeated scans do not grow
//! memory.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Sentinel for "no argument" on a span.
pub const NO_ARG: u64 = u64::MAX;

/// Default per-thread ring capacity, in records (~56 B each).
const DEFAULT_CAPACITY: usize = 16_384;

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span label (e.g. `"store.chunk"`).
    pub name: &'static str,
    /// Per-track open-order ticket; sorting by it gives preorder.
    pub ticket: u64,
    /// Open time, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at open (0 = thread root).
    pub depth: u16,
    /// User argument ([`NO_ARG`] when absent).
    pub arg: u64,
}

struct Ring {
    records: Vec<SpanRecord>,
    cap: usize,
    head: usize,
    dropped: u64,
    next_ticket: u64,
}

impl Ring {
    fn push(&mut self, rec: SpanRecord) {
        if self.records.len() < self.cap {
            self.records.push(rec);
        } else {
            self.records[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn in_order(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.records.len());
        out.extend_from_slice(&self.records[self.head..]);
        out.extend_from_slice(&self.records[..self.head]);
        // records are written at close time; re-sort by open ticket so
        // each track reads as a preorder traversal
        out.sort_by_key(|r| r.ticket);
        out
    }
}

struct ThreadBuf {
    ord: u32,
    ring: Mutex<Ring>,
}

struct ThreadState {
    buf: Arc<ThreadBuf>,
    stack: Vec<OpenSpan>,
}

struct OpenSpan {
    name: &'static str,
    ticket: u64,
    start_ns: u64,
    arg: u64,
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        // recycle the ring so short-lived scan workers don't grow the
        // track list without bound
        tracer().free.lock().unwrap().push(Arc::clone(&self.buf));
    }
}

thread_local! {
    static TLS: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

/// The process-wide span recorder. Obtain it with [`tracer`].
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    tracks: Mutex<Vec<Arc<ThreadBuf>>>,
    free: Mutex<Vec<Arc<ThreadBuf>>>,
    capacity: AtomicUsize,
    next_ord: AtomicU32,
    buf_allocs: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("tracks", &self.tracks.lock().map(|t| t.len()).unwrap_or(0))
            .finish()
    }
}

/// Returns the process-wide [`Tracer`] (disabled until
/// [`Tracer::set_enabled`] turns it on).
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        tracks: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
        capacity: AtomicUsize::new(DEFAULT_CAPACITY),
        next_ord: AtomicU32::new(0),
        buf_allocs: AtomicU64::new(0),
    })
}

impl Tracer {
    /// Whether spans are currently recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Spans opened while disabled stay
    /// unrecorded even if recording is enabled before they close.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Sets the ring capacity (records per thread) for buffers allocated
    /// after this call; existing buffers keep their size.
    pub fn set_capacity(&self, records: usize) {
        self.capacity.store(records.max(16), Ordering::Relaxed);
    }

    /// Nanoseconds since the tracer epoch (the clock spans are stamped
    /// with) — for callers that measure intervals manually and record
    /// them via [`Tracer::record_at`].
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a span; it closes (and is recorded) when the guard drops.
    #[inline]
    pub fn span(&'static self, name: &'static str) -> SpanGuard {
        self.span_with(name, NO_ARG)
    }

    /// Opens a span carrying a `u64` argument (chunk index, request id).
    #[inline]
    pub fn span_with(&'static self, name: &'static str, arg: u64) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard {
                active: false,
                _not_send: PhantomData,
            };
        }
        let start_ns = self.now_ns();
        TLS.with(|cell| {
            let mut slot = cell.borrow_mut();
            let st = slot.get_or_insert_with(|| self.new_thread_state());
            let ticket = {
                let mut ring = st.buf.ring.lock().unwrap();
                let t = ring.next_ticket;
                ring.next_ticket += 1;
                t
            };
            st.stack.push(OpenSpan {
                name,
                ticket,
                start_ns,
                arg,
            });
        });
        SpanGuard {
            active: true,
            _not_send: PhantomData,
        }
    }

    /// Records an already-measured interval as a completed span at the
    /// current nesting depth — for durations that cannot be scoped by a
    /// guard, such as cross-thread queue wait. No-op while disabled.
    pub fn record_at(&'static self, name: &'static str, start_ns: u64, dur_ns: u64, arg: u64) {
        if !self.enabled() {
            return;
        }
        TLS.with(|cell| {
            let mut slot = cell.borrow_mut();
            let st = slot.get_or_insert_with(|| self.new_thread_state());
            let depth = st.stack.len() as u16;
            let mut ring = st.buf.ring.lock().unwrap();
            let ticket = ring.next_ticket;
            ring.next_ticket += 1;
            ring.push(SpanRecord {
                name,
                ticket,
                start_ns,
                dur_ns,
                depth,
                arg,
            });
        });
    }

    fn new_thread_state(&self) -> ThreadState {
        if let Some(buf) = self.free.lock().unwrap().pop() {
            return ThreadState {
                buf,
                stack: Vec::with_capacity(16),
            };
        }
        let cap = self.capacity.load(Ordering::Relaxed);
        let buf = Arc::new(ThreadBuf {
            ord: self.next_ord.fetch_add(1, Ordering::Relaxed),
            ring: Mutex::new(Ring {
                records: Vec::with_capacity(cap),
                cap,
                head: 0,
                dropped: 0,
                next_ticket: 0,
            }),
        });
        self.buf_allocs.fetch_add(1, Ordering::Relaxed);
        self.tracks.lock().unwrap().push(Arc::clone(&buf));
        ThreadState {
            buf,
            stack: Vec::with_capacity(16),
        }
    }

    /// Ring buffers allocated so far — the tracer's analogue of the
    /// store's `decode_reallocs()`: with the tracer disabled this (and
    /// [`Tracer::total_records`]) must stay flat across a workload, which
    /// is how tests pin the zero-allocation contract.
    pub fn buffer_allocs(&self) -> u64 {
        self.buf_allocs.load(Ordering::Relaxed)
    }

    /// Completed spans currently buffered across all tracks.
    pub fn total_records(&self) -> u64 {
        self.tracks
            .lock()
            .unwrap()
            .iter()
            .map(|b| b.ring.lock().unwrap().records.len() as u64)
            .sum()
    }

    /// Discards all buffered records (tracks and their buffers are kept).
    /// Call between runs while no spans are open.
    pub fn clear(&self) {
        for buf in self.tracks.lock().unwrap().iter() {
            let mut ring = buf.ring.lock().unwrap();
            ring.records.clear();
            ring.head = 0;
            ring.dropped = 0;
        }
    }

    /// Copies every track's completed spans, each track in preorder
    /// (ticket order), tracks sorted by their ordinal.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut tracks: Vec<ThreadTrack> = self
            .tracks
            .lock()
            .unwrap()
            .iter()
            .map(|buf| {
                let ring = buf.ring.lock().unwrap();
                ThreadTrack {
                    ord: buf.ord,
                    dropped: ring.dropped,
                    records: ring.in_order(),
                }
            })
            .collect();
        tracks.sort_by_key(|t| t.ord);
        TraceSnapshot { tracks }
    }
}

/// RAII guard returned by [`Tracer::span`]; records the span on drop.
/// Not `Send` — a span must close on the thread that opened it.
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let t = tracer();
        let end_ns = t.now_ns();
        // try_with: a guard dropped during thread teardown (after TLS
        // destruction) silently discards its span instead of panicking
        let _ = TLS.try_with(|cell| {
            let mut slot = cell.borrow_mut();
            let Some(st) = slot.as_mut() else { return };
            let Some(open) = st.stack.pop() else { return };
            let depth = st.stack.len() as u16;
            st.buf.ring.lock().unwrap().push(SpanRecord {
                name: open.name,
                ticket: open.ticket,
                start_ns: open.start_ns,
                dur_ns: end_ns.saturating_sub(open.start_ns),
                depth,
                arg: open.arg,
            });
        });
    }
}

/// One thread's completed spans, in preorder.
#[derive(Debug, Clone)]
pub struct ThreadTrack {
    /// Stable track ordinal (assigned at first span on the thread).
    pub ord: u32,
    /// Records evicted from the ring because it filled.
    pub dropped: u64,
    /// Completed spans sorted by open ticket.
    pub records: Vec<SpanRecord>,
}

/// A point-in-time copy of every track, from [`Tracer::snapshot`].
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// All tracks, sorted by ordinal.
    pub tracks: Vec<ThreadTrack>,
}

impl TraceSnapshot {
    /// Total completed spans in the snapshot.
    pub fn len(&self) -> usize {
        self.tracks.iter().map(|t| t.records.len()).sum()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Walks each track in preorder, handing `f` every record together
    /// with its full `;`-joined ancestor path (including itself).
    pub(crate) fn walk_paths(&self, mut f: impl FnMut(&ThreadTrack, &SpanRecord, &str)) {
        let mut stack: Vec<(u16, usize)> = Vec::new(); // (depth, path len before this span)
        let mut path = String::new();
        for track in &self.tracks {
            stack.clear();
            path.clear();
            for rec in &track.records {
                while let Some(&(d, keep)) = stack.last() {
                    if d >= rec.depth {
                        stack.pop();
                        path.truncate(keep);
                    } else {
                        break;
                    }
                }
                let keep = path.len();
                if !path.is_empty() {
                    path.push(';');
                }
                path.push_str(rec.name);
                f(track, rec, &path);
                stack.push((rec.depth, keep));
            }
        }
    }

    /// Every span's full path, track by track in preorder.
    pub fn paths(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.len());
        self.walk_paths(|_, _, p| out.push(p.to_string()));
        out
    }

    /// Canonical structure relative to `anchor`: for every span whose
    /// path contains a segment equal to `anchor`, the sub-path starting
    /// at the **last** such segment, aggregated to sorted
    /// `(path, count)` pairs. This is thread-count invariant: a chunk
    /// span nests under `scan` when work runs inline but is a thread
    /// root on a worker, yet its subtree reads identically either way.
    pub fn relative_paths(&self, anchor: &str) -> Vec<(String, u64)> {
        let mut counts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        self.walk_paths(|_, _, p| {
            if let Some(sub) = subpath_from(p, anchor) {
                *counts.entry(sub.to_string()).or_insert(0) += 1;
            }
        });
        counts.into_iter().collect()
    }

    /// Aggregates `(name, count, total_ns)` over all spans, sorted by
    /// name — the source for the CLI `--timing` table.
    pub fn totals_by_name(&self) -> Vec<(&'static str, u64, u64)> {
        let mut agg: std::collections::BTreeMap<&'static str, (u64, u64)> =
            std::collections::BTreeMap::new();
        for track in &self.tracks {
            for rec in &track.records {
                let e = agg.entry(rec.name).or_insert((0, 0));
                e.0 += 1;
                e.1 += rec.dur_ns;
            }
        }
        agg.into_iter().map(|(n, (c, t))| (n, c, t)).collect()
    }

    /// Each span named `root_name` together with its descendants, in
    /// preorder — `(track ordinal, records)`. Roots whose children were
    /// evicted from the ring return what survived.
    pub fn subtrees(&self, root_name: &str) -> Vec<(u32, Vec<SpanRecord>)> {
        let mut out = Vec::new();
        for track in &self.tracks {
            let mut i = 0;
            while i < track.records.len() {
                let rec = &track.records[i];
                if rec.name == root_name {
                    let mut tree = vec![*rec];
                    let mut j = i + 1;
                    while j < track.records.len() && track.records[j].depth > rec.depth {
                        tree.push(track.records[j]);
                        j += 1;
                    }
                    out.push((track.ord, tree));
                    i = j;
                } else {
                    i += 1;
                }
            }
        }
        out
    }
}

/// The sub-path of `path` starting at the last segment equal to `anchor`.
fn subpath_from<'a>(path: &'a str, anchor: &str) -> Option<&'a str> {
    let mut found: Option<usize> = None;
    let mut start = 0;
    for seg in path.split(';') {
        if seg == anchor {
            found = Some(start);
        }
        start += seg.len() + 1;
    }
    found.map(|s| &path[s..])
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_paths() {
        let _l = test_lock();
        let t = tracer();
        t.clear();
        t.set_enabled(true);
        {
            let _a = t.span("a");
            {
                let _b = t.span_with("b", 7);
            }
            {
                let _c = t.span("c");
                let _d = t.span("d");
            }
        }
        t.set_enabled(false);
        let snap = t.snapshot();
        let mut paths = snap.paths();
        paths.sort();
        assert_eq!(paths, vec!["a", "a;b", "a;c", "a;c;d"]);
        let b = snap
            .tracks
            .iter()
            .flat_map(|tr| tr.records.iter())
            .find(|r| r.name == "b")
            .unwrap();
        assert_eq!(b.arg, 7);
        assert_eq!(b.depth, 1);
        t.clear();
    }

    #[test]
    fn disabled_records_nothing_and_allocates_nothing() {
        let _l = test_lock();
        let t = tracer();
        t.clear();
        t.set_enabled(false);
        let allocs = t.buffer_allocs();
        let records = t.total_records();
        for _ in 0..1000 {
            let _s = t.span("hot");
        }
        assert_eq!(t.buffer_allocs(), allocs);
        assert_eq!(t.total_records(), records);
    }

    #[test]
    fn subtree_extraction_and_relative_paths() {
        let _l = test_lock();
        let t = tracer();
        t.clear();
        t.set_enabled(true);
        {
            let _root = t.span("scan");
            for i in 0..3u64 {
                let _c = t.span_with("chunk", i);
                let _d = t.span("decode");
            }
        }
        t.set_enabled(false);
        let snap = t.snapshot();
        let trees = snap.subtrees("chunk");
        assert_eq!(trees.len(), 3);
        for (_, tree) in &trees {
            assert_eq!(tree.len(), 2);
            assert_eq!(tree[0].name, "chunk");
            assert_eq!(tree[1].name, "decode");
        }
        assert_eq!(
            snap.relative_paths("chunk"),
            vec![("chunk".to_string(), 3), ("chunk;decode".to_string(), 3)]
        );
        t.clear();
    }

    #[test]
    fn ring_eviction_keeps_newest() {
        let mut ring = Ring {
            records: Vec::new(),
            cap: 4,
            head: 0,
            dropped: 0,
            next_ticket: 0,
        };
        for i in 0..10u64 {
            ring.push(SpanRecord {
                name: "x",
                ticket: i,
                start_ns: i,
                dur_ns: 1,
                depth: 0,
                arg: NO_ARG,
            });
        }
        assert_eq!(ring.dropped, 6);
        let kept: Vec<u64> = ring.in_order().iter().map(|r| r.ticket).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn worker_thread_spans_survive_thread_exit() {
        let _l = test_lock();
        let t = tracer();
        t.clear();
        t.set_enabled(true);
        std::thread::scope(|s| {
            for i in 0..4u64 {
                s.spawn(move || {
                    let _w = tracer().span_with("worker", i);
                });
            }
        });
        t.set_enabled(false);
        let snap = t.snapshot();
        let workers: Vec<u64> = snap
            .tracks
            .iter()
            .flat_map(|tr| tr.records.iter())
            .filter(|r| r.name == "worker")
            .map(|r| r.arg)
            .collect();
        assert_eq!(workers.len(), 4);
        t.clear();
    }
}
