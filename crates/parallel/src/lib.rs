//! # pinpoint-parallel
//!
//! Scoped-thread fan-out for independent jobs, shared by every layer that
//! fans work out: the figure sweeps (Figs. 5–7 and the extension
//! experiments) run many fully independent simulated training profiles,
//! and the trace store decodes independent chunks concurrently. This crate
//! spreads such job lists across OS threads with [`std::thread::scope`] —
//! no external thread-pool dependency — while keeping results
//! **deterministic**: output order is always input order, and each job's
//! work is unaffected by which worker ran it, so a sweep (or a chunk
//! decode) produces bit-identical results at any thread count.
//!
//! Downstream code usually reaches this crate through the
//! `pinpoint_core::parallel` re-export.
//!
//! Thread-count resolution, in priority order:
//!
//! 1. an explicit count passed by the caller (`--threads N` on the CLIs
//!    lands here via [`set_global_threads`]);
//! 2. the `PINPOINT_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread-count override; 0 means "not set".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets a process-wide thread-count override (the CLI `--threads` flag).
///
/// Passing 0 clears the override.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Resolves the worker-thread count for fan-out helpers.
///
/// Returns the [`set_global_threads`] override if set, else a positive
/// `PINPOINT_THREADS` value, else the machine's available parallelism
/// (falling back to 1). Always at least 1.
pub fn configured_threads() -> usize {
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(v) = std::env::var("PINPOINT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over every item on up to `threads` scoped worker threads and
/// returns the results **in input order**.
///
/// Jobs are handed out through a shared counter, so long jobs don't stall
/// the queue behind them; result slots are fixed per input index, so the
/// output is identical for every `threads` value. `threads <= 1` (or a
/// single item) degrades to a plain sequential map with no thread spawn.
///
/// # Panics
///
/// A panicking job propagates the panic to the caller (via scope join).
pub fn map_ordered<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = jobs[i].lock().unwrap().take().expect("job taken once");
                let result = f(item);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

/// Fallible [`map_ordered`]: runs every job, then returns the first error
/// **in input order** (not completion order), so failures are as
/// deterministic as successes.
///
/// # Errors
///
/// Returns the error of the earliest-indexed failing job.
pub fn try_map_ordered<T, R, E, F>(items: Vec<T>, threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
{
    map_ordered(items, threads, f).into_iter().collect()
}

/// Parallel map + deterministic reduce: maps every item on up to `threads`
/// workers, then left-folds the mapped results **in input order** into
/// `init`.
///
/// This is the chunk map-reduce shape behind the fused analysis engine:
/// per-chunk work (decode + partial aggregation) fans out, while the
/// reduce runs sequentially in chunk order, so the final accumulator is
/// bit-identical at every thread count as long as `reduce` itself is
/// deterministic.
pub fn map_reduce_ordered<T, R, A, F, G>(
    items: Vec<T>,
    threads: usize,
    init: A,
    map: F,
    reduce: G,
) -> A
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    map_ordered(items, threads, map)
        .into_iter()
        .fold(init, reduce)
}

/// Fallible [`map_reduce_ordered`]: the reduce only runs if every mapped
/// job succeeded; otherwise the earliest-indexed error is returned, as in
/// [`try_map_ordered`].
///
/// # Errors
///
/// Returns the error of the earliest-indexed failing map job.
pub fn try_map_reduce_ordered<T, R, A, E, F, G>(
    items: Vec<T>,
    threads: usize,
    init: A,
    map: F,
    reduce: G,
) -> Result<A, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
    G: FnMut(A, R) -> A,
{
    Ok(try_map_ordered(items, threads, map)?
        .into_iter()
        .fold(init, reduce))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_is_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = map_ordered(items.clone(), threads, |x| {
                // stagger finish times so completion order differs from
                // input order on real multi-core hosts
                if x % 3 == 0 {
                    std::thread::yield_now();
                }
                x * x
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_ordered(empty, 4, |x| x).is_empty());
        assert_eq!(map_ordered(vec![7], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn try_map_reports_the_earliest_error() {
        let items: Vec<u32> = (0..20).collect();
        for threads in [1, 4] {
            let err = try_map_ordered(
                items.clone(),
                threads,
                |x| {
                    if x >= 5 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                },
            )
            .unwrap_err();
            assert_eq!(err, 5, "threads={threads}");
        }
        let ok = try_map_ordered(items, 4, Ok::<u32, ()>).unwrap();
        assert_eq!(ok.len(), 20);
    }

    #[test]
    fn map_reduce_folds_in_input_order_at_any_thread_count() {
        let items: Vec<u64> = (1..=24).collect();
        // non-commutative reduce: string concatenation exposes any
        // out-of-order merge immediately
        let expected = items
            .iter()
            .map(|x| (x * 2).to_string())
            .collect::<Vec<_>>()
            .join(",");
        for threads in [1, 3, 16] {
            let got = map_reduce_ordered(
                items.clone(),
                threads,
                String::new(),
                |x| (x * 2).to_string(),
                |mut acc, s| {
                    if !acc.is_empty() {
                        acc.push(',');
                    }
                    acc.push_str(&s);
                    acc
                },
            );
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn try_map_reduce_propagates_the_earliest_error() {
        let items: Vec<u32> = (0..10).collect();
        let err = try_map_reduce_ordered(
            items.clone(),
            4,
            0u32,
            |x| if x % 2 == 1 { Err(x) } else { Ok(x) },
            |a, b| a + b,
        )
        .unwrap_err();
        assert_eq!(err, 1);
        let sum = try_map_reduce_ordered(items, 4, 0u32, Ok::<u32, ()>, |a, b| a + b).unwrap();
        assert_eq!(sum, 45);
    }

    #[test]
    fn configured_threads_respects_the_global_override() {
        set_global_threads(3);
        assert_eq!(configured_threads(), 3);
        set_global_threads(0);
        assert!(configured_threads() >= 1);
    }
}
