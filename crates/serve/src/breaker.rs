//! Per-store circuit breakers: failure isolation between catalog
//! entries.
//!
//! One rotten store must not soak up worker time that healthy stores'
//! clients are paying for. Each store gets an independent breaker driven
//! only by **hard** failures — catalog opens that error, 500-class
//! query/report failures, a panic inside the store's handler. Salvage
//! answers are successes: a damaged store that still answers (with exact
//! loss accounting) is serving, not failing.
//!
//! The state machine is the classic three states, made fully
//! deterministic so tests can assert the exact cycle:
//!
//! ```text
//!            N consecutive failures
//!   Closed ──────────────────────────▶ Open
//!     ▲                                 │ rejects the next K requests
//!     │ probe succeeds                  │ with 503 + Retry-After
//!     │                                 ▼
//!     └────────────────────────────  HalfOpen ── probe fails ──▶ Open
//!                                    (admits exactly one probe)   (K doubles)
//! ```
//!
//! Cooldowns are counted in *rejected requests*, not wall time — the
//! daemon has no business guessing how fast a disk gets replaced, and a
//! count-based window makes every transition reproducible in tests. `K`
//! starts at [`BreakerConfig::cooldown`] and doubles per consecutive
//! trip (capped at 8x), plus a small seeded, per-store jitter so a fleet
//! of breakers over identical stores does not probe in lockstep — the
//! jitter is a pure function of `(seed, store, trip)`, so runs stay
//! deterministic end to end ([`cooldown_rejections`]).

use std::collections::HashMap;
use std::sync::Mutex;

/// Breaker tuning; one config governs every store's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive hard failures that trip a closed breaker. 0 disables
    /// breaking entirely.
    pub threshold: u32,
    /// Base cooldown: requests rejected while open before the first
    /// half-open probe (doubles per consecutive trip, capped at 8x).
    pub cooldown: u32,
    /// Seed for the deterministic per-store cooldown jitter.
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 5,
            cooldown: 8,
            seed: 0,
        }
    }
}

/// Breaker state for one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are rejected with 503 until the cooldown count
    /// is spent.
    Open,
    /// Cooldown spent: exactly one probe request is admitted; its
    /// outcome closes or re-opens the breaker.
    HalfOpen,
}

impl BreakerState {
    /// Lowercase name for JSON rendering.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What [`BreakerSet::admit`] decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed normally.
    Allow,
    /// Proceed as the half-open probe: this request's outcome decides
    /// the breaker's next state.
    Probe,
    /// Reject with `503` and this `Retry-After` (seconds).
    Reject {
        /// Deterministic client back-off, derived from the rejections
        /// still to be served before the next probe.
        retry_after_secs: u64,
    },
}

/// A state transition worth surfacing (span events, counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// Closed → Open after `trip` consecutive-failure streaks (1-based).
    Tripped {
        /// Consecutive trip ordinal since the breaker last closed.
        trip: u32,
    },
    /// Open → HalfOpen: the next admitted request is the probe.
    ProbeArmed,
    /// HalfOpen → Closed: the probe succeeded.
    Closed,
}

#[derive(Debug)]
struct StoreBreaker {
    state: BreakerState,
    /// Consecutive hard failures while closed.
    consecutive: u32,
    /// Rejections left to serve before arming the half-open probe.
    rejections_left: u32,
    /// Consecutive trips since the breaker last closed (cooldown grows
    /// with it).
    trips: u32,
    /// Whether the half-open probe is currently in flight.
    probing: bool,
}

impl StoreBreaker {
    fn new() -> Self {
        StoreBreaker {
            state: BreakerState::Closed,
            consecutive: 0,
            rejections_left: 0,
            trips: 0,
            probing: false,
        }
    }
}

/// The cooldown (rejected requests before a probe) for a store's
/// `trip`-th consecutive trip: base doubled per trip, capped at 8x, plus
/// a seeded per-store jitter in `0..=cooldown/2`. Pure, so tests can
/// predict every transition.
pub fn cooldown_rejections(config: &BreakerConfig, store: &str, trip: u32) -> u32 {
    let base = config.cooldown.max(1);
    let scaled = base.saturating_mul(1 << trip.saturating_sub(1).min(3));
    // FNV-1a over the store name, folded with seed and trip through a
    // splitmix64 finalizer: deterministic, but decorrelated across stores
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in store.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h ^ config.seed ^ (u64::from(trip) << 32);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    scaled + (z % u64::from(base / 2 + 1)) as u32
}

/// All stores' breakers behind one lock (the critical section is a few
/// integer updates; store handlers run outside it).
#[derive(Debug)]
pub struct BreakerSet {
    config: BreakerConfig,
    stores: Mutex<HashMap<String, StoreBreaker>>,
}

/// One store's externally visible breaker state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerStatus {
    /// Store name.
    pub store: String,
    /// Current state.
    pub state: BreakerState,
    /// Consecutive trips since last close.
    pub trips: u32,
    /// Rejections left before the probe (open state only).
    pub rejections_left: u32,
}

impl BreakerSet {
    /// A breaker set where every store starts closed.
    pub fn new(config: BreakerConfig) -> Self {
        BreakerSet {
            config,
            stores: Mutex::new(HashMap::new()),
        }
    }

    /// Gate one request for `store`. `Reject` costs one unit of the open
    /// cooldown; when the cooldown is spent the breaker half-opens and
    /// the *next* request is admitted as the probe.
    pub fn admit(&self, store: &str) -> (Admission, Option<BreakerEvent>) {
        if self.config.threshold == 0 {
            return (Admission::Allow, None);
        }
        let mut stores = self.stores.lock().expect("breaker lock poisoned");
        let b = stores
            .entry(store.to_string())
            .or_insert_with(StoreBreaker::new);
        match b.state {
            BreakerState::Closed => (Admission::Allow, None),
            BreakerState::Open => {
                b.rejections_left = b.rejections_left.saturating_sub(1);
                let retry = u64::from(b.rejections_left).clamp(1, 8);
                if b.rejections_left == 0 {
                    b.state = BreakerState::HalfOpen;
                    b.probing = false;
                    (
                        Admission::Reject {
                            retry_after_secs: retry,
                        },
                        Some(BreakerEvent::ProbeArmed),
                    )
                } else {
                    (
                        Admission::Reject {
                            retry_after_secs: retry,
                        },
                        None,
                    )
                }
            }
            BreakerState::HalfOpen => {
                if b.probing {
                    // one probe at a time; everyone else keeps backing off
                    (
                        Admission::Reject {
                            retry_after_secs: 1,
                        },
                        None,
                    )
                } else {
                    b.probing = true;
                    (Admission::Probe, None)
                }
            }
        }
    }

    /// Record the outcome of an admitted (`Allow` or `Probe`) request.
    /// Success closes and fully resets the breaker; failure advances it
    /// toward (or back to) open.
    pub fn record(&self, store: &str, success: bool) -> Option<BreakerEvent> {
        if self.config.threshold == 0 {
            return None;
        }
        let mut stores = self.stores.lock().expect("breaker lock poisoned");
        let b = stores
            .entry(store.to_string())
            .or_insert_with(StoreBreaker::new);
        if success {
            let was_probe = b.state == BreakerState::HalfOpen;
            *b = StoreBreaker::new();
            return was_probe.then_some(BreakerEvent::Closed);
        }
        match b.state {
            BreakerState::HalfOpen => {
                // failed probe: reopen with a doubled (capped) cooldown
                b.trips += 1;
                b.state = BreakerState::Open;
                b.probing = false;
                b.consecutive = 0;
                b.rejections_left = cooldown_rejections(&self.config, store, b.trips);
                Some(BreakerEvent::Tripped { trip: b.trips })
            }
            BreakerState::Closed => {
                b.consecutive += 1;
                if b.consecutive >= self.config.threshold {
                    b.trips += 1;
                    b.state = BreakerState::Open;
                    b.consecutive = 0;
                    b.rejections_left = cooldown_rejections(&self.config, store, b.trips);
                    Some(BreakerEvent::Tripped { trip: b.trips })
                } else {
                    None
                }
            }
            // late completion racing a rejection window: nothing to do
            BreakerState::Open => None,
        }
    }

    /// Every store the set has seen, with its current state (sorted by
    /// name for deterministic rendering).
    pub fn snapshot(&self) -> Vec<BreakerStatus> {
        let stores = self.stores.lock().expect("breaker lock poisoned");
        let mut out: Vec<BreakerStatus> = stores
            .iter()
            .map(|(name, b)| BreakerStatus {
                store: name.clone(),
                state: b.state,
                trips: b.trips,
                rejections_left: b.rejections_left,
            })
            .collect();
        out.sort_by(|a, b| a.store.cmp(&b.store));
        out
    }

    /// `(open, half_open)` store counts, for `/metrics` gauges.
    pub fn open_counts(&self) -> (u64, u64) {
        let stores = self.stores.lock().expect("breaker lock poisoned");
        let open = stores
            .values()
            .filter(|b| b.state == BreakerState::Open)
            .count() as u64;
        let half = stores
            .values()
            .filter(|b| b.state == BreakerState::HalfOpen)
            .count() as u64;
        (open, half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, cooldown: u32) -> BreakerConfig {
        BreakerConfig {
            threshold,
            cooldown,
            seed: 7,
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures_only() {
        let set = BreakerSet::new(cfg(3, 2));
        assert_eq!(set.admit("a").0, Admission::Allow);
        assert_eq!(set.record("a", false), None);
        assert_eq!(set.record("a", false), None);
        // a success resets the streak
        assert_eq!(set.record("a", true), None);
        assert_eq!(set.record("a", false), None);
        assert_eq!(set.record("a", false), None);
        let e = set.record("a", false);
        assert_eq!(e, Some(BreakerEvent::Tripped { trip: 1 }));
        assert!(matches!(set.admit("a").0, Admission::Reject { .. }));
    }

    #[test]
    fn full_cycle_open_half_open_probe_close_is_deterministic() {
        let config = cfg(2, 2);
        let set = BreakerSet::new(config);
        set.record("s", false);
        assert_eq!(
            set.record("s", false),
            Some(BreakerEvent::Tripped { trip: 1 })
        );
        // exactly cooldown_rejections(…, 1) rejections, last one arms the probe
        let k = cooldown_rejections(&config, "s", 1);
        for i in 0..k {
            let (adm, event) = set.admit("s");
            assert!(matches!(adm, Admission::Reject { .. }), "rejection {i}");
            assert_eq!(event.is_some(), i + 1 == k, "probe arms on the last one");
        }
        // one probe admitted; a concurrent request keeps being rejected
        assert_eq!(set.admit("s").0, Admission::Probe);
        assert!(matches!(set.admit("s").0, Admission::Reject { .. }));
        // failed probe reopens with the doubled trip-2 cooldown
        assert_eq!(
            set.record("s", false),
            Some(BreakerEvent::Tripped { trip: 2 })
        );
        let k2 = cooldown_rejections(&config, "s", 2);
        assert!(k2 > k, "cooldown must grow per consecutive trip");
        for _ in 0..k2 {
            assert!(matches!(set.admit("s").0, Admission::Reject { .. }));
        }
        assert_eq!(set.admit("s").0, Admission::Probe);
        // successful probe closes and fully resets
        assert_eq!(set.record("s", true), Some(BreakerEvent::Closed));
        assert_eq!(set.admit("s").0, Admission::Allow);
        assert_eq!(set.snapshot()[0].state, BreakerState::Closed);
        assert_eq!(set.snapshot()[0].trips, 0);
    }

    #[test]
    fn stores_fail_independently() {
        let set = BreakerSet::new(cfg(1, 2));
        set.record("bad", false);
        assert!(matches!(set.admit("bad").0, Admission::Reject { .. }));
        assert_eq!(set.admit("good").0, Admission::Allow);
        let (open, half) = set.open_counts();
        assert_eq!((open, half), (1, 0));
    }

    #[test]
    fn zero_threshold_disables_breaking() {
        let set = BreakerSet::new(cfg(0, 2));
        for _ in 0..50 {
            set.record("s", false);
        }
        assert_eq!(set.admit("s").0, Admission::Allow);
        assert!(set.snapshot().is_empty());
    }

    #[test]
    fn cooldown_is_pure_seeded_and_grows_capped() {
        let config = cfg(3, 8);
        let a = cooldown_rejections(&config, "store-a", 1);
        assert_eq!(a, cooldown_rejections(&config, "store-a", 1));
        // jitter stays within base/2 of the scaled base
        for trip in 1..=6u32 {
            let scaled = 8 * (1 << (trip - 1).min(3));
            let k = cooldown_rejections(&config, "store-a", trip);
            assert!((scaled..=scaled + 4).contains(&k), "trip {trip}: {k}");
        }
        // different stores (and seeds) de-correlate, same bounds
        let b = cooldown_rejections(&config, "store-b", 1);
        assert!((8..=12).contains(&b));
    }
}
