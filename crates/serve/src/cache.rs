//! The sharded decoded-chunk cache: the daemon's working set.
//!
//! Queries and reports over the same store keep touching the same chunks,
//! and decoding a chunk (CRC verify + four adaptive column decodes) is the
//! dominant per-request cost once the footer has pruned the candidate
//! set. The cache keeps decoded [`ColumnBatch`]es keyed by
//! `(store id, chunk ordinal)` behind `Arc`s, so any number of concurrent
//! requests share one decode.
//!
//! Sharding: keys hash onto `N` independent shards, each its own mutex,
//! so concurrent requests for different chunks rarely contend on the same
//! lock. The global byte budget is split evenly across shards and each
//! shard evicts its own least-recently-used entries when its slice
//! overflows — eviction never needs a cross-shard lock. Recency is a
//! per-shard monotonic tick stamped on each hit.
//!
//! Correctness note: the cache stores *successful* decodes only. A
//! corrupt chunk fails decode on every fetch, so salvage accounting in
//! the request layer sees the same error whether or not its neighbors
//! are cached — responses stay byte-identical to a cold, cache-free scan.

use pinpoint_store::{ColumnBatch, StoreError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache lookup counters, cumulative since startup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a cached batch.
    pub hits: u64,
    /// Lookups that ran the decode closure.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Decoded bytes currently resident across all shards.
    pub bytes: u64,
    /// Entries currently resident across all shards.
    pub entries: u64,
}

#[derive(Debug)]
struct Entry {
    batch: Arc<ColumnBatch>,
    bytes: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<(u64, usize), Entry>,
    bytes: u64,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: (u64, usize)) -> Option<Arc<ColumnBatch>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.batch)
        })
    }

    /// Inserts `batch`, evicting least-recently-used entries as needed to
    /// keep this shard under `budget`. Returns the number of evictions.
    fn insert(&mut self, key: (u64, usize), batch: Arc<ColumnBatch>, budget: u64) -> u64 {
        self.tick += 1;
        let bytes = batch.heap_bytes() as u64;
        if let Some(old) = self.map.insert(
            key,
            Entry {
                batch,
                bytes,
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        let mut evicted = 0;
        while self.bytes > budget && self.map.len() > 1 {
            let oldest = self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match oldest {
                Some(k) => {
                    let e = self.map.remove(&k).expect("oldest key present");
                    self.bytes -= e.bytes;
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }
}

/// A sharded LRU cache of decoded chunks under a global byte budget.
#[derive(Debug)]
pub struct ChunkCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ChunkCache {
    /// Creates a cache with the given total byte budget across
    /// `shards` independent LRU shards (clamped to at least 1 each).
    pub fn new(budget_bytes: u64, shards: usize) -> Self {
        let shards = shards.max(1);
        ChunkCache {
            shard_budget: (budget_bytes / shards as u64).max(1),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: (u64, usize)) -> &Mutex<Shard> {
        // Fibonacci hashing over the mixed key; any deterministic spread
        // works, the shard choice never affects results.
        let mixed = key
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.1 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 32) as usize % self.shards.len()]
    }

    /// Returns the cached batch for `(store_id, chunk)`, or runs `decode`
    /// and caches its result. Decode errors are returned and never cached.
    ///
    /// The decode closure runs *outside* the shard lock, so a slow decode
    /// blocks neither hits on other chunks of the same shard nor
    /// concurrent misses; two racing misses on the same chunk may both
    /// decode, and the later insert simply wins (same bytes either way).
    ///
    /// # Errors
    ///
    /// Whatever `decode` returns.
    pub fn get_or_decode<F>(
        &self,
        store_id: u64,
        chunk: usize,
        decode: F,
    ) -> Result<Arc<ColumnBatch>, StoreError>
    where
        F: FnOnce() -> Result<ColumnBatch, StoreError>,
    {
        let key = (store_id, chunk);
        let shard = self.shard_for(key);
        if let Some(batch) = shard.lock().expect("cache shard poisoned").touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(batch);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let batch = Arc::new(decode()?);
        let evicted = shard.lock().expect("cache shard poisoned").insert(
            key,
            Arc::clone(&batch),
            self.shard_budget,
        );
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(batch)
    }

    /// Drops every cached chunk of the given store (e.g. when the catalog
    /// reopens it after a file change).
    pub fn invalidate_store(&self, store_id: u64) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard poisoned");
            let keys: Vec<_> = s
                .map
                .keys()
                .filter(|(id, _)| *id == store_id)
                .copied()
                .collect();
            for k in keys {
                let e = s.map.remove(&k).expect("key present");
                s.bytes -= e.bytes;
            }
        }
    }

    /// A consistent-enough snapshot of the counters (each shard is locked
    /// in turn; totals may straddle in-flight lookups).
    pub fn stats(&self) -> CacheStats {
        let mut st = CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            let s = shard.lock().expect("cache shard poisoned");
            st.bytes += s.bytes;
            st.entries += s.map.len() as u64;
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_store::{write_store_chunked, SharedStoreReader};
    use pinpoint_trace::{BlockId, EventKind, MemoryKind, Trace};

    /// A store with 8 equally sized chunks of 64 events each.
    fn fixture() -> SharedStoreReader {
        let mut t = Trace::new();
        for i in 0..512u64 {
            t.record(
                i * 5,
                EventKind::Write,
                BlockId(i % 13),
                256,
                0,
                MemoryKind::Activation,
                None,
            );
        }
        let mut bytes = Vec::new();
        write_store_chunked(&t, &mut bytes, 64).unwrap();
        SharedStoreReader::from_bytes(bytes).unwrap()
    }

    #[test]
    fn hit_after_miss_shares_the_batch() {
        let r = fixture();
        let cache = ChunkCache::new(1 << 20, 4);
        let a = cache.get_or_decode(1, 0, || r.decode_chunk(0)).unwrap();
        let b = cache
            .get_or_decode(1, 0, || panic!("must not re-decode"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
        assert!(st.bytes > 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let r = fixture();
        let cache = ChunkCache::new(1 << 20, 2);
        let err = cache.get_or_decode(1, 3, || {
            Err::<ColumnBatch, _>(StoreError::Truncated("chunk payload"))
        });
        assert!(err.is_err());
        // the next lookup decodes again (and may succeed)
        cache.get_or_decode(1, 3, || r.decode_chunk(3)).unwrap();
        let st = cache.stats();
        assert_eq!(st.misses, 2);
        assert_eq!(st.entries, 1);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let r = fixture();
        // one shard so recency order is total; budget fits ~2 batches
        let unit = r.decode_chunk(0).unwrap().heap_bytes() as u64;
        let budget = unit * 2 + unit / 2;
        let cache = ChunkCache::new(budget, 1);
        cache.get_or_decode(1, 0, || r.decode_chunk(0)).unwrap();
        cache.get_or_decode(1, 1, || r.decode_chunk(1)).unwrap();
        cache.get_or_decode(1, 0, || panic!("0 still hot")).unwrap();
        cache.get_or_decode(1, 2, || r.decode_chunk(2)).unwrap();
        // chunk 1 was least recently used and must be gone
        let st = cache.stats();
        assert!(st.evictions >= 1, "{st:?}");
        assert!(st.bytes <= budget, "{st:?}");
        cache.get_or_decode(1, 0, || panic!("0 survived")).unwrap();
        let mut redecoded = false;
        cache
            .get_or_decode(1, 1, || {
                redecoded = true;
                r.decode_chunk(1)
            })
            .unwrap();
        assert!(redecoded, "chunk 1 should have been evicted");
    }

    #[test]
    fn invalidate_store_clears_only_that_store() {
        let r = fixture();
        let cache = ChunkCache::new(1 << 20, 4);
        for c in 0..6 {
            cache.get_or_decode(7, c, || r.decode_chunk(c)).unwrap();
            cache.get_or_decode(8, c, || r.decode_chunk(c)).unwrap();
        }
        cache.invalidate_store(7);
        let st = cache.stats();
        assert_eq!(st.entries, 6, "{st:?}");
        cache
            .get_or_decode(8, 0, || panic!("store 8 untouched"))
            .unwrap();
    }
}
