//! The store catalog: a directory of `.ptrc` files exposed by name.
//!
//! Stores open lazily on first touch — under [`ReadPolicy::Salvage`], so
//! a damaged store still answers (with exact loss accounting in the
//! response) instead of turning every request into a 500 — and stay open
//! behind `Arc`s. Each opened store gets a process-unique id, the
//! cache-key namespace for its chunks.
//!
//! **Generation tracking.** Every lookup re-validates the on-disk file
//! against the open entry's *generation fingerprint* (file length +
//! mtime). A `.ptrc` replaced in place — `convert` upgrading v2→v3, a
//! profiler overwriting a trace — is detected on the next access: the
//! store is reopened, the new entry gets a fresh cache id, and the
//! superseded id is reported to the caller ([`Resolved::stale_id`]) so
//! both cache tiers can drop the dead entries. A deleted file likewise
//! evicts the open entry (`CatalogError::NotFound` carries the stale id)
//! instead of serving answers from a reader whose file is gone. The
//! generation fingerprint is also the result cache's validity token and
//! the `ETag` ingredient, so "same fingerprint" and "may serve cached
//! bytes" are one condition.
//!
//! Names are the file stem (`resnet18` for `resnet18.ptrc`) and are
//! validated before touching the filesystem: one path component, no
//! separators, no leading dot — a request can never escape the catalog
//! root.

use pinpoint_store::{ReadPolicy, SharedStoreReader, StoreError};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One opened store.
#[derive(Debug)]
pub struct StoreEntry {
    /// Catalog name (file stem).
    pub name: String,
    /// Process-unique id, namespacing this store's chunks in the cache.
    pub id: u64,
    /// Generation fingerprint (file length + mtime) of the bytes behind
    /// [`StoreEntry::reader`]; the result-cache validity token.
    pub generation: u64,
    /// The shared reader, open under [`ReadPolicy::Salvage`].
    pub reader: SharedStoreReader,
}

/// A successful catalog lookup.
#[derive(Debug)]
pub struct Resolved {
    /// The (possibly just-reopened) store entry.
    pub entry: Arc<StoreEntry>,
    /// When the on-disk file changed and the store was reopened: the
    /// superseded entry's cache id, whose cached chunks and results the
    /// caller must invalidate.
    pub stale_id: Option<u64>,
}

/// Why a catalog lookup failed.
#[derive(Debug)]
pub enum CatalogError {
    /// No such store (bad name, or the file does not exist) — a 404.
    /// When an open entry was evicted because its file vanished, its
    /// cache id rides along for invalidation.
    NotFound {
        /// Cache id of the evicted open entry, if one existed.
        stale_id: Option<u64>,
    },
    /// The file exists but cannot be opened or validated — a 500 with
    /// detail.
    Open(StoreError),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::NotFound { .. } => write!(f, "store not found"),
            CatalogError::Open(e) => write!(f, "cannot open store: {e}"),
        }
    }
}

/// Mixes a file's length and mtime into one generation fingerprint.
fn fingerprint(meta: &std::fs::Metadata) -> u64 {
    let mtime_ns = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map_or(0, |d| d.as_nanos() as u64);
    (meta.len().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ mtime_ns)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .max(1) // 0 is reserved for "no generation"
}

/// A lazily opened, name-addressed collection of `.ptrc` stores with
/// per-access staleness validation.
#[derive(Debug)]
pub struct Catalog {
    root: PathBuf,
    open: RwLock<HashMap<String, Arc<StoreEntry>>>,
    next_id: AtomicU64,
}

impl Catalog {
    /// Creates a catalog over the given directory.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Catalog {
            root: root.into(),
            open: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The catalog directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    /// Store names currently on disk (file stems of `*.ptrc`), sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) == Some("ptrc") {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        names.push(stem.to_string());
                    }
                }
            }
        }
        names.sort();
        names
    }

    /// Whether `name` is a safe single-component store name.
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    }

    /// Drops the open entry for `name`, returning its cache id.
    fn evict(&self, name: &str) -> Option<u64> {
        self.open
            .write()
            .expect("catalog lock poisoned")
            .remove(name)
            .map(|e| e.id)
    }

    /// Fetches a store by name, opening it on first touch and
    /// re-validating the generation fingerprint on every access: a file
    /// replaced on disk is reopened (fresh id, [`Resolved::stale_id`] set
    /// to the superseded one), a deleted file evicts the entry.
    ///
    /// # Errors
    ///
    /// [`CatalogError::NotFound`] for invalid names and missing files;
    /// [`CatalogError::Open`] when the file exists but fails validation.
    pub fn get(&self, name: &str) -> Result<Resolved, CatalogError> {
        if !Self::valid_name(name) {
            return Err(CatalogError::NotFound { stale_id: None });
        }
        let path = self.root.join(format!("{name}.ptrc"));
        // re-stat on every access: a missing file evicts, a changed
        // fingerprint reopens — open readers never outlive their bytes
        let generation = match std::fs::metadata(&path) {
            Ok(meta) if meta.is_file() => fingerprint(&meta),
            _ => {
                return Err(CatalogError::NotFound {
                    stale_id: self.evict(name),
                })
            }
        };
        if let Some(entry) = self.open.read().expect("catalog lock poisoned").get(name) {
            if entry.generation == generation {
                return Ok(Resolved {
                    entry: Arc::clone(entry),
                    stale_id: None,
                });
            }
        }
        // first touch, or the fingerprint changed: open the current
        // bytes. If the file is swapped *while* we open it the post-open
        // stat disagrees with the pre-open one; retry against the newer
        // fingerprint (bounded — a live-thrashing file just stays stale
        // for one more request).
        let mut generation = generation;
        let mut reader = None;
        for _ in 0..3 {
            let r = match SharedStoreReader::open_with_policy(&path, ReadPolicy::Salvage) {
                Ok(r) => r,
                Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Err(CatalogError::NotFound {
                        stale_id: self.evict(name),
                    })
                }
                Err(e) => return Err(CatalogError::Open(e)),
            };
            let now = match std::fs::metadata(&path) {
                Ok(meta) if meta.is_file() => fingerprint(&meta),
                _ => {
                    return Err(CatalogError::NotFound {
                        stale_id: self.evict(name),
                    })
                }
            };
            reader = Some(r);
            if now == generation {
                break;
            }
            generation = now;
        }
        let reader = reader.expect("loop ran at least once");
        let mut open = self.open.write().expect("catalog lock poisoned");
        // a racing opener may have beaten us to this same generation;
        // keep the first entry so the cache sees one id per (store,
        // generation)
        if let Some(entry) = open.get(name) {
            if entry.generation == generation {
                return Ok(Resolved {
                    entry: Arc::clone(entry),
                    stale_id: None,
                });
            }
        }
        let stale_id = open.get(name).map(|e| e.id);
        let entry = Arc::new(StoreEntry {
            name: name.to_string(),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            generation,
            reader,
        });
        open.insert(name.to_string(), Arc::clone(&entry));
        Ok(Resolved { entry, stale_id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_store::write_store_file;
    use pinpoint_trace::{BlockId, EventKind, MemoryKind, Trace};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pinpoint-catalog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_fixture(dir: &std::path::Path, name: &str, events: u64) {
        let mut t = Trace::new();
        for i in 0..events {
            t.record(
                i,
                EventKind::Malloc,
                BlockId(i),
                64,
                0,
                MemoryKind::Weight,
                None,
            );
        }
        write_store_file(&t, dir.join(format!("{name}.ptrc"))).unwrap();
    }

    #[test]
    fn lists_and_opens_by_name() {
        let dir = tmp_dir("list");
        write_fixture(&dir, "b", 1);
        write_fixture(&dir, "a", 1);
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        let cat = Catalog::new(&dir);
        assert_eq!(cat.list(), vec!["a".to_string(), "b".to_string()]);
        let a = cat.get("a").unwrap();
        assert_eq!(a.entry.reader.total_events(), 1);
        assert!(a.stale_id.is_none());
        // the same entry (and id) comes back on re-fetch
        let again = cat.get("a").unwrap();
        assert_eq!(again.entry.id, a.entry.id);
        assert!(again.stale_id.is_none());
        assert_ne!(cat.get("b").unwrap().entry.id, a.entry.id);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_hostile_names_are_not_found() {
        let dir = tmp_dir("names");
        let cat = Catalog::new(&dir);
        for name in ["ghost", "../etc/passwd", "a/b", "", ".hidden"] {
            assert!(
                matches!(cat.get(name), Err(CatalogError::NotFound { .. })),
                "{name}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deleted_store_is_not_found_not_a_panic() {
        let dir = tmp_dir("deleted");
        write_fixture(&dir, "gone", 1);
        std::fs::remove_file(dir.join("gone.ptrc")).unwrap();
        let cat = Catalog::new(&dir);
        assert!(matches!(
            cat.get("gone"),
            Err(CatalogError::NotFound { stale_id: None })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replaced_file_reopens_with_fresh_id_and_reports_the_stale_one() {
        let dir = tmp_dir("replace");
        write_fixture(&dir, "s", 2);
        let cat = Catalog::new(&dir);
        let first = cat.get("s").unwrap();
        assert_eq!(first.entry.reader.total_events(), 2);
        // replace in place with different content (different length →
        // different fingerprint regardless of mtime granularity)
        write_fixture(&dir, "s", 7);
        let second = cat.get("s").unwrap();
        assert_eq!(second.entry.reader.total_events(), 7, "must see new bytes");
        assert_ne!(second.entry.id, first.entry.id, "cache id must rotate");
        assert_ne!(second.entry.generation, first.entry.generation);
        assert_eq!(second.stale_id, Some(first.entry.id));
        // stable again afterwards
        let third = cat.get("s").unwrap();
        assert_eq!(third.entry.id, second.entry.id);
        assert!(third.stale_id.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deleting_an_open_store_evicts_it_and_reports_the_stale_id() {
        let dir = tmp_dir("evict");
        write_fixture(&dir, "s", 3);
        let cat = Catalog::new(&dir);
        let open = cat.get("s").unwrap();
        std::fs::remove_file(dir.join("s.ptrc")).unwrap();
        match cat.get("s") {
            Err(CatalogError::NotFound { stale_id }) => {
                assert_eq!(stale_id, Some(open.entry.id))
            }
            other => panic!("want NotFound with stale id, got {other:?}"),
        }
        // and the eviction is once-only
        assert!(matches!(
            cat.get("s"),
            Err(CatalogError::NotFound { stale_id: None })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
