//! The store catalog: a directory of `.ptrc` files exposed by name.
//!
//! Stores open lazily on first touch — under [`ReadPolicy::Salvage`], so
//! a damaged store still answers (with exact loss accounting in the
//! response) instead of turning every request into a 500 — and stay open
//! behind `Arc`s for the daemon's lifetime. Each opened store gets a
//! process-unique id, the cache-key namespace for its chunks.
//!
//! Names are the file stem (`resnet18` for `resnet18.ptrc`) and are
//! validated before touching the filesystem: one path component, no
//! separators, no leading dot — a request can never escape the catalog
//! root. A store whose file has been deleted (or never existed) is a
//! [`CatalogError::NotFound`], which the request layer maps to 404.

use pinpoint_store::{ReadPolicy, SharedStoreReader, StoreError};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One opened store.
#[derive(Debug)]
pub struct StoreEntry {
    /// Catalog name (file stem).
    pub name: String,
    /// Process-unique id, namespacing this store's chunks in the cache.
    pub id: u64,
    /// The shared reader, open under [`ReadPolicy::Salvage`].
    pub reader: SharedStoreReader,
}

/// Why a catalog lookup failed.
#[derive(Debug)]
pub enum CatalogError {
    /// No such store (bad name, or the file does not exist) — a 404.
    NotFound,
    /// The file exists but cannot be opened or validated — a 500 with
    /// detail.
    Open(StoreError),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::NotFound => write!(f, "store not found"),
            CatalogError::Open(e) => write!(f, "cannot open store: {e}"),
        }
    }
}

/// A lazily opened, name-addressed collection of `.ptrc` stores.
#[derive(Debug)]
pub struct Catalog {
    root: PathBuf,
    open: RwLock<HashMap<String, Arc<StoreEntry>>>,
    next_id: AtomicU64,
}

impl Catalog {
    /// Creates a catalog over the given directory.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Catalog {
            root: root.into(),
            open: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The catalog directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    /// Store names currently on disk (file stems of `*.ptrc`), sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) == Some("ptrc") {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        names.push(stem.to_string());
                    }
                }
            }
        }
        names.sort();
        names
    }

    /// Whether `name` is a safe single-component store name.
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    }

    /// Fetches a store by name, opening it on first touch.
    ///
    /// # Errors
    ///
    /// [`CatalogError::NotFound`] for invalid names and missing files;
    /// [`CatalogError::Open`] when the file exists but fails validation.
    pub fn get(&self, name: &str) -> Result<Arc<StoreEntry>, CatalogError> {
        if !Self::valid_name(name) {
            return Err(CatalogError::NotFound);
        }
        if let Some(entry) = self.open.read().expect("catalog lock poisoned").get(name) {
            return Ok(Arc::clone(entry));
        }
        let path = self.root.join(format!("{name}.ptrc"));
        let reader = match SharedStoreReader::open_with_policy(&path, ReadPolicy::Salvage) {
            Ok(r) => r,
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(CatalogError::NotFound)
            }
            Err(e) => return Err(CatalogError::Open(e)),
        };
        let mut open = self.open.write().expect("catalog lock poisoned");
        // a racing opener may have beaten us; keep the first entry so the
        // cache sees one id per store
        if let Some(entry) = open.get(name) {
            return Ok(Arc::clone(entry));
        }
        let entry = Arc::new(StoreEntry {
            name: name.to_string(),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            reader,
        });
        open.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_store::write_store_file;
    use pinpoint_trace::{BlockId, EventKind, MemoryKind, Trace};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pinpoint-catalog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_fixture(dir: &std::path::Path, name: &str) {
        let mut t = Trace::new();
        t.record(
            0,
            EventKind::Malloc,
            BlockId(0),
            64,
            0,
            MemoryKind::Weight,
            None,
        );
        write_store_file(&t, dir.join(format!("{name}.ptrc"))).unwrap();
    }

    #[test]
    fn lists_and_opens_by_name() {
        let dir = tmp_dir("list");
        write_fixture(&dir, "b");
        write_fixture(&dir, "a");
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        let cat = Catalog::new(&dir);
        assert_eq!(cat.list(), vec!["a".to_string(), "b".to_string()]);
        let a = cat.get("a").unwrap();
        assert_eq!(a.reader.total_events(), 1);
        // the same entry (and id) comes back on re-fetch
        assert_eq!(cat.get("a").unwrap().id, a.id);
        assert_ne!(cat.get("b").unwrap().id, a.id);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_hostile_names_are_not_found() {
        let dir = tmp_dir("names");
        let cat = Catalog::new(&dir);
        for name in ["ghost", "../etc/passwd", "a/b", "", ".hidden"] {
            assert!(
                matches!(cat.get(name), Err(CatalogError::NotFound)),
                "{name}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deleted_store_is_not_found_not_a_panic() {
        let dir = tmp_dir("deleted");
        write_fixture(&dir, "gone");
        std::fs::remove_file(dir.join("gone.ptrc")).unwrap();
        let cat = Catalog::new(&dir);
        assert!(matches!(cat.get("gone"), Err(CatalogError::NotFound)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
