//! Per-request deadline budgets.
//!
//! Every admitted request gets a [`Deadline`]: an absolute point on the
//! tracer clock by which the daemon must have answered. The deadline is
//! threaded from accept through parse → catalog lookup → the fused
//! chunk fold, where it becomes a
//! [`CancelToken`](pinpoint_store::CancelToken) polled before every
//! chunk decode — so a doomed scan stops mid-store and the worker
//! answers a deterministic `503` with `Retry-After` instead of finishing
//! work whose client has already given up.
//!
//! The budget clock starts when the connection is *accepted* for the
//! first request of a connection (queue wait spends budget: a request
//! that starved in the queue has less scan time left) and when the
//! request head starts arriving for kept-alive follow-ups. During a
//! graceful drain, every deadline is additionally clamped to the drain
//! deadline, so in-flight work cannot outlive the drain window.

use pinpoint_obs::tracer;
use pinpoint_store::CancelToken;

/// An absolute answer-by point on the tracer clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at_ns: u64,
}

impl Deadline {
    /// A deadline `budget_ms` after `base_ns` (a `tracer().now_ns()`
    /// reading). A zero budget disables the deadline entirely.
    pub fn after(base_ns: u64, budget_ms: u64) -> Self {
        let at_ns = if budget_ms == 0 {
            u64::MAX
        } else {
            base_ns.saturating_add(budget_ms.saturating_mul(1_000_000))
        };
        Deadline { at_ns }
    }

    /// A deadline that never fires.
    pub fn unbounded() -> Self {
        Deadline { at_ns: u64::MAX }
    }

    /// The earlier of this deadline and an absolute clamp point — how a
    /// drain window caps every in-flight request.
    #[must_use]
    pub fn clamped_to(self, at_ns: u64) -> Self {
        Deadline {
            at_ns: self.at_ns.min(at_ns),
        }
    }

    /// The absolute expiry point (tracer clock, ns).
    pub fn at_ns(&self) -> u64 {
        self.at_ns
    }

    /// Whether the budget is spent.
    pub fn exceeded(&self) -> bool {
        self.at_ns != u64::MAX && tracer().now_ns() >= self.at_ns
    }

    /// A [`CancelToken`] view of this deadline, polled by scan loops
    /// before each chunk decode.
    pub fn cancel_token(&self) -> CancelToken {
        if self.at_ns == u64::MAX {
            return CancelToken::never();
        }
        let at = self.at_ns;
        CancelToken::new(move || tracer().now_ns() >= at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_generous_deadline_is_not_exceeded_and_a_spent_one_is() {
        let now = tracer().now_ns();
        let generous = Deadline::after(now, 60_000);
        assert!(!generous.exceeded());
        assert!(!generous.cancel_token().is_cancelled());
        let spent = Deadline::after(now.saturating_sub(2_000_000), 1);
        assert!(spent.exceeded());
        assert!(spent.cancel_token().is_cancelled());
    }

    #[test]
    fn zero_budget_disables_the_deadline() {
        let d = Deadline::after(0, 0);
        assert_eq!(d.at_ns(), u64::MAX);
        assert!(!d.exceeded());
        assert!(!d.cancel_token().is_cancelled());
        assert_eq!(Deadline::unbounded(), d);
    }

    #[test]
    fn clamping_takes_the_earlier_point() {
        let d = Deadline::after(1_000, 10);
        assert_eq!(d.clamped_to(5_000).at_ns(), 5_000);
        assert_eq!(d.clamped_to(u64::MAX), d);
        assert_eq!(Deadline::unbounded().clamped_to(7).at_ns(), 7);
    }
}
