//! A minimal HTTP/1.1 layer over [`TcpStream`], kept in-repo so the
//! daemon builds in hermetic environments with no access to crates.io.
//!
//! Scope is exactly what the daemon needs: one request per connection
//! (every response carries `Connection: close`), `Content-Length` bodies
//! only, bounded header and body sizes so a misbehaving client cannot
//! balloon a worker's memory.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Request path without query string, e.g. `/stores/resnet18/query`.
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// What reading one request from a connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, parseable request.
    Ok(Request),
    /// The peer closed (or sent nothing) before a full head arrived.
    Closed,
    /// The bytes were not parseable HTTP; respond 400 with this detail.
    Malformed(&'static str),
    /// The head or declared body exceeded the size bounds; respond 431/413.
    TooLarge(&'static str),
}

/// Reads one request head + body from the stream.
///
/// # Errors
///
/// Propagates transport errors (including read timeouts) from the socket.
pub fn read_request(stream: &mut TcpStream) -> io::Result<ReadOutcome> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    let split = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Ok(ReadOutcome::TooLarge("request head"));
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(if head.is_empty() {
                ReadOutcome::Closed
            } else {
                ReadOutcome::Malformed("connection closed mid-head")
            });
        }
        head.extend_from_slice(&buf[..n]);
    };
    let (head_bytes, mut rest) = {
        let (h, r) = head.split_at(split + 4);
        (h.to_vec(), r.to_vec())
    };
    let head_text = match std::str::from_utf8(&head_bytes[..split]) {
        Ok(t) => t,
        Err(_) => return Ok(ReadOutcome::Malformed("head is not UTF-8")),
    };
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t),
        _ => return Ok(ReadOutcome::Malformed("bad request line")),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        match line.split_once(':') {
            Some((n, v)) => headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string())),
            None => return Ok(ReadOutcome::Malformed("bad header line")),
        }
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose();
    let content_length = match content_length {
        Ok(v) => v.unwrap_or(0),
        Err(_) => return Ok(ReadOutcome::Malformed("bad content-length")),
    };
    if content_length > MAX_BODY_BYTES {
        return Ok(ReadOutcome::TooLarge("request body"));
    }
    while rest.len() < content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(ReadOutcome::Malformed("connection closed mid-body"));
        }
        rest.extend_from_slice(&buf[..n]);
    }
    rest.truncate(content_length);
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(ReadOutcome::Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        headers,
        body: rest,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct Response {
    status: u16,
    reason: &'static str,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// Starts a response with the given status code.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            reason: reason_phrase(status),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Starts a 200 response with a JSON body.
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        Response::new(200).with_json_body(body)
    }

    /// Sets a JSON body (and content type).
    pub fn with_json_body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self.headers
            .push(("Content-Type".to_string(), "application/json".to_string()));
        self
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The status code (for metrics accounting).
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serializes and writes the response; always closes the connection.
    ///
    /// # Errors
    ///
    /// Propagates transport errors from the socket.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason);
        for (n, v) in &self.headers {
            head.push_str(n);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// A JSON error body: `{"error":"..."}` with the message escaped.
pub fn error_body(msg: &str) -> String {
    let mut s = String::with_capacity(msg.len() + 12);
    s.push_str("{\"error\":");
    pinpoint_trace::json::write_str(&mut s, msg);
    s.push('}');
    s
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn error_body_escapes() {
        assert_eq!(error_body("no \"x\""), "{\"error\":\"no \\\"x\\\"\"}");
    }
}
