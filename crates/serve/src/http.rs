//! A minimal HTTP/1.1 layer over [`TcpStream`], kept in-repo so the
//! daemon builds in hermetic environments with no access to crates.io.
//!
//! Scope is exactly what the daemon needs: `Content-Length` bodies only,
//! bounded head and body sizes so a misbehaving client cannot balloon a
//! worker's memory, and persistent connections — `Connection: keep-alive`
//! is honored (the HTTP/1.1 default), with the requests-per-connection
//! loop bounded by the server. The per-connection state that makes the
//! repeated-request path cheap lives in [`ConnBuffers`]: one reusable
//! read buffer (carrying pipelined bytes between requests) and one
//! reusable response-head buffer, so a steady-state request/response
//! cycle does not reallocate. Response bodies are either owned or
//! `Arc`-shared ([`Body`]) — a cached body is written straight from the
//! cache's allocation via a vectored write, never copied per response.

use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Largest accepted request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Per-connection reusable buffers: the read accumulator (which also
/// carries bytes read past the end of one request into the next) and the
/// response-head serialization buffer. A worker keeps one `ConnBuffers`
/// for its lifetime and [`ConnBuffers::reset`]s it per connection — the
/// allocations survive, so steady-state request handling reuses them.
#[derive(Debug, Default)]
pub struct ConnBuffers {
    /// Read accumulator; bytes read past one request's end stay here as
    /// carry-over for the next one.
    pub(crate) data: Vec<u8>,
    /// Reusable response-head buffer for [`Response::write_to`].
    pub(crate) head_out: Vec<u8>,
}

impl ConnBuffers {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears per-connection state while keeping the allocations.
    pub fn reset(&mut self) {
        self.data.clear();
        self.head_out.clear();
    }
}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Request path without query string, e.g. `/stores/resnet18/query`.
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the request line said `HTTP/1.1` (vs `HTTP/1.0`).
    pub http11: bool,
}

impl Request {
    /// The first header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open: the
    /// HTTP/1.1 default, overridden either way by a `close` /
    /// `keep-alive` token in the `Connection` header.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => {
                let mut keep = self.http11;
                for token in v.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        keep = false;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep = true;
                    }
                }
                keep
            }
            None => self.http11,
        }
    }
}

/// What reading one request from a connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, parseable request.
    Ok(Request),
    /// The peer closed (or sent nothing) before a full head arrived.
    Closed,
    /// The bytes were not parseable HTTP; respond 400 with this detail.
    Malformed(&'static str),
    /// The head or declared body exceeded the size bounds; respond 431/413.
    TooLarge(&'static str),
}

/// Reads one request head + body from the stream into the connection's
/// reusable buffers. Bytes read past the end of the request (a pipelined
/// follow-up) stay in `bufs` and are consumed by the next call before
/// touching the socket.
///
/// # Errors
///
/// Propagates transport errors (including read timeouts) from the socket.
pub fn read_request(stream: &mut TcpStream, bufs: &mut ConnBuffers) -> io::Result<ReadOutcome> {
    let data = &mut bufs.data;
    let mut buf = [0u8; 4096];
    let split = loop {
        if let Some(pos) = find_head_end(data) {
            break pos;
        }
        if data.len() > MAX_HEAD_BYTES {
            return Ok(ReadOutcome::TooLarge("request head"));
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(if data.is_empty() {
                ReadOutcome::Closed
            } else {
                ReadOutcome::Malformed("connection closed mid-head")
            });
        }
        data.extend_from_slice(&buf[..n]);
    };
    let parsed = {
        let head_text = match std::str::from_utf8(&data[..split]) {
            Ok(t) => t,
            Err(_) => return Ok(ReadOutcome::Malformed("head is not UTF-8")),
        };
        match parse_head(head_text) {
            Ok(p) => p,
            Err(detail) => return Ok(ReadOutcome::Malformed(detail)),
        }
    };
    let content_length = match parsed.content_length {
        Ok(len) => len,
        Err(detail) => return Ok(ReadOutcome::Malformed(detail)),
    };
    if content_length > MAX_BODY_BYTES {
        return Ok(ReadOutcome::TooLarge("request body"));
    }
    let body_start = split + 4;
    while data.len() < body_start + content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(ReadOutcome::Malformed("connection closed mid-body"));
        }
        data.extend_from_slice(&buf[..n]);
    }
    let request = Request {
        method: parsed.method,
        path: parsed.path,
        headers: parsed.headers,
        body: data[body_start..body_start + content_length].to_vec(),
        http11: parsed.http11,
    };
    // keep only the carry-over (pipelined) bytes for the next request
    data.drain(..body_start + content_length);
    Ok(ReadOutcome::Ok(request))
}

struct ParsedHead {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    content_length: Result<usize, &'static str>,
    http11: bool,
}

fn parse_head(head_text: &str) -> Result<ParsedHead, &'static str> {
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t, v),
        _ => return Err("bad request line"),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        match line.split_once(':') {
            Some((n, v)) => headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string())),
            None => return Err("bad header line"),
        }
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map_or(Ok(0), |(_, v)| {
            v.parse::<usize>().map_err(|_| "bad content-length")
        });
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(ParsedHead {
        method: method.to_ascii_uppercase(),
        path,
        headers,
        content_length,
        http11: version != "HTTP/1.0",
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response body: owned bytes, or a shared slice out of the result
/// cache — serving a cached body clones an `Arc`, never the bytes.
#[derive(Debug)]
pub enum Body {
    /// Bytes owned by this response.
    Owned(Vec<u8>),
    /// Bytes shared with the result cache (and any concurrent response).
    Shared(Arc<[u8]>),
}

impl Body {
    fn as_slice(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(a) => a,
        }
    }
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct Response {
    status: u16,
    reason: &'static str,
    headers: Vec<(String, String)>,
    body: Body,
}

impl Response {
    /// Starts a response with the given status code.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            reason: reason_phrase(status),
            headers: Vec::new(),
            body: Body::Owned(Vec::new()),
        }
    }

    /// Starts a 200 response with a JSON body.
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        Response::new(200).with_json_body(body)
    }

    /// Starts a 200 response whose JSON body is shared with the result
    /// cache — written by reference, no copy.
    pub fn json_shared(body: Arc<[u8]>) -> Self {
        let mut r = Response::new(200);
        r.body = Body::Shared(body);
        r.headers
            .push(("Content-Type".to_string(), "application/json".to_string()));
        r
    }

    /// Sets a JSON body (and content type).
    pub fn with_json_body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = Body::Owned(body.into());
        self.headers
            .push(("Content-Type".to_string(), "application/json".to_string()));
        self
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The status code (for metrics accounting).
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serializes and writes the response. The head is built in the
    /// caller's reusable buffer and the head + body go out in one
    /// vectored write (with a fallback loop for partial writes), so a
    /// cache-served response costs zero allocations and no body copy.
    /// `keep_alive` selects the `Connection:` header; the caller owns the
    /// decision (client's wish, bounded per-connection request budget,
    /// shutdown state).
    ///
    /// # Errors
    ///
    /// Propagates transport errors from the socket.
    pub fn write_to(
        &self,
        stream: &mut TcpStream,
        keep_alive: bool,
        head_buf: &mut Vec<u8>,
    ) -> io::Result<()> {
        let body = self.body.as_slice();
        head_buf.clear();
        write!(head_buf, "HTTP/1.1 {} {}\r\n", self.status, self.reason)?;
        for (n, v) in &self.headers {
            head_buf.extend_from_slice(n.as_bytes());
            head_buf.extend_from_slice(b": ");
            head_buf.extend_from_slice(v.as_bytes());
            head_buf.extend_from_slice(b"\r\n");
        }
        write!(head_buf, "Content-Length: {}\r\n", body.len())?;
        head_buf.extend_from_slice(if keep_alive {
            b"Connection: keep-alive\r\n\r\n"
        } else {
            b"Connection: close\r\n\r\n"
        });
        let total = head_buf.len() + body.len();
        let mut written = 0;
        while written < total {
            let n = if written < head_buf.len() {
                stream.write_vectored(&[IoSlice::new(&head_buf[written..]), IoSlice::new(body)])?
            } else {
                stream.write(&body[written - head_buf.len()..])?
            };
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "connection closed mid-response",
                ));
            }
            written += n;
        }
        stream.flush()
    }
}

/// A JSON error body: `{"error":"..."}` with the message escaped.
pub fn error_body(msg: &str) -> String {
    let mut s = String::with_capacity(msg.len() + 12);
    s.push_str("{\"error\":");
    pinpoint_trace::json::write_str(&mut s, msg);
    s.push('}');
    s
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        304 => "Not Modified",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn error_body_escapes() {
        assert_eq!(error_body("no \"x\""), "{\"error\":\"no \\\"x\\\"\"}");
    }

    fn parsed(head: &str) -> Request {
        let p = parse_head(head).unwrap();
        Request {
            method: p.method,
            path: p.path,
            headers: p.headers,
            body: Vec::new(),
            http11: p.http11,
        }
    }

    #[test]
    fn keep_alive_follows_version_default_and_connection_header() {
        assert!(parsed("GET / HTTP/1.1").wants_keep_alive());
        assert!(!parsed("GET / HTTP/1.0").wants_keep_alive());
        assert!(!parsed("GET / HTTP/1.1\r\nConnection: close").wants_keep_alive());
        assert!(!parsed("GET / HTTP/1.1\r\nConnection: Close").wants_keep_alive());
        assert!(parsed("GET / HTTP/1.0\r\nConnection: keep-alive").wants_keep_alive());
        assert!(parsed("GET / HTTP/1.1\r\nConnection: foo, keep-alive").wants_keep_alive());
    }

    #[test]
    fn bad_heads_are_malformed() {
        assert!(parse_head("NONSENSE").is_err());
        assert!(parse_head("GET / SMTP/1.0").is_err());
        assert!(parse_head("GET / HTTP/1.1\r\nbadline").is_err());
        let p = parse_head("POST / HTTP/1.1\r\nContent-Length: zzz").unwrap();
        assert!(p.content_length.is_err());
    }
}
