//! # pinpoint-serve
//!
//! A concurrent trace-query daemon over `.ptrc` stores — the service
//! layer that turns the offline analysis toolkit into something many
//! clients can hit at once.
//!
//! The CLI answers one question per process launch, re-opening and
//! re-decoding the store every time. A training-infrastructure team
//! asking many questions of the same traces (dashboards, regression
//! bots, engineers poking at an OOM) wants the opposite shape: one
//! long-running process that keeps hot chunks decoded and shares them
//! across requests. That is this crate:
//!
//! - **HTTP/1.1 over `std::net`** ([`http`]) — hand-rolled
//!   request/response framing, because the build is hermetic (no
//!   crates.io); bounded head/body sizes, persistent connections
//!   (`Connection: keep-alive` honored, bounded requests per
//!   connection), per-connection reusable buffers, vectored writes.
//! - **A name-addressed store catalog** ([`catalog`]) — a directory of
//!   `.ptrc` files, opened lazily under
//!   [`ReadPolicy::Salvage`](pinpoint_store::ReadPolicy) so damaged
//!   stores answer with exact loss accounting instead of erroring. Every
//!   access re-validates a generation fingerprint (file length + mtime):
//!   a store replaced or deleted on disk is reopened or evicted, and
//!   both cache tiers drop its entries.
//! - **A sharded decoded-chunk cache** ([`cache`]) — `Arc`'d
//!   [`ColumnBatch`](pinpoint_store::ColumnBatch)es keyed by
//!   `(store, chunk)`, LRU-evicted under a global byte budget; the unit
//!   of sharing between concurrent requests.
//! - **A generation-aware result cache** ([`result_cache`]) — fully
//!   *rendered* `query`/`report` bodies keyed by `(store, normalized
//!   params)` and validated against the store's generation, served
//!   zero-copy as `Arc`-shared response bodies; the same key derives
//!   strong `ETag`s, so `If-None-Match` → `304 Not Modified` conditional
//!   answers are exactly as fresh as the cache.
//! - **Admission control** ([`server`]) — a bounded connection queue
//!   drained by a fixed worker pool; connections beyond capacity are
//!   refused at the door with a 503 whose `Retry-After` is derived
//!   deterministically from queue depth and drain width, so overload
//!   degrades to fast refusals, never hangs.
//! - **Resilience** ([`deadline`], [`breaker`], [`server`]) — every
//!   request carries a deadline budget that becomes a cooperative
//!   [`CancelToken`](pinpoint_store::CancelToken) inside the chunk
//!   fold (doomed scans answer a deterministic `503 Retry-After`);
//!   handler panics are contained to stable `500`s by an unwind guard
//!   and dead workers are respawned by a watchdog; each store has a
//!   deterministic count-based circuit breaker; and `POST /shutdown`
//!   runs a graceful drain under a bounded drain deadline, observable
//!   through `GET /healthz`.
//!
//! Endpoints: `GET /stores`, `GET /stores/{name}/info`,
//! `POST /stores/{name}/query`, `POST /stores/{name}/report`,
//! `GET /metrics`, `GET /healthz`, `GET /debug/spans`, token-gated
//! `POST /shutdown`, and (only when configured) token-gated
//! `POST /debug/chaos` for fault injection.
//!
//! The load-bearing property is **byte-identity with the offline CLI**:
//! query and report responses are rendered by the same
//! [`pinpoint_analysis::query_json`] / [`pinpoint_analysis::report_json`]
//! builders the CLI's `--json` flags use, fed by the same deterministic
//! in-file-order chunk folds — so a response is the same bytes whether it
//! came from the daemon (any worker count, any cache state, fresh or
//! reused connection, result-cache hit or miss) or from
//! `pinpoint-trace-tool` run offline on the same store.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breaker;
pub mod cache;
pub mod catalog;
pub mod deadline;
pub mod http;
pub mod metrics;
pub mod result_cache;
pub mod server;

pub use breaker::{BreakerConfig, BreakerSet, BreakerState};
pub use cache::{CacheStats, ChunkCache};
pub use catalog::{Catalog, CatalogError, Resolved, StoreEntry};
pub use deadline::Deadline;
pub use result_cache::{ResultCache, ResultCacheStats};
pub use server::{start, ServeConfig, ServerHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::path::PathBuf;

    fn tmp_catalog(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pinpoint-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_trace() -> pinpoint_trace::Trace {
        use pinpoint_trace::{BlockId, EventKind, MemoryKind, Trace};
        let mut t = Trace::new();
        let op = t.intern_label("conv2d");
        for i in 0..300u64 {
            t.record(
                i * 11,
                match i % 4 {
                    0 => EventKind::Malloc,
                    3 => EventKind::Free,
                    _ => EventKind::Write,
                },
                BlockId(i % 23),
                ((i % 23 + 1) * 512) as usize,
                (i * 64) as usize,
                if i % 2 == 0 {
                    MemoryKind::Activation
                } else {
                    MemoryKind::Weight
                },
                (i % 7 == 0).then_some(op),
            );
        }
        t
    }

    /// One one-shot round trip: send `request` (which must ask for
    /// `Connection: close`), read to EOF, split into (status, headers,
    /// body).
    fn roundtrip(addr: std::net::SocketAddr, request: &str) -> (u16, String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").expect("full response");
        let status: u16 = head
            .split_ascii_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        (status, head.to_string(), body.to_string())
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String, String) {
        roundtrip(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
        )
    }

    fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String, String) {
        roundtrip(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    /// Reads one `Content-Length`-framed response off a kept-alive
    /// stream without waiting for EOF.
    fn read_one_response(s: &mut TcpStream) -> (u16, String, String) {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p;
            }
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "EOF before response head");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length present")
            .parse()
            .unwrap();
        while buf.len() < head_end + 4 + len {
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "EOF before response body");
            buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8(buf[head_end + 4..head_end + 4 + len].to_vec()).unwrap();
        let status: u16 = head
            .split_ascii_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        (status, head, body)
    }

    #[test]
    fn end_to_end_session_matches_offline_answers() {
        let dir = tmp_catalog("e2e");
        let trace = sample_trace();
        pinpoint_store::write_store_file(&trace, dir.join("mlp.ptrc")).unwrap();
        let handle = start(ServeConfig {
            catalog_dir: dir.clone(),
            workers: 2,
            shutdown_token: Some("tok".to_string()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = handle.addr();

        let (status, _, body) = get(addr, "/stores");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"stores\":[\"mlp\"]}");

        let (status, _, body) = get(addr, "/stores/mlp/info");
        assert_eq!(status, 200);
        assert!(body.contains("\"events\":300"), "{body}");

        // query must be byte-identical to the offline renderer
        let (status, head, body) = post(addr, "/stores/mlp/query", "{\"kind\":\"free\",\"max\":5}");
        assert_eq!(status, 200);
        assert!(head.contains("X-Pinpoint-Chunks-Skipped: 0"), "{head}");
        assert!(head.contains("ETag: \"g"), "{head}");
        let mut reader = pinpoint_store::StoreReader::open(dir.join("mlp.ptrc")).unwrap();
        let pred = pinpoint_store::Predicate::any().with_kind(pinpoint_trace::EventKind::Free);
        let want = pinpoint_analysis::query_json(&reader.query(&pred, 1).unwrap(), 5);
        assert_eq!(body, want);

        // report: default criteria, cold then warm (result-cache hit),
        // identical bytes
        let (status, _, cold) = post(addr, "/stores/mlp/report", "");
        assert_eq!(status, 200);
        let (status, _, warm) = post(addr, "/stores/mlp/report", "{}");
        assert_eq!(status, 200);
        assert_eq!(cold, warm);
        let want = pinpoint_analysis::report_json(
            &pinpoint_analysis::TraceReport::from_store(
                &mut reader,
                pinpoint_analysis::OutlierCriteria {
                    min_ati_ns: (800.0f64 * 1e6) as u64,
                    min_size_bytes: (600.0f64 * 1e6) as usize,
                },
                1,
            )
            .unwrap(),
            30,
        );
        assert_eq!(cold, want);

        let (status, _, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("\"cache_hits\":"), "{body}");
        assert!(body.contains("\"result_hits\":1"), "{body}");

        let (status, _, _) = get(addr, "/stores/ghost/info");
        assert_eq!(status, 404);
        let (status, _, _) = post(addr, "/shutdown", "");
        assert_eq!(status, 403, "shutdown without token must be refused");

        let (status, _, _) = roundtrip(
            addr,
            "POST /shutdown HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\
             X-Pinpoint-Token: tok\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 204);
        handle.wait();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let dir = tmp_catalog("keepalive");
        pinpoint_store::write_store_file(&sample_trace(), dir.join("mlp.ptrc")).unwrap();
        let handle = start(ServeConfig {
            catalog_dir: dir.clone(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = handle.addr();

        // one-shot reference bytes
        let (_, _, want) = post(addr, "/stores/mlp/query", "{\"kind\":\"free\"}");

        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let body = "{\"kind\":\"free\"}";
        let req = format!(
            "POST /stores/mlp/query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        for i in 0..5 {
            s.write_all(req.as_bytes()).unwrap();
            let (status, head, got) = read_one_response(&mut s);
            assert_eq!(status, 200, "request {i}");
            assert!(head.contains("Connection: keep-alive"), "{head}");
            assert_eq!(got, want, "kept-alive bytes must match one-shot bytes");
        }
        drop(s);

        let (_, _, metrics) = get(addr, "/metrics");
        assert!(metrics.contains("\"keepalive_requests\":4"), "{metrics}");
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_alive_budget_closes_the_connection() {
        let dir = tmp_catalog("budget");
        let handle = start(ServeConfig {
            catalog_dir: dir.clone(),
            workers: 1,
            keepalive_requests: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = handle.addr();
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let req = "GET /stores HTTP/1.1\r\nHost: x\r\n\r\n";
        s.write_all(req.as_bytes()).unwrap();
        let (_, head, _) = read_one_response(&mut s);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        s.write_all(req.as_bytes()).unwrap();
        let (_, head, _) = read_one_response(&mut s);
        assert!(
            head.contains("Connection: close"),
            "budget exhausted, must announce close: {head}"
        );
        // and the server actually closes
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_requests_get_400_not_a_hang() {
        let dir = tmp_catalog("bad");
        let handle = start(ServeConfig {
            catalog_dir: dir.clone(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = handle.addr();
        let (status, _, _) = roundtrip(addr, "NONSENSE\r\n\r\n");
        assert_eq!(status, 400);
        let (status, _, _) = roundtrip(
            addr,
            "POST /stores/x/query HTTP/1.1\r\nContent-Length: zzz\r\n\r\n",
        );
        assert_eq!(status, 400);
        let (status, _, body) = post(addr, "/stores/ghost/query", "not json");
        // catalog miss resolves before the body parse
        assert_eq!(status, 404, "{body}");
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
