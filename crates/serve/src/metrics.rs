//! Daemon-wide counters, rendered as JSON by `GET /metrics`.

use crate::cache::CacheStats;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative request/queue counters. All relaxed atomics: metrics order
/// across threads is not load-bearing, the values are monotone tallies.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted (including ones later shed).
    pub accepted: AtomicU64,
    /// Connections answered 503 at the door because the queue was full.
    pub shed: AtomicU64,
    /// Requests fully handled, by status class.
    pub ok: AtomicU64,
    /// 4xx responses.
    pub client_error: AtomicU64,
    /// 5xx responses (other than shed 503s).
    pub server_error: AtomicU64,
    /// Query requests served.
    pub queries: AtomicU64,
    /// Report requests served.
    pub reports: AtomicU64,
}

impl Metrics {
    /// Renders every counter plus the cache's, as one flat JSON object.
    pub fn to_json(&self, cache: &CacheStats, queue_depth: usize) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"accepted\":{},\"shed\":{},\"ok\":{},\"client_error\":{},\
             \"server_error\":{},\"queries\":{},\"reports\":{},\"queue_depth\":{queue_depth},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
             \"cache_bytes\":{},\"cache_entries\":{}}}",
            self.accepted.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.ok.load(Ordering::Relaxed),
            self.client_error.load(Ordering::Relaxed),
            self.server_error.load(Ordering::Relaxed),
            self.queries.load(Ordering::Relaxed),
            self.reports.load(Ordering::Relaxed),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.bytes,
            cache.entries,
        );
        s
    }

    /// Tallies a finished response by status code.
    pub fn count_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.ok,
            400..=499 => &self.client_error,
            _ => &self.server_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_json() {
        let m = Metrics::default();
        m.accepted.store(5, Ordering::Relaxed);
        m.count_status(200);
        m.count_status(404);
        m.count_status(503);
        let s = m.to_json(&CacheStats::default(), 2);
        assert!(s.contains("\"accepted\":5"), "{s}");
        assert!(s.contains("\"ok\":1"), "{s}");
        assert!(s.contains("\"client_error\":1"), "{s}");
        assert!(s.contains("\"server_error\":1"), "{s}");
        assert!(s.contains("\"queue_depth\":2"), "{s}");
        assert!(pinpoint_trace::json::parse(&s).is_ok(), "{s}");
    }
}
