//! Daemon-wide metrics, rendered as JSON by `GET /metrics`.
//!
//! Backed by the shared [`pinpoint_obs::Registry`]: every counter is a
//! named registry counter (relaxed atomics — metrics order across
//! threads is not load-bearing, the values are monotone tallies), and
//! per-endpoint request latencies feed log2-bucketed
//! [`pinpoint_obs::Histogram`]s with exact-rank percentile extraction.
//!
//! The rendered JSON keeps every pre-existing flat counter key
//! byte-compatible with earlier daemons and **appends** a `latency`
//! object — per endpoint (`query`, `report`, `other`):
//! `{"count","p50_ns","p90_ns","p99_ns","mean_ns"}`. Consumers that
//! scanned flat keys keep working unchanged.

use crate::cache::CacheStats;
use crate::result_cache::ResultCacheStats;
use pinpoint_obs::{Counter, Histogram, Registry};
use std::fmt::Write as _;
use std::sync::Arc;

/// Cumulative request/queue counters plus per-endpoint latency
/// histograms, all living in one [`Registry`].
#[derive(Debug)]
pub struct Metrics {
    registry: Registry,
    /// Connections accepted (including ones later shed).
    pub accepted: Counter,
    /// Connections answered 503 at the door because the queue was full.
    pub shed: Counter,
    /// Requests fully handled, by status class (2xx/3xx).
    pub ok: Counter,
    /// 4xx responses.
    pub client_error: Counter,
    /// 5xx responses (other than shed 503s).
    pub server_error: Counter,
    /// Query requests served.
    pub queries: Counter,
    /// Report requests served.
    pub reports: Counter,
    /// Requests served on a reused (kept-alive) connection — i.e. the
    /// second and later requests of each connection.
    pub keepalive_requests: Counter,
    /// Conditional requests answered `304 Not Modified`.
    pub not_modified: Counter,
    /// Stores reopened because their on-disk file changed (or evicted
    /// because it vanished) — each one invalidated both cache tiers.
    pub store_reopens: Counter,
    /// Requests answered `503` because their deadline budget ran out
    /// (scan cancelled mid-store or checkpoint missed).
    pub deadline_exceeded: Counter,
    /// Request handlers that panicked and were contained to a stable
    /// `500` by the worker's unwind guard.
    pub panics_caught: Counter,
    /// Worker threads that died anyway and were respawned by the
    /// watchdog.
    pub workers_respawned: Counter,
    /// Connections cut because a socket read/write hit the I/O timeout
    /// (slow-loris headers, clients that never read).
    pub conn_timeouts: Counter,
    /// Circuit-breaker trips (closed/half-open → open), all stores.
    pub breaker_trips: Counter,
    /// Requests rejected `503` by an open breaker.
    pub breaker_rejected: Counter,
    /// Queued connections dropped unanswered because the drain deadline
    /// expired before a worker got to them.
    pub drain_dropped: Counter,
    /// Full-lifecycle latency of `POST .../query` requests.
    pub lat_query: Arc<Histogram>,
    /// Full-lifecycle latency of `POST .../report` requests.
    pub lat_report: Arc<Histogram>,
    /// Full-lifecycle latency of every other endpoint.
    pub lat_other: Arc<Histogram>,
    /// Full-lifecycle latency of requests that died at the deadline —
    /// how late the doomed ones were by the time they were cut.
    pub lat_deadline: Arc<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates the daemon's metric set in its canonical registration
    /// order (the order `/metrics` renders).
    pub fn new() -> Self {
        let registry = Registry::new();
        Metrics {
            accepted: registry.counter("accepted"),
            shed: registry.counter("shed"),
            ok: registry.counter("ok"),
            client_error: registry.counter("client_error"),
            server_error: registry.counter("server_error"),
            queries: registry.counter("queries"),
            reports: registry.counter("reports"),
            keepalive_requests: registry.counter("keepalive_requests"),
            not_modified: registry.counter("not_modified"),
            store_reopens: registry.counter("store_reopens"),
            deadline_exceeded: registry.counter("deadline_exceeded"),
            panics_caught: registry.counter("panics_caught"),
            workers_respawned: registry.counter("workers_respawned"),
            conn_timeouts: registry.counter("conn_timeouts"),
            breaker_trips: registry.counter("breaker_trips"),
            breaker_rejected: registry.counter("breaker_rejected"),
            drain_dropped: registry.counter("drain_dropped"),
            lat_query: registry.histogram("query"),
            lat_report: registry.histogram("report"),
            lat_other: registry.histogram("other"),
            lat_deadline: registry.histogram("deadline"),
            registry,
        }
    }

    /// The backing registry (snapshots for tests and tooling).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one finished request's latency against its endpoint
    /// histogram.
    pub fn record_latency(&self, endpoint: Endpoint, ns: u64) {
        match endpoint {
            Endpoint::Query => self.lat_query.record(ns),
            Endpoint::Report => self.lat_report.record(ns),
            Endpoint::Other => self.lat_other.record(ns),
        }
    }

    /// Renders every counter plus both caches' stats as one flat JSON
    /// object (pre-existing keys byte-compatible), then the appended
    /// per-endpoint `latency` histograms. `breaker_open` /
    /// `breaker_half_open` are instantaneous gauges from the breaker
    /// set; `draining` reflects the daemon's lifecycle phase.
    pub fn to_json(
        &self,
        cache: &CacheStats,
        results: &ResultCacheStats,
        queue_depth: usize,
        breaker_open: u64,
        breaker_half_open: u64,
        draining: bool,
    ) -> String {
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"accepted\":{},\"shed\":{},\"ok\":{},\"client_error\":{},\
             \"server_error\":{},\"queries\":{},\"reports\":{},\
             \"keepalive_requests\":{},\"not_modified\":{},\"store_reopens\":{},\
             \"queue_depth\":{queue_depth},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
             \"cache_bytes\":{},\"cache_entries\":{},\
             \"result_hits\":{},\"result_misses\":{},\"result_evictions\":{},\
             \"result_invalidations\":{},\"result_bytes\":{},\"result_entries\":{}",
            self.accepted.get(),
            self.shed.get(),
            self.ok.get(),
            self.client_error.get(),
            self.server_error.get(),
            self.queries.get(),
            self.reports.get(),
            self.keepalive_requests.get(),
            self.not_modified.get(),
            self.store_reopens.get(),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.bytes,
            cache.entries,
            results.hits,
            results.misses,
            results.evictions,
            results.invalidations,
            results.bytes,
            results.entries,
        );
        // resilience counters and gauges: appended after every
        // pre-existing flat key so naive first-occurrence scanners keep
        // reading the same bytes, still ahead of the latency object
        let _ = write!(
            s,
            ",\"deadline_exceeded\":{},\"panics_caught\":{},\"workers_respawned\":{},\
             \"conn_timeouts\":{},\"breaker_trips\":{},\"breaker_rejected\":{},\
             \"breaker_open\":{breaker_open},\"breaker_half_open\":{breaker_half_open},\
             \"drain_dropped\":{},\"draining\":{}",
            self.deadline_exceeded.get(),
            self.panics_caught.get(),
            self.workers_respawned.get(),
            self.conn_timeouts.get(),
            self.breaker_trips.get(),
            self.breaker_rejected.get(),
            self.drain_dropped.get(),
            u64::from(draining),
        );
        s.push_str(",\"latency\":{");
        for (i, (name, h)) in self.registry.snapshot().hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{name}\":{{\"count\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"mean_ns\":{}}}",
                h.count(),
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(99.0),
                h.mean(),
            );
        }
        s.push_str("}}");
        s
    }

    /// Tallies a finished response by status code (3xx — i.e. `304 Not
    /// Modified` — is a success, not an error).
    pub fn count_status(&self, status: u16) {
        let counter = match status {
            200..=399 => &self.ok,
            400..=499 => &self.client_error,
            _ => &self.server_error,
        };
        counter.inc();
    }
}

/// Endpoint class for per-endpoint latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /stores/{name}/query`.
    Query,
    /// `POST /stores/{name}/report`.
    Report,
    /// Everything else.
    Other,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_json() {
        let m = Metrics::default();
        m.accepted.add(5);
        m.count_status(200);
        m.count_status(304);
        m.count_status(404);
        m.count_status(503);
        let s = m.to_json(
            &CacheStats::default(),
            &ResultCacheStats::default(),
            2,
            1,
            0,
            false,
        );
        assert!(s.contains("\"accepted\":5"), "{s}");
        assert!(s.contains("\"ok\":2"), "{s}");
        assert!(s.contains("\"client_error\":1"), "{s}");
        assert!(s.contains("\"server_error\":1"), "{s}");
        assert!(s.contains("\"queue_depth\":2"), "{s}");
        assert!(s.contains("\"result_hits\":0"), "{s}");
        assert!(s.contains("\"keepalive_requests\":0"), "{s}");
        assert!(pinpoint_trace::json::parse(&s).is_ok(), "{s}");
    }

    #[test]
    fn latency_section_reports_exact_rank_percentiles() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record_latency(Endpoint::Query, 1_000);
        }
        m.record_latency(Endpoint::Query, 1_000_000);
        m.record_latency(Endpoint::Report, 2_000);
        let s = m.to_json(
            &CacheStats::default(),
            &ResultCacheStats::default(),
            0,
            0,
            0,
            false,
        );
        let parsed = pinpoint_trace::json::parse(&s).unwrap();
        let lat = parsed.get("latency").expect("latency object");
        let q = lat.get("query").expect("query histogram");
        assert_eq!(q.get("count").and_then(|j| j.as_u64()), Some(100));
        // p50 of 99×1us + 1×1ms sits in the 1us bucket [512,1023]
        assert_eq!(q.get("p50_ns").and_then(|j| j.as_u64()), Some(1023));
        // p99 rank 99 is still the 1us bucket; p100 would hit the 1ms one
        assert_eq!(q.get("p99_ns").and_then(|j| j.as_u64()), Some(1023));
        let r = lat.get("report").expect("report histogram");
        assert_eq!(r.get("count").and_then(|j| j.as_u64()), Some(1));
        assert!(lat.get("other").is_some());
    }

    #[test]
    fn latency_keys_come_after_all_flat_counters() {
        // the flat counter section must stay a byte-compatible prefix:
        // naive `"key":`-scanning consumers read the first occurrence
        let m = Metrics::new();
        m.record_latency(Endpoint::Other, 5);
        let s = m.to_json(
            &CacheStats::default(),
            &ResultCacheStats::default(),
            0,
            2,
            1,
            true,
        );
        let lat_pos = s.find("\"latency\":").unwrap();
        for key in [
            "accepted",
            "shed",
            "ok",
            "client_error",
            "server_error",
            "queries",
            "reports",
            "keepalive_requests",
            "not_modified",
            "store_reopens",
            "queue_depth",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "cache_bytes",
            "cache_entries",
            "result_hits",
            "result_misses",
            "result_evictions",
            "result_invalidations",
            "result_bytes",
            "result_entries",
            "deadline_exceeded",
            "panics_caught",
            "workers_respawned",
            "conn_timeouts",
            "breaker_trips",
            "breaker_rejected",
            "breaker_open",
            "breaker_half_open",
            "drain_dropped",
            "draining",
        ] {
            let pos = s.find(&format!("\"{key}\":")).unwrap();
            assert!(pos < lat_pos, "flat key {key} must precede latency");
        }
    }
}
