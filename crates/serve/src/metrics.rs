//! Daemon-wide counters, rendered as JSON by `GET /metrics`.

use crate::cache::CacheStats;
use crate::result_cache::ResultCacheStats;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative request/queue counters. All relaxed atomics: metrics order
/// across threads is not load-bearing, the values are monotone tallies.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted (including ones later shed).
    pub accepted: AtomicU64,
    /// Connections answered 503 at the door because the queue was full.
    pub shed: AtomicU64,
    /// Requests fully handled, by status class (2xx/3xx).
    pub ok: AtomicU64,
    /// 4xx responses.
    pub client_error: AtomicU64,
    /// 5xx responses (other than shed 503s).
    pub server_error: AtomicU64,
    /// Query requests served.
    pub queries: AtomicU64,
    /// Report requests served.
    pub reports: AtomicU64,
    /// Requests served on a reused (kept-alive) connection — i.e. the
    /// second and later requests of each connection.
    pub keepalive_requests: AtomicU64,
    /// Conditional requests answered `304 Not Modified`.
    pub not_modified: AtomicU64,
    /// Stores reopened because their on-disk file changed (or evicted
    /// because it vanished) — each one invalidated both cache tiers.
    pub store_reopens: AtomicU64,
}

impl Metrics {
    /// Renders every counter plus both caches', as one flat JSON object.
    pub fn to_json(
        &self,
        cache: &CacheStats,
        results: &ResultCacheStats,
        queue_depth: usize,
    ) -> String {
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"accepted\":{},\"shed\":{},\"ok\":{},\"client_error\":{},\
             \"server_error\":{},\"queries\":{},\"reports\":{},\
             \"keepalive_requests\":{},\"not_modified\":{},\"store_reopens\":{},\
             \"queue_depth\":{queue_depth},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
             \"cache_bytes\":{},\"cache_entries\":{},\
             \"result_hits\":{},\"result_misses\":{},\"result_evictions\":{},\
             \"result_invalidations\":{},\"result_bytes\":{},\"result_entries\":{}}}",
            self.accepted.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.ok.load(Ordering::Relaxed),
            self.client_error.load(Ordering::Relaxed),
            self.server_error.load(Ordering::Relaxed),
            self.queries.load(Ordering::Relaxed),
            self.reports.load(Ordering::Relaxed),
            self.keepalive_requests.load(Ordering::Relaxed),
            self.not_modified.load(Ordering::Relaxed),
            self.store_reopens.load(Ordering::Relaxed),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.bytes,
            cache.entries,
            results.hits,
            results.misses,
            results.evictions,
            results.invalidations,
            results.bytes,
            results.entries,
        );
        s
    }

    /// Tallies a finished response by status code (3xx — i.e. `304 Not
    /// Modified` — is a success, not an error).
    pub fn count_status(&self, status: u16) {
        let counter = match status {
            200..=399 => &self.ok,
            400..=499 => &self.client_error,
            _ => &self.server_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_json() {
        let m = Metrics::default();
        m.accepted.store(5, Ordering::Relaxed);
        m.count_status(200);
        m.count_status(304);
        m.count_status(404);
        m.count_status(503);
        let s = m.to_json(&CacheStats::default(), &ResultCacheStats::default(), 2);
        assert!(s.contains("\"accepted\":5"), "{s}");
        assert!(s.contains("\"ok\":2"), "{s}");
        assert!(s.contains("\"client_error\":1"), "{s}");
        assert!(s.contains("\"server_error\":1"), "{s}");
        assert!(s.contains("\"queue_depth\":2"), "{s}");
        assert!(s.contains("\"result_hits\":0"), "{s}");
        assert!(s.contains("\"keepalive_requests\":0"), "{s}");
        assert!(pinpoint_trace::json::parse(&s).is_ok(), "{s}");
    }
}
