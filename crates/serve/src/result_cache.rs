//! The second cache tier: fully *rendered* response bodies.
//!
//! The chunk cache ([`crate::cache`]) makes the bottom of a repeated
//! query cheap — no re-decode — but every request still pays a full fold
//! re-execution over the cached chunks plus a fresh JSON render. Planner
//! workloads (OLLA-style lifetime/location searches, solver sweeps) issue
//! hundreds of near-identical `report`/`query` requests against the same
//! store, so the daemon memoizes the rendered bytes themselves.
//!
//! An entry is keyed by `(store name, normalized request params)` and
//! stamped with the store's **generation** — the file-length + mtime
//! fingerprint taken by the catalog on every access. A lookup hits only
//! when the generation matches; a mismatch (the `.ptrc` was replaced on
//! disk, e.g. by an in-place `convert` upgrade) removes the stale entry
//! and counts an invalidation, so a changed store can never serve old
//! bytes. The same `(generation, params)` pair derives the response's
//! strong `ETag`, which makes `If-None-Match` → `304 Not Modified`
//! conditional answers free *and* exactly as fresh as the cache itself.
//!
//! Bodies are stored as `Arc<[u8]>` and handed to responses by reference
//! ([`crate::http::Body::Shared`]): a repeated query costs one hash
//! lookup and a vectored write — no fold, no render, no copy. Eviction
//! is byte-budgeted LRU under a single mutex (entries are whole
//! responses; the critical section is a map probe, never a render).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Result-cache counters, cumulative since startup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups answered from a cached rendered body.
    pub hits: u64,
    /// Lookups that fell through to fold + render.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Entries dropped because the store's generation changed.
    pub invalidations: u64,
    /// Rendered bytes currently resident.
    pub bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// One cached rendered response, cheap to clone (`Arc` + small strings).
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The rendered JSON body, shared with any in-flight response.
    pub body: Arc<[u8]>,
    /// Strong `ETag` derived from `(generation, params)`.
    pub etag: String,
    /// `X-Pinpoint-Chunks-Skipped` salvage accounting for the response.
    pub chunks_skipped: u64,
    /// `X-Pinpoint-Events-Lost` salvage accounting for the response.
    pub events_lost: u64,
}

/// The strong `ETag` for a response: generation fingerprint + FNV-1a of
/// the normalized params, both in fixed-width hex. Two requests get the
/// same tag iff they normalize to the same params against the same
/// on-disk bytes — the exact condition under which the daemon would
/// serve byte-identical bodies.
pub fn etag(generation: u64, params: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in params.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("\"g{generation:016x}-{h:016x}\"")
}

/// Whether an `If-None-Match` header value matches `etag` (`*` or any
/// listed tag; we only ever emit strong tags, so comparison is literal).
pub fn if_none_match(header: &str, etag: &str) -> bool {
    header.split(',').any(|t| {
        let t = t.trim();
        t == "*" || t == etag
    })
}

#[derive(Debug)]
struct Entry {
    result: CachedResult,
    generation: u64,
    bytes: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<(String, String), Entry>,
    bytes: u64,
    tick: u64,
}

/// A byte-budgeted LRU cache of rendered response bodies, keyed by
/// `(store name, normalized params)` and validated per-lookup against the
/// store's current generation. A budget of 0 disables caching (every
/// lookup is a miss, inserts are dropped).
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl ResultCache {
    /// Creates a cache with the given byte budget (0 disables it).
    pub fn new(budget_bytes: u64) -> Self {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            budget: budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Looks up `(store, params)`, honoring the current `generation`: a
    /// stale entry is removed (counted as an invalidation) and reported
    /// as a miss, so a replaced store can never serve old bytes.
    pub fn get(&self, store: &str, params: &str, generation: u64) -> Option<CachedResult> {
        let mut inner = self.inner.lock().expect("result cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        // key probe without allocating: HashMap<(String,String)> can't be
        // probed by (&str,&str), so this does one small key build on the
        // miss path only when inserting; probes here pay the tuple alloc.
        let key = (store.to_string(), params.to_string());
        match inner.map.get_mut(&key) {
            Some(e) if e.generation == generation => {
                e.last_used = tick;
                let r = e.result.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            Some(_) => {
                let e = inner.map.remove(&key).expect("probed entry present");
                inner.bytes -= e.bytes;
                drop(inner);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a rendered result for `(store, params)` at `generation`,
    /// evicting least-recently-used entries to stay under the byte
    /// budget (the just-inserted entry is never evicted; a single entry
    /// may exceed the budget, mirroring the chunk cache). No-op when the
    /// cache is disabled.
    pub fn insert(&self, store: &str, params: &str, generation: u64, result: CachedResult) {
        if self.budget == 0 {
            return;
        }
        let key = (store.to_string(), params.to_string());
        let bytes =
            (result.body.len() + result.etag.len() + store.len() + params.len() + 64) as u64;
        let mut inner = self.inner.lock().expect("result cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            key.clone(),
            Entry {
                result,
                generation,
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        let mut evicted = 0;
        while inner.bytes > self.budget && inner.map.len() > 1 {
            let oldest = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    let e = inner.map.remove(&k).expect("oldest key present");
                    inner.bytes -= e.bytes;
                    evicted += 1;
                }
                None => break,
            }
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drops every cached result of the given store (the catalog saw its
    /// file replaced or deleted); each dropped entry counts as an
    /// invalidation.
    pub fn invalidate_store(&self, store: &str) {
        let mut inner = self.inner.lock().expect("result cache poisoned");
        let keys: Vec<_> = inner
            .map
            .keys()
            .filter(|(s, _)| s == store)
            .cloned()
            .collect();
        let n = keys.len() as u64;
        for k in keys {
            let e = inner.map.remove(&k).expect("key present");
            inner.bytes -= e.bytes;
        }
        drop(inner);
        if n > 0 {
            self.invalidations.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// A consistent-enough snapshot of the counters.
    pub fn stats(&self) -> ResultCacheStats {
        let inner = self.inner.lock().expect("result cache poisoned");
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            bytes: inner.bytes,
            entries: inner.map.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(body: &str, generation: u64, params: &str) -> CachedResult {
        CachedResult {
            body: Arc::from(body.as_bytes()),
            etag: etag(generation, params),
            chunks_skipped: 0,
            events_lost: 0,
        }
    }

    #[test]
    fn hit_after_miss_shares_the_body() {
        let c = ResultCache::new(1 << 20);
        assert!(c.get("s", "q1", 7).is_none());
        let r = result("{\"x\":1}", 7, "q1");
        c.insert("s", "q1", 7, r.clone());
        let hit = c.get("s", "q1", 7).expect("hit");
        assert!(Arc::ptr_eq(&hit.body, &r.body), "body must be shared");
        assert_eq!(hit.etag, r.etag);
        let st = c.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
    }

    #[test]
    fn generation_change_invalidates_on_access() {
        let c = ResultCache::new(1 << 20);
        c.insert("s", "q1", 7, result("old", 7, "q1"));
        assert!(c.get("s", "q1", 8).is_none(), "stale generation must miss");
        let st = c.stats();
        assert_eq!(st.invalidations, 1);
        assert_eq!(st.entries, 0);
        assert_eq!(st.bytes, 0);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        // each entry costs ~64 + key/body/etag bytes; budget fits ~2
        let unit = {
            let c = ResultCache::new(1 << 20);
            c.insert("s", "a", 1, result("0123456789", 1, "a"));
            c.stats().bytes
        };
        let c = ResultCache::new(unit * 2 + unit / 2);
        c.insert("s", "a", 1, result("0123456789", 1, "a"));
        c.insert("s", "b", 1, result("0123456789", 1, "b"));
        assert!(c.get("s", "a", 1).is_some(), "a still hot");
        c.insert("s", "c", 1, result("0123456789", 1, "c"));
        let st = c.stats();
        assert!(st.evictions >= 1, "{st:?}");
        assert!(st.bytes <= unit * 2 + unit / 2, "{st:?}");
        assert!(c.get("s", "b", 1).is_none(), "b was least recently used");
        assert!(c.get("s", "a", 1).is_some());
        assert!(c.get("s", "c", 1).is_some());
    }

    #[test]
    fn invalidate_store_clears_only_that_store() {
        let c = ResultCache::new(1 << 20);
        c.insert("a", "q", 1, result("x", 1, "q"));
        c.insert("b", "q", 1, result("y", 1, "q"));
        c.invalidate_store("a");
        assert!(c.get("a", "q", 1).is_none());
        assert!(c.get("b", "q", 1).is_some());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let c = ResultCache::new(0);
        c.insert("s", "q", 1, result("x", 1, "q"));
        assert!(c.get("s", "q", 1).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn etag_is_strong_and_distinct_per_generation_and_params() {
        let a = etag(1, "q1");
        assert!(a.starts_with('"') && a.ends_with('"'), "{a}");
        assert_ne!(a, etag(2, "q1"));
        assert_ne!(a, etag(1, "q2"));
        assert_eq!(a, etag(1, "q1"));
        assert!(if_none_match(&a.clone(), &a));
        assert!(if_none_match("*", &a));
        assert!(if_none_match(&format!("\"zz\", {a}"), &a));
        assert!(!if_none_match("\"zz\"", &a));
    }
}
