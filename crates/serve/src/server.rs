//! The daemon core: accept loop, bounded admission queue, worker pool,
//! keep-alive connection handling, request routing, and the resilience
//! layer (deadlines, panic isolation, circuit breakers, graceful drain).
//!
//! Request lifecycle: the accept thread takes connections off the
//! listener and pushes them onto a bounded queue. When the queue is at
//! capacity the connection is answered 503 *in the accept thread* and
//! closed — load shedding costs one small write, never a worker, so the
//! daemon degrades to fast refusals instead of growing an unbounded
//! backlog or hanging clients. The `Retry-After` value is derived from
//! the queue's depth and the pool's drain width (`ceil(depth / workers)`,
//! clamped to 1..=8 seconds): a barely-full queue says "come right back",
//! a deep one backs clients off proportionally — and deterministically,
//! so tests can assert the exact header.
//!
//! Queued connections are drained by a fixed pool of worker threads.
//! Each worker owns one [`WorkerCtx`] — reusable connection buffers and a
//! reusable render scratch — and serves up to
//! [`ServeConfig::keepalive_requests`] requests per connection before
//! closing it, honoring the client's `Connection` preference per request.
//! A kept-alive request costs no allocation on the transport path: the
//! read accumulator, response-head buffer, and JSON render scratch all
//! persist across requests.
//!
//! **Resilience.** Four failure domains are isolated from each other:
//!
//! - *Slow work*: every admitted request carries a [`Deadline`] whose
//!   budget starts at accept (queue wait spends budget). The deadline is
//!   checked before routing, after parsing, and — as a
//!   [`CancelToken`](pinpoint_store::CancelToken) — before every chunk
//!   decode inside the fold, so a doomed scan stops mid-store and
//!   answers a deterministic `503` + `Retry-After: 1`.
//! - *Buggy handlers*: the whole router runs under `catch_unwind`; a
//!   panic becomes a stable `500`, bumps `panics_caught`, and the worker
//!   keeps serving. A worker that dies anyway (panic outside the guard)
//!   is respawned by the watchdog thread.
//! - *Rotten stores*: each store has a deterministic count-based
//!   circuit breaker ([`crate::breaker`]); consecutive hard failures
//!   trip it and requests are rejected at the door with `503` +
//!   `Retry-After` until a half-open probe succeeds.
//! - *Shutdown*: `POST /shutdown` starts a graceful drain — the
//!   listener keeps accepting (so `/healthz` stays observable and
//!   answers `503 draining`), pre-drain connections finish under a
//!   bounded drain deadline, and then the process exits cleanly; the
//!   deadline expiring aborts the drain and drops what is left
//!   (counted in `drain_dropped`).
//!
//! Every store-reading endpoint folds per-chunk results in file order, so
//! a response is byte-identical to the offline CLI on the same store —
//! at any worker count, any per-request fan-out, any cache state, and
//! whether the connection is fresh or reused. Rendered `query`/`report`
//! bodies are additionally memoized in a generation-aware
//! [`ResultCache`], which also backs `ETag` / `If-None-Match` → `304`
//! conditional answers (see [`crate::result_cache`]).

use crate::breaker::{Admission, BreakerConfig, BreakerEvent, BreakerSet};
use crate::cache::ChunkCache;
use crate::catalog::{Catalog, CatalogError, StoreEntry};
use crate::deadline::Deadline;
use crate::http::{error_body, read_request, ConnBuffers, ReadOutcome, Request, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::result_cache::{etag, if_none_match, CachedResult, ResultCache};
use pinpoint_analysis::{OutlierCriteria, RenderScratch, TraceReport};
use pinpoint_obs::{tracer, SpanGuard, NO_ARG};
use pinpoint_store::{CancelToken, Predicate, QueryResult, ReadPolicy, StoreError};
use pinpoint_trace::json::{self, Json};
use pinpoint_trace::{Category, EventKind};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Request span trees replayed by `GET /debug/spans`.
const DEBUG_SPAN_REQUESTS: usize = 16;

/// Per-thread span ring capacity while the daemon runs (each record is
/// ~56 B, so a worker's ring tops out around 3.5 MB).
const SERVE_SPAN_CAPACITY: usize = 65_536;

/// Lifecycle phases, strictly monotone (`fetch_max` only).
const PHASE_RUNNING: u8 = 0;
/// Graceful drain in progress: still accepting (restricted service),
/// pre-drain connections finishing.
const PHASE_DRAINING: u8 = 1;
/// Workers serve what is already queued, then exit.
const PHASE_STOPPING: u8 = 2;
/// Drain deadline blew: workers drop the queue unanswered and exit.
const PHASE_ABORTING: u8 = 3;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory of `.ptrc` stores served by name.
    pub catalog_dir: PathBuf,
    /// Bind address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Global decoded-chunk cache budget in bytes.
    pub cache_bytes: u64,
    /// Rendered-result cache budget in bytes (0 disables it).
    pub result_cache_bytes: u64,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed with 503.
    pub queue_cap: usize,
    /// Maximum requests served per kept-alive connection before the
    /// daemon closes it (a fairness bound: one chatty client cannot pin a
    /// worker forever). 0 behaves as 1 — every connection gets at least
    /// one request.
    pub keepalive_requests: usize,
    /// Per-request chunk-decode fan-out (results are identical at any
    /// value; >1 trades cross-request throughput for per-request latency).
    pub request_threads: usize,
    /// Socket read/write timeout in milliseconds (0 disables it): bounds
    /// how long a slow or stalled client can pin a worker.
    pub io_timeout_ms: u64,
    /// Per-request deadline budget in milliseconds (0 disables it),
    /// measured from accept for a connection's first request and from
    /// read-complete for kept-alive follow-ups.
    pub request_deadline_ms: u64,
    /// Graceful-drain window in milliseconds (0 waits forever): how long
    /// `POST /shutdown` lets in-flight work finish before aborting.
    pub drain_deadline_ms: u64,
    /// Per-store circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Token required by `POST /shutdown`; `None` disables the endpoint.
    pub shutdown_token: Option<String>,
    /// Token required by `POST /debug/chaos` (fault injection for the
    /// chaos harness); `None` hides the endpoint entirely.
    pub chaos_token: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            catalog_dir: PathBuf::from("."),
            addr: "127.0.0.1:0".to_string(),
            cache_bytes: 256 << 20,
            result_cache_bytes: 64 << 20,
            workers: pinpoint_parallel::configured_threads(),
            queue_cap: 64,
            keepalive_requests: 128,
            request_threads: 1,
            io_timeout_ms: 10_000,
            request_deadline_ms: 30_000,
            drain_deadline_ms: 5_000,
            breaker: BreakerConfig::default(),
            shutdown_token: None,
            chaos_token: None,
        }
    }
}

/// State shared by the accept loop and every worker.
#[derive(Debug)]
struct Shared {
    catalog: Catalog,
    cache: ChunkCache,
    results: ResultCache,
    metrics: Metrics,
    breakers: BreakerSet,
    /// Connections waiting for a worker: the stream, its enqueue
    /// timestamp (tracer clock), and whether it was accepted before the
    /// drain started (`pre` connections get full service; drain-time
    /// ones get one restricted request).
    queue: Mutex<VecDeque<(TcpStream, u64, bool)>>,
    ready: Condvar,
    /// Current [`PHASE_RUNNING`]..=[`PHASE_ABORTING`]; advanced with
    /// `fetch_max`, never rolled back.
    phase: AtomicU8,
    /// Tracer timestamp of the drain's start (valid once phase ≥ 1;
    /// stored *before* the phase advances).
    drain_start_ns: AtomicU64,
    /// Pre-drain connections still queued or in flight — the drain
    /// finishes (phase → stopping) when this reaches zero.
    pre_pending: AtomicU64,
    /// Monotone request ids, stamped on every `serve.request` span.
    req_seq: AtomicU64,
    config: ServeConfig,
}

impl Shared {
    fn phase(&self) -> u8 {
        self.phase.load(Ordering::SeqCst)
    }

    /// Monotone phase advance; wakes every parked worker.
    fn advance_phase(&self, to: u8) {
        self.phase.fetch_max(to, Ordering::SeqCst);
        self.ready.notify_all();
    }

    /// Absolute tracer timestamp by which the drain must finish
    /// (`u64::MAX` when unbounded).
    fn drain_cutoff_ns(&self) -> u64 {
        if self.config.drain_deadline_ms == 0 {
            return u64::MAX;
        }
        self.drain_start_ns
            .load(Ordering::SeqCst)
            .saturating_add(self.config.drain_deadline_ms.saturating_mul(1_000_000))
    }
}

/// Per-worker reusable state: connection buffers (read accumulator +
/// response-head buffer), the JSON render scratch, and the chaos
/// kill flag (set by `/debug/chaos` mode `kill`, honored after the
/// response is written). One per worker thread, reused across every
/// connection and request it serves.
#[derive(Debug)]
struct WorkerCtx {
    bufs: ConnBuffers,
    render: RenderScratch,
    /// `/debug/chaos` mode `kill`: answer first, then die so the
    /// watchdog's respawn path gets exercised.
    kill_after_response: bool,
}

impl WorkerCtx {
    fn new() -> Self {
        WorkerCtx {
            bufs: ConnBuffers::new(),
            render: RenderScratch::new(),
            kill_after_response: false,
        }
    }
}

/// A running daemon; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] or [`ServerHandle::wait`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals immediate shutdown (skipping the graceful drain: the
    /// already-queued connections are still served) and joins every
    /// thread.
    pub fn shutdown(mut self) {
        self.shared.advance_phase(PHASE_STOPPING);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until the daemon stops (via `POST /shutdown`).
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds, spawns the accept loop, worker pool, and watchdog, and
/// returns a handle.
///
/// # Errors
///
/// Propagates bind errors.
pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    // the daemon is its own observability consumer: spans back the
    // `/debug/spans` endpoint and the `X-Pinpoint-Timing` header, so
    // recording is on for the process lifetime (bounded by the ring size)
    tracer().set_capacity(SERVE_SPAN_CAPACITY);
    tracer().set_enabled(true);
    let shared = Arc::new(Shared {
        catalog: Catalog::new(&config.catalog_dir),
        cache: ChunkCache::new(config.cache_bytes, 8),
        results: ResultCache::new(config.result_cache_bytes),
        metrics: Metrics::default(),
        breakers: BreakerSet::new(config.breaker),
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        phase: AtomicU8::new(PHASE_RUNNING),
        drain_start_ns: AtomicU64::new(0),
        pre_pending: AtomicU64::new(0),
        req_seq: AtomicU64::new(0),
        config: config.clone(),
    });
    let mut workers = Vec::with_capacity(config.workers.max(1));
    for _ in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    let mut threads = Vec::with_capacity(2);
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || watchdog_loop(&shared, workers)));
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

/// Seconds a shed client should back off: how long the queue needs to
/// drain at one request per worker per second, clamped to 1..=8. A
/// pure function of observable state, so the header is deterministic.
fn retry_after_secs(queue_depth: usize, workers: usize) -> u64 {
    (queue_depth.div_ceil(workers.max(1)) as u64).clamp(1, 8)
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let io_timeout = (shared.config.io_timeout_ms > 0)
        .then(|| Duration::from_millis(shared.config.io_timeout_ms));
    while shared.phase() < PHASE_STOPPING {
        match listener.accept() {
            Ok((mut stream, _)) => {
                shared.metrics.accepted.inc();
                let _ = stream.set_read_timeout(io_timeout);
                let _ = stream.set_write_timeout(io_timeout);
                let mut queue = shared.queue.lock().expect("queue poisoned");
                if queue.len() >= shared.config.queue_cap {
                    let depth = queue.len();
                    drop(queue);
                    shared.metrics.shed.inc();
                    shared.metrics.count_status(503);
                    let retry = retry_after_secs(depth, shared.config.workers);
                    let resp = Response::new(503)
                        .with_header("Retry-After", retry.to_string())
                        .with_json_body(error_body("request queue full"));
                    let mut head = Vec::new();
                    let _ = resp.write_to(&mut stream, false, &mut head);
                } else {
                    // connections accepted before the drain get full
                    // service and hold the drain open until they finish
                    let pre = shared.phase() == PHASE_RUNNING;
                    if pre {
                        shared.pre_pending.fetch_add(1, Ordering::SeqCst);
                    }
                    queue.push_back((stream, tracer().now_ns(), pre));
                    drop(queue);
                    shared.ready.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut ctx = WorkerCtx::new();
    loop {
        let next = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                let phase = shared.phase();
                if phase >= PHASE_ABORTING {
                    // drain deadline blew: drop the backlog unanswered
                    while let Some((stream, _, pre)) = queue.pop_front() {
                        shared.metrics.drain_dropped.inc();
                        if pre {
                            shared.pre_pending.fetch_sub(1, Ordering::SeqCst);
                        }
                        drop(stream);
                    }
                    break None;
                }
                if let Some(entry) = queue.pop_front() {
                    break Some(entry);
                }
                if phase >= PHASE_STOPPING {
                    break None;
                }
                let (q, _) = shared
                    .ready
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("queue poisoned");
                queue = q;
            }
        };
        match next {
            Some((mut s, enqueued_ns, pre)) => {
                handle_connection(shared, &mut s, &mut ctx, enqueued_ns, pre);
                if pre {
                    shared.pre_pending.fetch_sub(1, Ordering::SeqCst);
                }
                if ctx.kill_after_response {
                    // deliberate death *outside* the unwind guard: the
                    // watchdog must notice and respawn this worker
                    ctx.kill_after_response = false;
                    panic!("chaos: worker killed by /debug/chaos");
                }
            }
            None => return,
        }
    }
}

/// Supervises the worker pool and the drain state machine: respawns
/// workers that died (panicked outside the unwind guard), finishes the
/// drain when the last pre-drain connection completes, aborts it when
/// the drain deadline expires, and joins everything on the way out.
fn watchdog_loop(shared: &Arc<Shared>, mut workers: Vec<JoinHandle<()>>) {
    loop {
        let phase = shared.phase();
        if phase >= PHASE_STOPPING {
            shared.ready.notify_all();
            for w in workers.drain(..) {
                let _ = w.join();
            }
            return;
        }
        for slot in workers.iter_mut() {
            if slot.is_finished() {
                let respawned = Arc::clone(shared);
                let fresh = std::thread::spawn(move || worker_loop(&respawned));
                let dead = std::mem::replace(slot, fresh);
                let _ = dead.join();
                shared.metrics.workers_respawned.inc();
            }
        }
        if phase == PHASE_DRAINING {
            if shared.pre_pending.load(Ordering::SeqCst) == 0 {
                shared.advance_phase(PHASE_STOPPING);
                continue;
            }
            if tracer().now_ns() >= shared.drain_cutoff_ns() {
                shared.advance_phase(PHASE_ABORTING);
                continue;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The control plane: health, metrics, introspection, and shutdown.
/// These requests stay servable during a drain (the backlog only
/// shrinks, but observers must not go dark) and are exempt from the
/// request deadline — a health check or a shutdown order must be
/// honored precisely when the daemon is wedged enough to blow budgets.
fn control_plane(req: &Request) -> bool {
    matches!(
        (req.method.as_str(), req.path.as_str()),
        ("GET", "/healthz") | ("GET", "/metrics") | ("GET", "/debug/spans") | ("POST", "/shutdown")
    )
}

/// The deterministic answer for a request whose deadline budget ran
/// out; records how late the doomed request was by the time it was cut.
fn deadline_response(shared: &Shared, deadline: Deadline) -> Response {
    shared.metrics.deadline_exceeded.inc();
    shared
        .metrics
        .lat_deadline
        .record(tracer().now_ns().saturating_sub(deadline.at_ns()));
    Response::new(503)
        .with_header("Retry-After", "1")
        .with_json_body(error_body("deadline exceeded"))
}

/// Serves one connection: up to `keepalive_requests` request/response
/// cycles, closing early when the client asks (`Connection: close` or an
/// HTTP/1.0 request without `keep-alive`), on any transport or framing
/// error, or when the daemon leaves the running phase. Connections
/// accepted during a drain (`pre == false`) get exactly one request of
/// restricted service.
fn handle_connection(
    shared: &Shared,
    stream: &mut TcpStream,
    ctx: &mut WorkerCtx,
    enqueued_ns: u64,
    pre: bool,
) {
    ctx.bufs.reset();
    let budget = if pre {
        shared.config.keepalive_requests.max(1)
    } else {
        1
    };
    // queue wait ended when this worker picked the connection up; it is
    // replayed as a child span of the connection's *first* request
    let mut queue_wait = Some((enqueued_ns, tracer().now_ns().saturating_sub(enqueued_ns)));
    for served in 0..budget {
        let outcome = match read_request(stream, &mut ctx.bufs) {
            Ok(o) => o,
            Err(e) => {
                // transport error: nothing to answer, but a timeout is a
                // misbehaving (slow-loris or never-reading) client
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) {
                    shared.metrics.conn_timeouts.inc();
                }
                return;
            }
        };
        // lifecycle clock starts once the request is fully read (read
        // time is the client's pace, not the daemon's)
        let started_ns = tracer().now_ns();
        let mut req_span: Option<SpanGuard> = None;
        let mut endpoint = Endpoint::Other;
        let (response, keep_alive) = match outcome {
            ReadOutcome::Closed => return,
            ReadOutcome::Malformed(detail) => {
                // framing is broken: the next request boundary is unknowable
                (Response::new(400).with_json_body(error_body(detail)), false)
            }
            ReadOutcome::TooLarge(what) => {
                let status = if what == "request head" { 431 } else { 413 };
                (
                    Response::new(status).with_json_body(error_body(what)),
                    false,
                )
            }
            ReadOutcome::Ok(req) => {
                if served > 0 {
                    shared.metrics.keepalive_requests.inc();
                }
                let seq = shared.req_seq.fetch_add(1, Ordering::Relaxed);
                req_span = Some(tracer().span_with("serve.request", seq));
                if let Some((start, dur)) = queue_wait.take() {
                    tracer().record_at("serve.queue", start, dur, NO_ARG);
                }
                endpoint = endpoint_of(&req);
                // the budget clock started at accept for the first
                // request (queue wait spends budget) and at read-complete
                // for kept-alive follow-ups
                let base_ns = if served == 0 { enqueued_ns } else { started_ns };
                let mut deadline = Deadline::after(base_ns, shared.config.request_deadline_ms);
                if shared.phase() >= PHASE_DRAINING {
                    // in-flight work cannot outlive the drain window
                    deadline = deadline.clamped_to(shared.drain_cutoff_ns());
                }
                let keep = pre
                    && req.wants_keep_alive()
                    && served + 1 < budget
                    && shared.phase() == PHASE_RUNNING;
                if !pre && !control_plane(&req) {
                    (
                        Response::new(503)
                            .with_header("Retry-After", "1")
                            .with_json_body(error_body("draining")),
                        false,
                    )
                } else if deadline.exceeded() && !control_plane(&req) {
                    // starved in the queue past its whole budget — but
                    // only store work is doomed; a health probe or a
                    // shutdown order answers no matter how late
                    (deadline_response(shared, deadline), keep)
                } else {
                    match catch_unwind(AssertUnwindSafe(|| route(shared, &req, ctx, deadline))) {
                        Ok(resp) => (resp, keep),
                        Err(_) => {
                            // contained: stable answer, fresh scratch (the
                            // old one may hold a half-rendered body), and
                            // the worker keeps serving
                            shared.metrics.panics_caught.inc();
                            ctx.render = RenderScratch::new();
                            (
                                Response::new(500)
                                    .with_json_body(error_body("internal error: handler panicked")),
                                false,
                            )
                        }
                    }
                }
            }
        };
        shared.metrics.count_status(response.status());
        let write_failed = {
            let _write_span = tracer().span("serve.write");
            match response.write_to(stream, keep_alive, &mut ctx.bufs.head_out) {
                Ok(()) => false,
                Err(e) => {
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) {
                        shared.metrics.conn_timeouts.inc();
                    }
                    true
                }
            }
        };
        shared
            .metrics
            .record_latency(endpoint, tracer().now_ns().saturating_sub(started_ns));
        drop(req_span);
        if write_failed || !keep_alive || ctx.kill_after_response {
            return;
        }
    }
}

/// Classifies a request path for per-endpoint latency accounting.
fn endpoint_of(req: &Request) -> Endpoint {
    let mut segments = req.path.split('/').filter(|s| !s.is_empty());
    match (
        segments.next(),
        segments.next(),
        segments.next(),
        segments.next(),
    ) {
        (Some("stores"), Some(_), Some("query"), None) => Endpoint::Query,
        (Some("stores"), Some(_), Some("report"), None) => Endpoint::Report,
        _ => Endpoint::Other,
    }
}

fn route(shared: &Shared, req: &Request, ctx: &mut WorkerCtx, deadline: Deadline) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["stores"]) => handle_stores(shared),
        ("GET", ["metrics"]) => handle_metrics(shared),
        ("GET", ["healthz"]) => handle_healthz(shared),
        ("GET", ["debug", "spans"]) => handle_debug_spans(),
        ("POST", ["debug", "chaos"]) => handle_chaos(shared, req, ctx, deadline),
        ("POST", ["shutdown"]) => handle_shutdown(shared, req),
        ("GET", ["stores", name, "info"]) => with_store(shared, name, handle_info),
        ("POST", ["stores", name, "query"]) => with_store(shared, name, |sh, e| {
            handle_query(sh, e, req, &mut ctx.render, deadline)
        }),
        ("POST", ["stores", name, "report"]) => with_store(shared, name, |sh, e| {
            handle_report(sh, e, req, &mut ctx.render, deadline)
        }),
        ("GET", ["stores", _, "query" | "report"]) | ("POST", ["stores"] | ["metrics"]) => {
            Response::new(405).with_json_body(error_body("method not allowed"))
        }
        _ => Response::new(404).with_json_body(error_body("no such endpoint")),
    }
}

/// Surfaces a breaker transition: counters plus a span event visible in
/// `/debug/spans` (the events fire inside a request span, so they show
/// up as children of the request that caused them).
fn note_breaker_event(shared: &Shared, event: BreakerEvent) {
    let now = tracer().now_ns();
    match event {
        BreakerEvent::Tripped { trip } => {
            shared.metrics.breaker_trips.inc();
            tracer().record_at("serve.breaker.trip", now, 0, u64::from(trip));
        }
        BreakerEvent::ProbeArmed => tracer().record_at("serve.breaker.probe", now, 0, NO_ARG),
        BreakerEvent::Closed => tracer().record_at("serve.breaker.close", now, 0, NO_ARG),
    }
}

/// Resolves a store through the catalog and runs `f` on it, gated by
/// the store's circuit breaker. When the catalog reports that the
/// on-disk file changed (reopen) or vanished (eviction), the superseded
/// entry's chunks and rendered results are dropped from both cache
/// tiers before answering.
///
/// Breaker accounting: a `500` answer, an unopenable store, or a panic
/// inside `f` is a hard failure; a `503` (deadline) is neutral; any
/// other status — including salvage 200s with loss accounting — is a
/// success. A missing store (404) carries no health signal at all.
fn with_store(
    shared: &Shared,
    name: &str,
    f: impl FnOnce(&Shared, &StoreEntry) -> Response,
) -> Response {
    let (admission, event) = shared.breakers.admit(name);
    if let Some(ev) = event {
        note_breaker_event(shared, ev);
    }
    if let Admission::Reject { retry_after_secs } = admission {
        shared.metrics.breaker_rejected.inc();
        return Response::new(503)
            .with_header("Retry-After", retry_after_secs.to_string())
            .with_header("X-Pinpoint-Breaker", "open")
            .with_json_body(error_body("store circuit open"));
    }
    let response = match shared.catalog.get(name) {
        Ok(resolved) => {
            if let Some(stale) = resolved.stale_id {
                shared.cache.invalidate_store(stale);
                shared.results.invalidate_store(name);
                shared.metrics.store_reopens.inc();
            }
            match catch_unwind(AssertUnwindSafe(|| f(shared, &resolved.entry))) {
                Ok(resp) => resp,
                Err(payload) => {
                    // the panic still becomes the connection-level 500,
                    // but the breaker must hear about it first
                    if let Some(ev) = shared.breakers.record(name, false) {
                        note_breaker_event(shared, ev);
                    }
                    resume_unwind(payload)
                }
            }
        }
        Err(CatalogError::NotFound { stale_id }) => {
            if let Some(stale) = stale_id {
                shared.cache.invalidate_store(stale);
                shared.results.invalidate_store(name);
                shared.metrics.store_reopens.inc();
            }
            return Response::new(404).with_json_body(error_body("store not found"));
        }
        Err(CatalogError::Open(e)) => {
            Response::new(500).with_json_body(error_body(&format!("cannot open store: {e}")))
        }
    };
    let verdict = match response.status() {
        500 => Some(false),
        503 => None,
        _ => Some(true),
    };
    if let Some(success) = verdict {
        if let Some(ev) = shared.breakers.record(name, success) {
            note_breaker_event(shared, ev);
        }
    }
    response
}

fn handle_stores(shared: &Shared) -> Response {
    let mut s = String::from("{\"stores\":[");
    for (i, name) in shared.catalog.list().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        json::write_str(&mut s, name);
    }
    s.push_str("]}");
    Response::json(s)
}

fn handle_metrics(shared: &Shared) -> Response {
    let depth = shared.queue.lock().expect("queue poisoned").len();
    let (open, half_open) = shared.breakers.open_counts();
    let draining = shared.phase() >= PHASE_DRAINING;
    // dynamic body: must never be ETag'd, conditionally answered, or
    // replayed from the result cache
    Response::json(shared.metrics.to_json(
        &shared.cache.stats(),
        &shared.results.stats(),
        depth,
        open,
        half_open,
        draining,
    ))
    .with_header("Cache-Control", "no-store")
}

/// Readiness: `200 ready` while running, `503 draining` once a drain
/// has started — with the breaker gauges either way, so a balancer (or
/// the chaos harness) can see partial degradation before it routes.
fn handle_healthz(shared: &Shared) -> Response {
    let (open, half_open) = shared.breakers.open_counts();
    let draining = shared.phase() >= PHASE_DRAINING;
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"status\":\"{}\",\"breakers_open\":{open},\"breakers_half_open\":{half_open},\
         \"workers\":{}}}",
        if draining { "draining" } else { "ready" },
        shared.config.workers,
    );
    let resp = if draining {
        Response::new(503)
            .with_header("Retry-After", "1")
            .with_json_body(s)
    } else {
        Response::json(s)
    };
    resp.with_header("Cache-Control", "no-store")
}

/// Replays the last [`DEBUG_SPAN_REQUESTS`] completed request span trees
/// from the tracer's ring buffers, oldest first. The in-flight request
/// serving this endpoint is still open, so it never lists itself.
fn handle_debug_spans() -> Response {
    let snap = tracer().snapshot();
    let mut trees = snap.subtrees("serve.request");
    trees.sort_by_key(|(_, tree)| tree[0].start_ns);
    let skip = trees.len().saturating_sub(DEBUG_SPAN_REQUESTS);
    let mut s = String::from("{\"requests\":[");
    for (i, (track, tree)) in trees[skip..].iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let root = tree[0];
        let _ = write!(
            s,
            "{{\"id\":{},\"track\":{},\"start_ns\":{},\"dur_ns\":{},\"spans\":[",
            root.arg, track, root.start_ns, root.dur_ns
        );
        for (j, rec) in tree.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"depth\":{},\"start_ns\":{},\"dur_ns\":{}",
                rec.name,
                rec.depth - root.depth,
                rec.start_ns,
                rec.dur_ns
            );
            if rec.arg != NO_ARG {
                let _ = write!(s, ",\"arg\":{}", rec.arg);
            }
            s.push('}');
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    Response::json(s).with_header("Cache-Control", "no-store")
}

/// Token-gated fault injection for the chaos harness: `panic` blows up
/// inside the unwind guard (a contained 500), `kill` answers 204 and
/// then dies outside the guard (a watchdog respawn), `stall` naps until
/// the request deadline cuts it loose (a deterministic deadline 503).
fn handle_chaos(
    shared: &Shared,
    req: &Request,
    ctx: &mut WorkerCtx,
    deadline: Deadline,
) -> Response {
    let Some(token) = &shared.config.chaos_token else {
        return Response::new(404).with_json_body(error_body("no such endpoint"));
    };
    if req.header("x-pinpoint-token") != Some(token.as_str()) {
        return Response::new(403).with_json_body(error_body("chaos not authorized"));
    }
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let mode = body
        .as_ref()
        .and_then(|b| b.get("mode"))
        .and_then(Json::as_str)
        .unwrap_or("");
    match mode {
        "panic" => panic!("chaos: injected handler panic"),
        "kill" => {
            ctx.kill_after_response = true;
            Response::new(204)
        }
        "stall" => {
            // a worker wedged in a loop that at least naps: the deadline
            // must cut it loose. Hard 2 s cap so a disabled deadline
            // cannot wedge the worker forever.
            let cap_ns = tracer().now_ns().saturating_add(2_000_000_000);
            while !deadline.exceeded() && tracer().now_ns() < cap_ns {
                std::thread::sleep(Duration::from_millis(5));
            }
            if deadline.exceeded() {
                deadline_response(shared, deadline)
            } else {
                Response::new(204)
            }
        }
        other => {
            Response::new(400).with_json_body(error_body(&format!("unknown chaos mode `{other}`")))
        }
    }
}

/// Starts a graceful drain (idempotent): the listener keeps accepting
/// for observability, pre-drain connections finish under the drain
/// deadline, then the daemon stops.
fn handle_shutdown(shared: &Shared, req: &Request) -> Response {
    let authorized = match &shared.config.shutdown_token {
        Some(token) => req.header("x-pinpoint-token") == Some(token.as_str()),
        None => false,
    };
    if !authorized {
        return Response::new(403).with_json_body(error_body("shutdown not authorized"));
    }
    if shared.phase() == PHASE_RUNNING {
        // stamp the drain clock before the phase flips so every observer
        // of phase ≥ draining sees a valid cutoff
        shared
            .drain_start_ns
            .store(tracer().now_ns(), Ordering::SeqCst);
        shared.advance_phase(PHASE_DRAINING);
    }
    Response::new(204)
}

fn handle_info(_shared: &Shared, entry: &StoreEntry) -> Response {
    let f = entry.reader.footer();
    let mut s = String::from("{\"name\":");
    json::write_str(&mut s, &entry.name);
    let _ = write!(
        s,
        ",\"version\":{},\"chunks\":{},\"events\":{},\"labels\":{},\"markers\":{},\
         \"file_len\":{},\"salvage_rescan\":{}}}",
        entry.reader.version(),
        f.chunks.len(),
        f.total_events,
        f.labels.len(),
        f.markers.len(),
        entry.reader.file_len(),
        entry.reader.salvage_summary().is_some(),
    );
    Response::json(s)
}

/// Parses an optional JSON body; an empty body means "all defaults".
fn parse_body(req: &Request) -> Result<Option<Json>, Response> {
    if req.body.is_empty() {
        return Ok(None);
    }
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::new(400).with_json_body(error_body("body is not UTF-8")))?;
    json::parse(text)
        .map(Some)
        .map_err(|e| Response::new(400).with_json_body(error_body(&format!("bad JSON body: {e}"))))
}

fn num_field(body: Option<&Json>, key: &str) -> Result<Option<f64>, String> {
    match body.and_then(|b| b.get(key)) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(format!("field `{key}` must be a number")),
    }
}

/// Builds a [`Predicate`] from the query body, mirroring the CLI's
/// `query` flags field for field (same names modulo `--`/`_`, same
/// float-to-ns conversions) so the two paths can never drift.
fn predicate_from_body(body: Option<&Json>, entry: &StoreEntry) -> Result<Predicate, String> {
    let mut pred = Predicate::any();
    let t0 = num_field(body, "t0_us")?;
    let t1 = num_field(body, "t1_us")?;
    if t0.is_some() || t1.is_some() {
        let lo = t0.map(|v| (v * 1e3) as u64).unwrap_or(0);
        let hi = t1.map(|v| (v * 1e3) as u64).unwrap_or(u64::MAX);
        pred = pred.with_time_range(lo, hi);
    }
    let b0 = num_field(body, "block_min")?;
    let b1 = num_field(body, "block_max")?;
    if b0.is_some() || b1.is_some() {
        pred = pred.with_block_range(
            b0.map(|v| v as u64).unwrap_or(0),
            b1.map(|v| v as u64).unwrap_or(u64::MAX),
        );
    }
    if let Some(kind) = body.and_then(|b| b.get("kind")).and_then(Json::as_str) {
        pred = pred.with_kind(match kind {
            "malloc" => EventKind::Malloc,
            "free" => EventKind::Free,
            "read" => EventKind::Read,
            "write" => EventKind::Write,
            other => return Err(format!("unknown kind `{other}`")),
        });
    }
    if let Some(cat) = body.and_then(|b| b.get("category")).and_then(Json::as_str) {
        pred = pred.with_category(match cat {
            "input" => Category::InputData,
            "parameters" => Category::Parameters,
            "intermediates" => Category::Intermediates,
            other => return Err(format!("unknown category `{other}`")),
        });
    }
    if let Some(min) = num_field(body, "min_size_bytes")? {
        pred = pred.with_min_size(min as u64);
    }
    match body.and_then(|b| b.get("op_label")) {
        None | Some(Json::Null) => {}
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => {
            pred = pred.with_op_label(*n as u32);
        }
        Some(Json::Str(name)) => {
            let labels = &entry.reader.footer().labels;
            match labels.iter().position(|l| l == name) {
                Some(i) => pred = pred.with_op_label(i as u32),
                None => return Err(format!("unknown op label `{name}`")),
            }
        }
        Some(_) => return Err("field `op_label` must be a name or an id".to_string()),
    }
    Ok(pred)
}

/// Runs a predicate query through the chunk cache, folding per-chunk
/// verdicts in file order — byte-identical to `StoreReader::query` on the
/// same bytes, whatever mix of cache hits serves the chunks. The cancel
/// token is polled before each chunk's decode; a fired token surfaces
/// as [`StoreError::Cancelled`] (which salvage never swallows).
fn cached_query(
    shared: &Shared,
    entry: &StoreEntry,
    pred: &Predicate,
    cancel: &CancelToken,
) -> Result<QueryResult, StoreError> {
    let (candidates, mut stats) = entry.reader.prune(pred);
    let pred = *pred;
    let mapped = pinpoint_parallel::map_ordered(candidates, shared.config.request_threads, |i| {
        if cancel.is_cancelled() {
            return (i, Err(StoreError::Cancelled));
        }
        let _chunk_span = tracer().span_with("serve.chunk", i as u64);
        let res = shared
            .cache
            .get_or_decode(entry.id, i, || entry.reader.decode_chunk(i))
            .map(|batch| {
                (0..batch.len())
                    .map(|k| batch.event(k))
                    .filter(|e| pred.matches_event(e))
                    .collect::<Vec<_>>()
            });
        (i, res)
    });
    let mut events = Vec::new();
    for (i, res) in mapped {
        match res {
            Ok(matched) => {
                stats.chunks_decoded += 1;
                events.extend(matched);
            }
            Err(e) if e.is_corruption() => {
                stats.chunks_skipped += 1;
                stats.events_lost += entry.reader.footer().chunks[i].count;
                if stats.first_error.is_none() {
                    stats.first_error = Some(e.to_string());
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(QueryResult { events, stats })
}

/// Builds the 200 response for a cached (or just-rendered) result:
/// `Arc`-shared body, strong `ETag`, salvage-accounting headers.
fn ok_with_result(r: &CachedResult) -> Response {
    Response::json_shared(Arc::clone(&r.body))
        .with_header("ETag", r.etag.clone())
        .with_header("X-Pinpoint-Chunks-Skipped", r.chunks_skipped.to_string())
        .with_header("X-Pinpoint-Events-Lost", r.events_lost.to_string())
}

/// Answers a conditional request: when the client's `If-None-Match`
/// covers the response's `ETag`, a body-less `304 Not Modified` replaces
/// the 200 — valid even before anything is cached, because the strong
/// tag is a pure function of `(generation, params)`.
fn not_modified(shared: &Shared, req: &Request, tag: &str) -> Option<Response> {
    let inm = req.header("if-none-match")?;
    if !if_none_match(inm, tag) {
        return None;
    }
    shared.metrics.not_modified.inc();
    Some(Response::new(304).with_header("ETag", tag.to_string()))
}

/// Per-request stage stopwatch backing both the `X-Pinpoint-Timing`
/// response header and the replayed `/debug/spans` tree: each finished
/// stage is recorded as a span (when tracing) and kept as a
/// `(label, ns)` pair for the header.
struct StageTimer {
    stages: Vec<(&'static str, u64)>,
    last_ns: u64,
}

impl StageTimer {
    fn start() -> Self {
        StageTimer {
            stages: Vec::with_capacity(4),
            last_ns: tracer().now_ns(),
        }
    }

    /// Closes the current stage under `name` (a `serve.*` span label).
    fn stage(&mut self, name: &'static str) {
        let now = tracer().now_ns();
        let dur = now.saturating_sub(self.last_ns);
        tracer().record_at(name, self.last_ns, dur, NO_ARG);
        self.stages.push((name, dur));
        self.last_ns = now;
    }

    /// `Server-Timing`-style header value: `parse;dur=0.012,
    /// fold;dur=1.302, total;dur=1.314` — durations in milliseconds.
    fn header_value(&self) -> String {
        let mut s = String::new();
        let mut total = 0u64;
        for (name, ns) in &self.stages {
            let label = name.strip_prefix("serve.").unwrap_or(name);
            let _ = write!(
                s,
                "{label};dur={}.{:03}, ",
                ns / 1_000_000,
                (ns % 1_000_000) / 1_000
            );
            total += ns;
        }
        let _ = write!(
            s,
            "total;dur={}.{:03}",
            total / 1_000_000,
            (total % 1_000_000) / 1_000
        );
        s
    }
}

fn handle_query(
    shared: &Shared,
    entry: &StoreEntry,
    req: &Request,
    render: &mut RenderScratch,
    deadline: Deadline,
) -> Response {
    shared.metrics.queries.inc();
    let mut timer = StageTimer::start();
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let pred = match predicate_from_body(body.as_ref(), entry) {
        Ok(p) => p,
        Err(msg) => return Response::new(400).with_json_body(error_body(&msg)),
    };
    let max = match num_field(body.as_ref(), "max") {
        Ok(v) => v.map(|v| v as usize).unwrap_or(20),
        Err(msg) => return Response::new(400).with_json_body(error_body(&msg)),
    };
    // canonical cache key: requests that differ only in body spelling
    // (field order, whitespace, label name vs id) collapse to one entry
    let params = format!("query|{pred:?}|max={max}");
    timer.stage("serve.parse");
    let tag = etag(entry.generation, &params);
    if let Some(resp) = not_modified(shared, req, &tag) {
        timer.stage("serve.lookup");
        return resp.with_header("X-Pinpoint-Timing", timer.header_value());
    }
    if let Some(hit) = shared.results.get(&entry.name, &params, entry.generation) {
        timer.stage("serve.lookup");
        return ok_with_result(&hit).with_header("X-Pinpoint-Timing", timer.header_value());
    }
    timer.stage("serve.lookup");
    // checkpoint before the fold: don't start work that cannot finish
    if deadline.exceeded() {
        return deadline_response(shared, deadline);
    }
    let cancel = deadline.cancel_token();
    match cached_query(shared, entry, &pred, &cancel) {
        Ok(q) => {
            timer.stage("serve.fold");
            let result = CachedResult {
                body: Arc::from(render.query(&q, max).as_bytes()),
                etag: tag,
                chunks_skipped: q.stats.chunks_skipped as u64,
                events_lost: q.stats.events_lost,
            };
            timer.stage("serve.render");
            let resp =
                ok_with_result(&result).with_header("X-Pinpoint-Timing", timer.header_value());
            shared
                .results
                .insert(&entry.name, &params, entry.generation, result);
            resp
        }
        Err(StoreError::Cancelled) => deadline_response(shared, deadline),
        Err(e) => Response::new(500).with_json_body(error_body(&format!("query failed: {e}"))),
    }
}

fn handle_report(
    shared: &Shared,
    entry: &StoreEntry,
    req: &Request,
    render: &mut RenderScratch,
    deadline: Deadline,
) -> Response {
    shared.metrics.reports.inc();
    let mut timer = StageTimer::start();
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let (min_ati_ms, min_size_mb, max) = match (
        num_field(body.as_ref(), "min_ati_ms"),
        num_field(body.as_ref(), "min_size_mb"),
        num_field(body.as_ref(), "max"),
    ) {
        (Ok(a), Ok(s), Ok(m)) => (
            a.unwrap_or(800.0),
            s.unwrap_or(600.0),
            m.map(|v| v as usize).unwrap_or(30),
        ),
        (Err(msg), _, _) | (_, Err(msg), _) | (_, _, Err(msg)) => {
            return Response::new(400).with_json_body(error_body(&msg))
        }
    };
    // same float-to-integer conversion as the CLI's outlier flags
    let criteria = OutlierCriteria {
        min_ati_ns: (min_ati_ms * 1e6) as u64,
        min_size_bytes: (min_size_mb * 1e6) as usize,
    };
    let params = format!(
        "report|ati={}|size={}|max={max}",
        criteria.min_ati_ns, criteria.min_size_bytes
    );
    timer.stage("serve.parse");
    let tag = etag(entry.generation, &params);
    if let Some(resp) = not_modified(shared, req, &tag) {
        timer.stage("serve.lookup");
        return resp.with_header("X-Pinpoint-Timing", timer.header_value());
    }
    if let Some(hit) = shared.results.get(&entry.name, &params, entry.generation) {
        timer.stage("serve.lookup");
        return ok_with_result(&hit).with_header("X-Pinpoint-Timing", timer.header_value());
    }
    timer.stage("serve.lookup");
    if deadline.exceeded() {
        return deadline_response(shared, deadline);
    }
    let cancel = deadline.cancel_token();
    let report = TraceReport::from_chunks(
        &entry.reader.footer().chunks,
        criteria,
        shared.config.request_threads,
        ReadPolicy::Salvage,
        |i, _| {
            cancel.check()?;
            shared
                .cache
                .get_or_decode(entry.id, i, || entry.reader.decode_chunk(i))
        },
    );
    match report {
        Ok(d) => {
            timer.stage("serve.fold");
            let result = CachedResult {
                body: Arc::from(render.report(&d, max).as_bytes()),
                etag: tag,
                chunks_skipped: d.stats.chunks_skipped as u64,
                events_lost: d.stats.events_lost,
            };
            timer.stage("serve.render");
            let resp =
                ok_with_result(&result).with_header("X-Pinpoint-Timing", timer.header_value());
            shared
                .results
                .insert(&entry.name, &params, entry.generation, result);
            resp
        }
        Err(StoreError::Cancelled) => deadline_response(shared, deadline),
        Err(e) => Response::new(500).with_json_body(error_body(&format!("report failed: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_scales_with_depth_and_drain_width() {
        assert_eq!(retry_after_secs(1, 1), 1);
        assert_eq!(retry_after_secs(4, 1), 4);
        assert_eq!(retry_after_secs(4, 4), 1);
        assert_eq!(retry_after_secs(9, 4), 3);
        assert_eq!(retry_after_secs(1000, 1), 8, "clamped");
        assert_eq!(retry_after_secs(0, 0), 1, "degenerate inputs stay sane");
    }

    #[test]
    fn control_plane_is_observability_only() {
        fn req(method: &str, path: &str) -> Request {
            Request {
                method: method.to_string(),
                path: path.to_string(),
                headers: Vec::new(),
                body: Vec::new(),
                http11: true,
            }
        }
        assert!(control_plane(&req("GET", "/healthz")));
        assert!(control_plane(&req("GET", "/metrics")));
        assert!(control_plane(&req("GET", "/debug/spans")));
        assert!(control_plane(&req("POST", "/shutdown")));
        assert!(!control_plane(&req("GET", "/stores")));
        assert!(!control_plane(&req("POST", "/stores/mlp/query")));
        assert!(!control_plane(&req("POST", "/debug/chaos")));
    }
}
