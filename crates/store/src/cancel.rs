//! Cooperative cancellation for long scans.
//!
//! A [`CancelToken`] is a cheap, cloneable predicate ("should this work
//! stop now?") that scan drivers poll at chunk granularity. It exists so
//! a caller with a deadline — the serving tier's per-request budget —
//! can abandon a doomed scan mid-store instead of decoding every
//! remaining chunk for an answer nobody will read. Cancellation is
//! **cooperative**: nothing is interrupted mid-chunk, so a cancelled
//! scan leaves the reader and its scratch pool in a perfectly reusable
//! state.
//!
//! Cancellation surfaces as [`StoreError::Cancelled`], which is
//! deliberately classified as *neither* corruption nor I/O: salvage mode
//! must not swallow it (the store is fine — the caller gave up), and it
//! must not be mistaken for a bad disk.

use crate::error::StoreError;
use std::fmt;
use std::sync::Arc;

/// A shareable "stop now?" predicate polled by scan loops.
///
/// The default token ([`CancelToken::never`]) never fires and costs one
/// `Option` check per poll, so un-deadlined callers pay nothing
/// measurable.
#[derive(Clone, Default)]
pub struct CancelToken {
    check: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
}

impl CancelToken {
    /// A token that never cancels — the default for every reader.
    pub fn never() -> Self {
        CancelToken { check: None }
    }

    /// Wraps an arbitrary predicate; `f` returning `true` means "stop".
    /// The predicate is polled from scan loops (possibly from several
    /// threads) and must be cheap.
    pub fn new(f: impl Fn() -> bool + Send + Sync + 'static) -> Self {
        CancelToken {
            check: Some(Arc::new(f)),
        }
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.check.as_ref().is_some_and(|f| f())
    }

    /// Checkpoint form: `Err(StoreError::Cancelled)` once fired.
    ///
    /// # Errors
    ///
    /// [`StoreError::Cancelled`] when the token has fired.
    pub fn check(&self) -> Result<(), StoreError> {
        if self.is_cancelled() {
            Err(StoreError::Cancelled)
        } else {
            Ok(())
        }
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("armed", &self.check.is_some())
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn never_token_never_fires() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn armed_token_fires_when_the_predicate_does() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = {
            let flag = Arc::clone(&flag);
            CancelToken::new(move || flag.load(Ordering::Relaxed))
        };
        let clone = t.clone();
        assert!(t.check().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the predicate");
        assert!(matches!(t.check(), Err(StoreError::Cancelled)));
    }

    #[test]
    fn cancelled_is_neither_corruption_nor_io() {
        assert!(!StoreError::Cancelled.is_corruption());
    }
}
