//! Batched SoA chunk decoding and the v3 per-chunk adaptive encodings.
//!
//! The original decode path rebuilt one [`MemEvent`] at a time, paying a
//! varint read, a delta add, and a branchy struct push per event per
//! column. This module replaces it with whole-column decoders that fill a
//! reused [`ColumnBatch`] — six flat buffers, one pass per column — so the
//! hot loops are tight, branch-predictable, and allocation-free once the
//! buffers are warm (see [`DecodeScratch`]).
//!
//! Format v3 additionally lets every column pick its own encoding per
//! chunk, chosen at write time by exact cost (encoded size) comparison:
//!
//! | tag | encoding | legal on |
//! |-----|----------|----------|
//! | 0   | the v2-native stream (varints; raw bytes for the meta column) | any column |
//! | 1   | run-length: `run:varint value:varint` pairs | any column |
//! | 2   | bit-packing: `width:u8` then `ceil(n*width/8)` bytes, LSB-first | any column |
//! | 3   | delta-of-delta: zigzag varints of second differences | time only |
//!
//! Ties break toward the lowest tag, so encoding choice is deterministic
//! and the byte stream reproducible. Decoders validate every tag, clamp
//! every pre-allocation to the payload size, and use checked arithmetic on
//! the delta chains — no byte sequence panics or over-allocates.

use crate::crc32::crc32;
use crate::error::StoreError;
use crate::format::{kind_code, kind_from_code, mem_kind_code, mem_kind_from_code, ChunkMeta};
use crate::varint::{read_u64, unzigzag, varint_len, write_u64, zigzag};
use pinpoint_trace::{BlockId, MemEvent};

/// v3 column encoding tag: the column's v2-native stream (plain varints,
/// or one raw byte per event for the meta column).
pub const TAG_PLAIN: u8 = 0;
/// v3 column encoding tag: run-length `run:varint value:varint` pairs.
pub const TAG_RLE: u8 = 1;
/// v3 column encoding tag: fixed-width bit-packing (`width:u8` prefix,
/// then values packed LSB-first).
pub const TAG_PACK: u8 = 2;
/// v3 column encoding tag: delta-of-delta timestamps (zigzag varints of
/// second differences). Legal only on the time column.
pub const TAG_DOD: u8 = 3;

/// Hard ceiling on events per chunk, enforced by the v3 decoder before
/// any column is expanded. RLE and bit-packed columns can legitimately
/// encode far more values than their byte length, so the claimed event
/// count — read from untrusted bytes — needs an absolute bound to keep a
/// hostile count from driving an OOM-sized decode. Writers clamp their
/// chunk granularity to this.
pub const MAX_CHUNK_EVENTS: usize = 1 << 24;

/// The meta-byte flag marking an event that carries an op label.
const HAS_OP_BIT: u8 = 1 << 5;

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

/// One decoded chunk in structure-of-arrays form: six flat columns plus
/// the event count.
///
/// All per-event columns (`time`, `meta`, `block`, `size`, `offset`,
/// `op`) hold exactly [`ColumnBatch::len`] entries after a successful
/// decode; `op` is densified — one entry per event, meaningful only where
/// the meta byte's has-op flag is set. Consumers that want full events
/// call [`ColumnBatch::event`] (a stack-only materialization); hot folds
/// read the column slices directly and skip `MemEvent` entirely.
#[derive(Debug, Default, Clone)]
pub struct ColumnBatch {
    len: usize,
    time: Vec<u64>,
    meta: Vec<u8>,
    block: Vec<u64>,
    size: Vec<u64>,
    offset: Vec<u64>,
    op: Vec<u32>,
    /// Staging buffer for logical column values (RLE/PACK expansion, op
    /// labels before densification). Scratch only — not chunk content.
    vals: Vec<u64>,
}

impl ColumnBatch {
    /// An empty batch with no buffers allocated yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Absolute event timestamps, in nanoseconds.
    pub fn time(&self) -> &[u64] {
        &self.time
    }

    /// Packed meta bytes: event kind in bits 0–1, memory kind in bits
    /// 2–4, has-op flag in bit 5.
    pub fn meta(&self) -> &[u8] {
        &self.meta
    }

    /// Block ids.
    pub fn block(&self) -> &[u64] {
        &self.block
    }

    /// Block sizes in bytes.
    pub fn size(&self) -> &[u64] {
        &self.size
    }

    /// Intra-block byte offsets.
    pub fn offset(&self) -> &[u64] {
        &self.offset
    }

    /// Densified op labels: one entry per event, valid only where the
    /// meta byte's has-op flag is set (0 elsewhere).
    pub fn op(&self) -> &[u32] {
        &self.op
    }

    /// Materializes event `i` on the stack. The 2-bit kind and 3-bit
    /// memory-kind code spaces are total, so this cannot fail on any
    /// decoded batch.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn event(&self, i: usize) -> MemEvent {
        let m = self.meta[i];
        MemEvent {
            time_ns: self.time[i],
            kind: kind_from_code(m & 0b11).expect("2-bit kind codes are total"),
            block: BlockId(self.block[i]),
            size: self.size[i] as usize,
            offset: self.offset[i] as usize,
            mem_kind: mem_kind_from_code((m >> 2) & 0b111)
                .expect("3-bit memory-kind codes are total"),
            op_label: (m & HAS_OP_BIT != 0).then(|| self.op[i]),
        }
    }

    /// Materializes the whole batch as owned events (the compatibility
    /// path for callers that still want `Vec<MemEvent>`).
    pub(crate) fn to_events(&self) -> Vec<MemEvent> {
        (0..self.len).map(|i| self.event(i)).collect()
    }

    /// Heap bytes held by this batch's buffers (capacities, not lengths) —
    /// the charge a cached batch makes against a cache's byte budget.
    pub fn heap_bytes(&self) -> usize {
        self.time.capacity() * 8
            + self.meta.capacity()
            + self.block.capacity() * 8
            + self.size.capacity() * 8
            + self.offset.capacity() * 8
            + self.op.capacity() * 4
            + self.vals.capacity() * 8
    }

    /// Total buffer capacity in elements, across every column — the
    /// realloc-tracking probe used by [`DecodeScratch`].
    fn element_capacity(&self) -> usize {
        self.time.capacity()
            + self.meta.capacity()
            + self.block.capacity()
            + self.size.capacity()
            + self.offset.capacity()
            + self.op.capacity()
            + self.vals.capacity()
    }
}

/// Reusable decode buffers: a [`ColumnBatch`] plus the raw-payload
/// buffer, with buffer growth instrumented.
///
/// A [`crate::StoreReader`] owns a pool of these and threads them through
/// every scan, so steady-state queries and fused-analysis runs perform
/// zero heap allocations per chunk: after the first pass has grown each
/// buffer to the largest chunk's size, [`DecodeScratch::realloc_count`]
/// stays constant — the property the zero-alloc acceptance test asserts
/// via [`crate::StoreReader::decode_reallocs`].
#[derive(Debug, Default)]
pub struct DecodeScratch {
    batch: ColumnBatch,
    raw: Vec<u8>,
    reallocs: u64,
}

impl DecodeScratch {
    /// Fresh scratch with no buffers allocated yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recently decoded batch.
    pub fn batch(&self) -> &ColumnBatch {
        &self.batch
    }

    /// How many times any internal buffer had to grow. Warm scans leave
    /// this unchanged.
    pub fn realloc_count(&self) -> u64 {
        self.reallocs
    }

    /// Consumes the scratch, keeping only the decoded batch — the handoff
    /// from a one-shot decode into a cache that wants an owned
    /// [`ColumnBatch`] without the raw-payload buffer attached.
    pub fn into_batch(self) -> ColumnBatch {
        self.batch
    }

    /// Sizes the raw-payload buffer to `len` bytes and returns it for the
    /// caller to fill (counting a capacity growth if one occurs).
    pub(crate) fn raw_for(&mut self, len: usize) -> &mut Vec<u8> {
        if len > self.raw.capacity() {
            self.reallocs += 1;
        }
        self.raw.resize(len, 0);
        &mut self.raw
    }

    /// Decodes the raw buffer as a chunk payload of the given format
    /// version into the internal batch, verifying the CRC (when
    /// `verify_crc`) and the event count against the index entry.
    ///
    /// # Errors
    ///
    /// [`StoreError::ChecksumMismatch`] / [`StoreError::CountMismatch`]
    /// on index disagreement, or any typed decode error. Never panics.
    pub(crate) fn decode_verified(
        &mut self,
        meta: &ChunkMeta,
        chunk: usize,
        version: u8,
        verify_crc: bool,
    ) -> Result<(), StoreError> {
        if verify_crc {
            let _crc_span = pinpoint_obs::tracer().span_with("store.crc", chunk as u64);
            let got = crc32(&self.raw);
            if got != meta.crc32 {
                return Err(StoreError::ChecksumMismatch {
                    chunk,
                    expected: meta.crc32,
                    got,
                });
            }
        }
        let _decode_span = pinpoint_obs::tracer().span_with("store.decode", chunk as u64);
        let before = self.batch.element_capacity();
        let res = decode_body(&self.raw, version, &mut self.batch);
        if self.batch.element_capacity() > before {
            self.reallocs += 1;
        }
        let consumed = res?;
        if consumed != self.raw.len() {
            return Err(corrupt("trailing bytes after chunk payload"));
        }
        if self.batch.len() as u64 != meta.count {
            return Err(StoreError::CountMismatch {
                chunk,
                indexed: meta.count,
                decoded: self.batch.len() as u64,
            });
        }
        Ok(())
    }
}

/// Reserves room for `want` elements, clamped to the payload byte length:
/// `want` comes from untrusted bytes, and a corrupt huge count must not
/// trigger an OOM-sized allocation before validation catches it. Legit
/// RLE/packed columns can exceed the clamp; they grow organically as
/// validated values arrive.
fn reserve_clamped<T>(v: &mut Vec<T>, want: usize, payload_len: usize) {
    v.clear();
    v.reserve(want.min(payload_len));
}

/// Decodes one column's logical `u64` value stream (`expected` values)
/// from its byte extent, per its encoding tag. `TAG_DOD` bytes are plain
/// varints at this layer — the caller integrates the second differences.
fn decode_u64_values(
    bytes: &[u8],
    (start, len): (usize, usize),
    tag: u8,
    expected: usize,
    out: &mut Vec<u64>,
) -> Result<(), StoreError> {
    reserve_clamped(out, expected, bytes.len());
    let col = &bytes[start..start + len];
    let mut pos = 0usize;
    match tag {
        TAG_PLAIN | TAG_DOD => {
            for _ in 0..expected {
                out.push(read_u64(col, &mut pos)?);
            }
        }
        TAG_RLE => {
            while out.len() < expected {
                let run = read_u64(col, &mut pos)? as usize;
                let v = read_u64(col, &mut pos)?;
                if run == 0 || run > expected - out.len() {
                    return Err(corrupt("run-length column overruns its event count"));
                }
                out.resize(out.len() + run, v);
            }
        }
        TAG_PACK => {
            let Some(&width) = col.first() else {
                return Err(corrupt("bit-packed column is missing its width byte"));
            };
            let width = width as usize;
            if width > 64 {
                return Err(corrupt("bit-packed column width exceeds 64"));
            }
            let data = &col[1..];
            let needed = expected
                .checked_mul(width)
                .map(|b| b.div_ceil(8))
                .ok_or_else(|| corrupt("bit-packed column size overflows"))?;
            if data.len() != needed {
                return Err(corrupt("column length does not match its contents"));
            }
            let mask: u64 = if width == 0 {
                0
            } else {
                u64::MAX >> (64 - width)
            };
            for i in 0..expected {
                let bit = i * width;
                let byte0 = bit / 8;
                let shift = bit % 8;
                // a value spans at most 9 bytes (64 bits + 7-bit shift),
                // so a 16-byte aligned-free load covers it whole; only
                // the last few values fall back to the byte loop
                let acc: u128 = if let Some(win) = data.get(byte0..byte0 + 16) {
                    u128::from_le_bytes(win.try_into().expect("16-byte window"))
                } else {
                    let mut acc: u128 = 0;
                    for (k, &b) in data[byte0..].iter().enumerate() {
                        acc |= u128::from(b) << (8 * k);
                    }
                    acc
                };
                out.push((acc >> shift) as u64 & mask);
            }
            pos = col.len();
        }
        other => return Err(corrupt(format!("unknown column encoding tag {other}"))),
    }
    if pos != col.len() {
        return Err(corrupt("column length does not match its contents"));
    }
    Ok(())
}

/// Integrates a zigzag-delta stream in place into absolute non-negative
/// values, with checked arithmetic (`what` names the column in errors).
fn integrate_deltas(vals: &mut [u64], what: &str) -> Result<(), StoreError> {
    let mut prev: i64 = 0;
    for v in vals.iter_mut() {
        prev = prev
            .checked_add(unzigzag(*v))
            .ok_or_else(|| corrupt(format!("{what} overflows after delta decode")))?;
        if prev < 0 {
            return Err(corrupt(format!("negative {what} after delta decode")));
        }
        *v = prev as u64;
    }
    Ok(())
}

/// Decodes a chunk payload (any format version) into `batch`, returning
/// the number of payload bytes consumed. Tolerates trailing data — the
/// callers that require exact consumption check the returned length.
///
/// # Errors
///
/// A typed [`StoreError`] on truncation, bad tags, column-length
/// mismatch, or overflowing delta chains. Never panics, whatever the
/// input bytes.
pub(crate) fn decode_body(
    bytes: &[u8],
    version: u8,
    batch: &mut ColumnBatch,
) -> Result<usize, StoreError> {
    batch.len = 0;
    let mut pos = 0usize;
    let n = read_u64(bytes, &mut pos)? as usize;
    let mut tags = [TAG_PLAIN; 6];
    if version >= 3 {
        if n > MAX_CHUNK_EVENTS {
            return Err(corrupt(format!(
                "chunk claims {n} events (cap {MAX_CHUNK_EVENTS})"
            )));
        }
        for t in tags.iter_mut() {
            *t = *bytes
                .get(pos)
                .ok_or(StoreError::Truncated("chunk encoding tags"))?;
            pos += 1;
        }
        for (c, &t) in tags.iter().enumerate() {
            if t > TAG_DOD || (t == TAG_DOD && c != 0) {
                return Err(corrupt(format!("column {c} has invalid encoding tag {t}")));
            }
        }
    }
    let mut cols = [(0usize, 0usize); 6]; // (start, len) per column
    for c in cols.iter_mut() {
        let len = read_u64(bytes, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| corrupt("column extends past chunk end"))?;
        *c = (pos, len);
        pos = end;
    }

    // time (column 0): zigzag deltas, possibly second-differenced
    decode_u64_values(bytes, cols[0], tags[0], n, &mut batch.time)?;
    if tags[0] == TAG_DOD {
        let mut d: i64 = 0;
        for v in batch.time.iter_mut() {
            d = d
                .checked_add(unzigzag(*v))
                .ok_or_else(|| corrupt("timestamp delta overflows after decode"))?;
            *v = zigzag(d);
        }
    }
    integrate_deltas(&mut batch.time, "timestamp")?;

    // meta (column 1): one byte per event
    let (meta_start, meta_len) = cols[1];
    if tags[1] == TAG_PLAIN {
        if meta_len != n {
            return Err(corrupt(format!(
                "meta column holds {meta_len} of {n} events"
            )));
        }
        reserve_clamped(&mut batch.meta, n, bytes.len());
        batch
            .meta
            .extend_from_slice(&bytes[meta_start..meta_start + meta_len]);
    } else {
        decode_u64_values(bytes, cols[1], tags[1], n, &mut batch.vals)?;
        reserve_clamped(&mut batch.meta, n, bytes.len());
        for &v in &batch.vals {
            if v > u64::from(u8::MAX) {
                return Err(corrupt("meta column value exceeds one byte"));
            }
            batch.meta.push(v as u8);
        }
    }

    // block (column 2): zigzag deltas
    decode_u64_values(bytes, cols[2], tags[2], n, &mut batch.block)?;
    integrate_deltas(&mut batch.block, "block id")?;

    // size / offset (columns 3, 4): raw values
    decode_u64_values(bytes, cols[3], tags[3], n, &mut batch.size)?;
    decode_u64_values(bytes, cols[4], tags[4], n, &mut batch.offset)?;

    // op (column 5): one value per has-op event, densified to per-event
    let n_op = batch.meta.iter().filter(|&&m| m & HAS_OP_BIT != 0).count();
    decode_u64_values(bytes, cols[5], tags[5], n_op, &mut batch.vals)?;
    reserve_clamped(&mut batch.op, n, bytes.len());
    let mut k = 0usize;
    for &m in &batch.meta {
        if m & HAS_OP_BIT != 0 {
            batch.op.push(batch.vals[k] as u32);
            k += 1;
        } else {
            batch.op.push(0);
        }
    }

    batch.len = n;
    Ok(pos)
}

/// Reads the six per-column encoding tags off a v3 chunk payload without
/// decoding it — the hook the encoding-choice property tests use to
/// assert which encoding the cost rule picked.
///
/// # Errors
///
/// [`StoreError::BadVarint`] / [`StoreError::Truncated`] if the payload
/// is too short to hold its count and tag bytes.
pub fn chunk_encoding_tags(payload: &[u8]) -> Result<[u8; 6], StoreError> {
    let mut pos = 0usize;
    let _n = read_u64(payload, &mut pos)?;
    let mut tags = [0u8; 6];
    for t in tags.iter_mut() {
        *t = *payload
            .get(pos)
            .ok_or(StoreError::Truncated("chunk encoding tags"))?;
        pos += 1;
    }
    Ok(tags)
}

// ---------------------------------------------------------------------
// v3 encoding: per-column cost rule
// ---------------------------------------------------------------------

fn plain_size(values: &[u64]) -> usize {
    values.iter().map(|&v| varint_len(v)).sum()
}

fn rle_size(values: &[u64]) -> usize {
    let mut size = 0usize;
    let mut i = 0usize;
    while i < values.len() {
        let v = values[i];
        let mut run = 1usize;
        while i + run < values.len() && values[i + run] == v {
            run += 1;
        }
        size += varint_len(run as u64) + varint_len(v);
        i += run;
    }
    size
}

fn write_rle(out: &mut Vec<u8>, values: &[u64]) {
    let mut i = 0usize;
    while i < values.len() {
        let v = values[i];
        let mut run = 1usize;
        while i + run < values.len() && values[i + run] == v {
            run += 1;
        }
        write_u64(out, run as u64);
        write_u64(out, v);
        i += run;
    }
}

fn pack_width(values: &[u64]) -> usize {
    values
        .iter()
        .map(|v| 64 - v.leading_zeros() as usize)
        .max()
        .unwrap_or(0)
}

fn pack_size(values: &[u64]) -> usize {
    1 + (values.len() * pack_width(values)).div_ceil(8)
}

fn write_pack(out: &mut Vec<u8>, values: &[u64]) {
    let width = pack_width(values);
    out.push(width as u8);
    if width == 0 {
        return;
    }
    let base = out.len();
    out.resize(base + (values.len() * width).div_ceil(8), 0);
    for (i, &v) in values.iter().enumerate() {
        let bit = i * width;
        let byte0 = base + bit / 8;
        let shift = bit % 8;
        let acc = u128::from(v) << shift;
        for k in 0..(shift + width).div_ceil(8) {
            out[byte0 + k] |= ((acc >> (8 * k)) & 0xff) as u8;
        }
    }
}

/// Encodes one logical value stream with the cheapest encoding (exact
/// encoded-size comparison; ties break toward the lowest tag, keeping the
/// choice — and thus the byte stream — deterministic).
///
/// `plain_is_bytes` marks the meta column, whose native form is one raw
/// byte per value rather than varints. `dod` supplies the zigzagged
/// second-difference stream for the time column when every second
/// difference is representable (the delta-of-delta candidate is skipped
/// otherwise).
fn encode_values_best(values: &[u64], plain_is_bytes: bool, dod: Option<&[u64]>) -> (u8, Vec<u8>) {
    let mut best_tag = TAG_PLAIN;
    let mut best_size = if plain_is_bytes {
        values.len()
    } else {
        plain_size(values)
    };
    if rle_size(values) < best_size {
        best_tag = TAG_RLE;
        best_size = rle_size(values);
    }
    if pack_size(values) < best_size {
        best_tag = TAG_PACK;
        best_size = pack_size(values);
    }
    if let Some(d) = dod {
        if plain_size(d) < best_size {
            best_tag = TAG_DOD;
            best_size = plain_size(d);
        }
    }
    let mut out = Vec::with_capacity(best_size);
    match best_tag {
        TAG_PLAIN if plain_is_bytes => out.extend(values.iter().map(|&v| v as u8)),
        TAG_PLAIN => {
            for &v in values {
                write_u64(&mut out, v);
            }
        }
        TAG_RLE => write_rle(&mut out, values),
        TAG_PACK => write_pack(&mut out, values),
        _ => {
            for &v in dod.expect("DOD chosen only when the stream exists") {
                write_u64(&mut out, v);
            }
        }
    }
    (best_tag, out)
}

/// Encodes one chunk of events as a v3 payload: count, six encoding-tag
/// bytes, then the six columns (each `byte_len:varint bytes`), every
/// column carrying whichever encoding costs fewest bytes for this chunk.
/// Returns the bytes and the chunk's index entry with the v3 zone-map
/// fields populated (`offset` left at 0 for the writer to fill in).
///
/// # Panics
///
/// Panics if `events` is empty — the writer never flushes empty chunks.
pub fn encode_chunk_v3(events: &[MemEvent]) -> (Vec<u8>, ChunkMeta) {
    let mut meta = crate::format::meta_from_events(events);
    let n = events.len();
    let mut time_vals = Vec::with_capacity(n);
    let mut deltas = Vec::with_capacity(n);
    let mut meta_vals = Vec::with_capacity(n);
    let mut block_vals = Vec::with_capacity(n);
    let mut size_vals = Vec::with_capacity(n);
    let mut offset_vals = Vec::with_capacity(n);
    let mut op_vals = Vec::new();
    let mut prev_time = 0i64;
    let mut prev_block = 0i64;
    for e in events {
        let d = e.time_ns as i64 - prev_time;
        prev_time = e.time_ns as i64;
        deltas.push(d);
        time_vals.push(zigzag(d));
        let byte = kind_code(e.kind)
            | (mem_kind_code(e.mem_kind) << 2)
            | (u8::from(e.op_label.is_some()) << 5);
        meta_vals.push(u64::from(byte));
        block_vals.push(zigzag(e.block.0 as i64 - prev_block));
        prev_block = e.block.0 as i64;
        size_vals.push(e.size as u64);
        offset_vals.push(e.offset as u64);
        if let Some(op) = e.op_label {
            op_vals.push(u64::from(op));
        }
    }
    // second differences, eligible only when every one is representable
    let mut dod = Vec::with_capacity(n);
    let mut prev_d = 0i64;
    let mut dod_ok = true;
    for &d in &deltas {
        match d.checked_sub(prev_d) {
            Some(x) => dod.push(zigzag(x)),
            None => {
                dod_ok = false;
                break;
            }
        }
        prev_d = d;
    }
    let cols = [
        encode_values_best(&time_vals, false, dod_ok.then_some(dod.as_slice())),
        encode_values_best(&meta_vals, true, None),
        encode_values_best(&block_vals, false, None),
        encode_values_best(&size_vals, false, None),
        encode_values_best(&offset_vals, false, None),
        encode_values_best(&op_vals, false, None),
    ];
    let body: usize = cols.iter().map(|(_, b)| b.len() + 5).sum();
    let mut out = Vec::with_capacity(body + 16);
    write_u64(&mut out, n as u64);
    for (tag, _) in &cols {
        out.push(*tag);
    }
    for (_, bytes) in &cols {
        write_u64(&mut out, bytes.len() as u64);
        out.extend_from_slice(bytes);
    }
    meta.byte_len = out.len() as u64;
    meta.crc32 = crc32(&out);
    (out, meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::decode_chunk;
    use pinpoint_trace::{EventKind, MemoryKind};

    fn ev(time: u64, block: u64, size: usize, op: Option<u32>) -> MemEvent {
        MemEvent {
            time_ns: time,
            kind: EventKind::Write,
            block: BlockId(block),
            size,
            offset: 0,
            mem_kind: MemoryKind::Activation,
            op_label: op,
        }
    }

    #[test]
    fn pack_round_trips_every_width() {
        for width in 0..=64usize {
            let max = if width == 0 {
                0
            } else if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..17).map(|i| max.wrapping_sub(i) & max).collect();
            let mut bytes = Vec::new();
            write_pack(&mut bytes, &values);
            assert_eq!(bytes.len(), pack_size(&values), "width {width}");
            let mut out = Vec::new();
            decode_u64_values(&bytes, (0, bytes.len()), TAG_PACK, values.len(), &mut out).unwrap();
            assert_eq!(out, values, "width {width}");
        }
    }

    #[test]
    fn rle_round_trips_and_costs_exactly() {
        let values = [5u64, 5, 5, 5, 9, 9, 1_000_000, 5];
        let mut bytes = Vec::new();
        write_rle(&mut bytes, &values);
        assert_eq!(bytes.len(), rle_size(&values));
        let mut out = Vec::new();
        decode_u64_values(&bytes, (0, bytes.len()), TAG_RLE, values.len(), &mut out).unwrap();
        assert_eq!(out, values.to_vec());
    }

    #[test]
    fn rle_decode_rejects_overrun_and_zero_runs() {
        // run of 3 claimed for 2 expected values
        let mut bytes = Vec::new();
        write_u64(&mut bytes, 3);
        write_u64(&mut bytes, 7);
        let mut out = Vec::new();
        assert!(decode_u64_values(&bytes, (0, bytes.len()), TAG_RLE, 2, &mut out).is_err());
        // zero-length run
        let mut bytes = Vec::new();
        write_u64(&mut bytes, 0);
        write_u64(&mut bytes, 7);
        assert!(decode_u64_values(&bytes, (0, bytes.len()), TAG_RLE, 2, &mut out).is_err());
    }

    #[test]
    fn constant_columns_choose_rle_and_jittered_regular_times_choose_dod() {
        // identical meta/size/block values; timestamps near-regular with
        // per-step jitter, so the large deltas never repeat (RLE useless,
        // plain varints 3 bytes each) but second differences stay tiny —
        // exactly the shape delta-of-delta exists for. Perfectly regular
        // timestamps are NOT this case: their delta stream is constant
        // and RLE beats DOD outright.
        let events: Vec<MemEvent> = (0..256u64)
            .map(|i| ev(i * 100_000 + (i * 37) % 11, 4, 64, None))
            .collect();
        let (payload, _) = encode_chunk_v3(&events);
        let tags = chunk_encoding_tags(&payload).unwrap();
        assert_eq!(tags[0], TAG_DOD, "jittered regular timestamps -> DOD");
        assert_eq!(tags[1], TAG_RLE, "constant meta bytes -> RLE");
        assert_eq!(tags[2], TAG_RLE, "constant block ids -> RLE");
        assert_eq!(tags[3], TAG_RLE, "constant sizes -> RLE");

        // and perfectly regular timestamps do pick RLE over DOD
        let regular: Vec<MemEvent> = (0..256).map(|i| ev(i * 1_000, 4, 64, None)).collect();
        let (payload, _) = encode_chunk_v3(&regular);
        let tags = chunk_encoding_tags(&payload).unwrap();
        assert_eq!(tags[0], TAG_RLE, "constant deltas -> RLE");
    }

    #[test]
    fn small_domain_columns_choose_bit_packing() {
        // sizes alternate within a tiny domain: RLE gets no runs, varints
        // cost a byte each, 2-bit packing wins
        let events: Vec<MemEvent> = (0..256)
            .map(|i| {
                let mut e = ev(i * i * 7, i % 3, (i % 4) as usize, None);
                e.offset = (i % 2) as usize;
                e
            })
            .collect();
        let (payload, _) = encode_chunk_v3(&events);
        let tags = chunk_encoding_tags(&payload).unwrap();
        assert_eq!(tags[3], TAG_PACK, "2-bit size domain -> bit-packing");
        assert_eq!(tags[4], TAG_PACK, "1-bit offset domain -> bit-packing");
    }

    #[test]
    fn v3_chunk_round_trips_through_every_encoding_mix() {
        let mixes: Vec<Vec<MemEvent>> = vec![
            // constant everything
            (0..64).map(|_| ev(5, 1, 64, Some(2))).collect(),
            // regular times, varied blocks
            (0..64)
                .map(|i| ev(i * 10, i * 3 % 7, 1 << (i % 20), None))
                .collect(),
            // wild values
            (0..64)
                .map(|i| {
                    ev(
                        i * i * 31 + 7,
                        u64::from(u32::MAX) + i,
                        usize::MAX >> (i % 30),
                        Some(i as u32),
                    )
                })
                .collect(),
            // single event
            vec![ev(0, 0, 0, None)],
        ];
        for (case, events) in mixes.iter().enumerate() {
            let (payload, meta) = encode_chunk_v3(events);
            assert_eq!(meta.count, events.len() as u64, "case {case}");
            let back = decode_chunk(&payload, 3).unwrap();
            assert_eq!(&back, events, "case {case}");
        }
    }

    #[test]
    fn v3_decoder_rejects_hostile_counts_and_tags() {
        let (payload, _) = encode_chunk_v3(&[ev(1, 1, 1, None)]);
        // an absurd event count fails before any column expands
        let mut huge = Vec::new();
        write_u64(&mut huge, (MAX_CHUNK_EVENTS + 1) as u64);
        huge.extend_from_slice(&payload[1..]);
        assert!(decode_chunk(&huge, 3).is_err());
        // unknown tag and misplaced DOD both fail typed
        let mut pos = 0usize;
        read_u64(&payload, &mut pos).unwrap();
        for (slot, bad_tag) in [(0usize, 4u8), (1, TAG_DOD), (5, 200)] {
            let mut b = payload.clone();
            b[pos + slot] = bad_tag;
            assert!(decode_chunk(&b, 3).is_err(), "slot {slot} tag {bad_tag}");
        }
    }

    #[test]
    fn scratch_counts_reallocs_only_while_cold() {
        let events: Vec<MemEvent> = (0..512).map(|i| ev(i * 7, i % 9, 64, Some(1))).collect();
        let (payload, meta) = encode_chunk_v3(&events);
        let mut scratch = DecodeScratch::new();
        scratch.raw_for(payload.len()).copy_from_slice(&payload);
        scratch.decode_verified(&meta, 0, 3, true).unwrap();
        assert_eq!(scratch.batch().len(), events.len());
        let warm = scratch.realloc_count();
        assert!(warm > 0, "cold decode must have grown buffers");
        for _ in 0..5 {
            scratch.raw_for(payload.len()).copy_from_slice(&payload);
            scratch.decode_verified(&meta, 0, 3, true).unwrap();
        }
        assert_eq!(
            scratch.realloc_count(),
            warm,
            "warm decodes allocate nothing"
        );
    }
}
