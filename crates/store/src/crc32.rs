//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`, reflected), the checksum
//! guarding every v2 chunk payload and the v2 footer.
//!
//! The table is built at compile time, so the hot path is the classic
//! one-lookup-per-byte loop with no lazy initialization. The polynomial
//! and bit order match zlib's `crc32()`, which makes externally produced
//! checksums (e.g. `python -c "import zlib; ..."`) directly comparable
//! when debugging a damaged store.

/// 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (IEEE, reflected, init and final XOR `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // standard check value for "123456789" under CRC-32/IEEE
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
