//! Typed errors for the `.ptrc` store.
//!
//! Every decode path returns [`StoreError`] so callers can distinguish "the
//! file is damaged *here*, in *this* way" from plain I/O failures. The
//! variants carry enough detail (chunk ordinal, expected/observed checksum,
//! which structure was truncated) to drive the salvage reader and to print
//! actionable diagnostics from `pinpoint-trace-tool info --verify`.
//!
//! `StoreError` converts losslessly into `io::Error` (the typed value is
//! preserved as the source, so downstream code can downcast), which keeps
//! the analysis layer on `io::Result` without flattening errors to strings.

use std::error::Error;
use std::fmt;
use std::io;

/// Everything that can go wrong reading or writing a `.ptrc` store.
#[derive(Debug)]
pub enum StoreError {
    /// The file does not start with the `PTRC` magic.
    BadMagic,
    /// The version byte is not a format version this build understands.
    UnsupportedVersion(u8),
    /// The file ends before the named structure is complete.
    Truncated(&'static str),
    /// A varint is malformed (runs past the buffer or exceeds 64 bits).
    BadVarint(&'static str),
    /// The v2 footer checksum does not match the stored footer bytes.
    FooterChecksumMismatch {
        /// CRC-32 recorded in the trailer.
        expected: u32,
        /// CRC-32 computed over the footer bytes actually on disk.
        got: u32,
    },
    /// A chunk payload fails its CRC-32 (v2 stores).
    ChecksumMismatch {
        /// Zero-based chunk ordinal within the store.
        chunk: usize,
        /// CRC-32 recorded for the chunk.
        expected: u32,
        /// CRC-32 computed over the payload bytes actually on disk.
        got: u32,
    },
    /// A chunk decoded cleanly but holds a different number of events than
    /// the index claims.
    CountMismatch {
        /// Zero-based chunk ordinal within the store.
        chunk: usize,
        /// Event count recorded in the chunk index.
        indexed: u64,
        /// Event count actually decoded from the payload.
        decoded: u64,
    },
    /// A chunk ordinal is outside the store's chunk index.
    ChunkOutOfRange {
        /// The requested chunk ordinal.
        chunk: usize,
        /// Number of chunks the store actually has.
        chunks: usize,
    },
    /// Structurally malformed content that does not fit a narrower variant.
    Corrupt(String),
    /// The caller's [`CancelToken`](crate::CancelToken) fired mid-scan:
    /// the bytes are fine, the work was abandoned. Deliberately neither
    /// corruption (salvage must not swallow it) nor I/O.
    Cancelled,
    /// An underlying I/O error (distinct from corruption: salvage mode skips
    /// corrupt chunks but still propagates I/O failures).
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not a .ptrc store (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported .ptrc version {v}")
            }
            StoreError::Truncated(what) => write!(f, "truncated {what}"),
            StoreError::BadVarint(what) => write!(f, "malformed varint in {what}"),
            StoreError::FooterChecksumMismatch { expected, got } => write!(
                f,
                "footer checksum mismatch (expected {expected:#010x}, got {got:#010x})"
            ),
            StoreError::ChecksumMismatch {
                chunk,
                expected,
                got,
            } => write!(
                f,
                "chunk {chunk} checksum mismatch (expected {expected:#010x}, got {got:#010x})"
            ),
            StoreError::CountMismatch {
                chunk,
                indexed,
                decoded,
            } => write!(
                f,
                "chunk {chunk} count mismatch (index says {indexed}, decoded {decoded})"
            ),
            StoreError::ChunkOutOfRange { chunk, chunks } => {
                write!(f, "chunk {chunk} out of range (store has {chunks})")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::Cancelled => write!(f, "scan cancelled (deadline exceeded)"),
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<StoreError> for io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other),
        }
    }
}

impl StoreError {
    /// True for damage in the bytes themselves (checksum, truncation,
    /// malformed structure) as opposed to a failure of the underlying
    /// reader/writer — or of the caller's patience. Salvage mode skips
    /// corruption but never I/O errors or cancellation.
    pub fn is_corruption(&self) -> bool {
        !matches!(self, StoreError::Io(_) | StoreError::Cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_round_trip_preserves_the_typed_error() {
        let e = StoreError::ChecksumMismatch {
            chunk: 3,
            expected: 0xDEAD_BEEF,
            got: 0x1234_5678,
        };
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        let inner = io_err
            .get_ref()
            .and_then(|s| s.downcast_ref::<StoreError>())
            .expect("source preserved");
        assert!(matches!(
            inner,
            StoreError::ChecksumMismatch { chunk: 3, .. }
        ));
    }

    #[test]
    fn io_variant_unwraps_to_the_original_error() {
        let e = StoreError::Io(io::Error::new(io::ErrorKind::TimedOut, "slow disk"));
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn corruption_classification() {
        assert!(StoreError::BadMagic.is_corruption());
        assert!(StoreError::Truncated("footer").is_corruption());
        assert!(!StoreError::Io(io::Error::other("x")).is_corruption());
        // a salvage fold must abort on cancellation, never skip-and-account
        assert!(!StoreError::Cancelled.is_corruption());
    }

    #[test]
    fn display_is_informative() {
        let msg = StoreError::ChecksumMismatch {
            chunk: 7,
            expected: 1,
            got: 2,
        }
        .to_string();
        assert!(msg.contains("chunk 7"), "{msg}");
        assert!(msg.contains("0x00000001"), "{msg}");
    }
}
