//! Deterministic fault injection for `.ptrc` robustness tests.
//!
//! Two tools, both driven by the seeded [`Rng64`] so every failure a test
//! provokes is reproducible from its seed alone — no wall clock, no OS
//! randomness:
//!
//! - [`FaultyIo`] wraps any `Read + Write + Seek` transport and injects
//!   the failure modes a real disk or pipe exhibits: short reads and
//!   writes, truncation at a byte offset, and scheduled transient
//!   (`TimedOut`) or permanent I/O errors on exact operation ordinals.
//! - [`flip_bits`] corrupts a byte buffer in place at seeded, distinct
//!   bit positions — the corruption half of the matrix tests, which then
//!   assert the reader never panics and salvage recovers exactly the
//!   CRC-intact chunks.
//!
//! The shim lives in the library (not `#[cfg(test)]`) so integration
//! tests and other crates' tests can drive the writer's retry path and
//! the reader's salvage path through it.

use pinpoint_tensor::rng::Rng64;
use std::collections::BTreeMap;
use std::io::{self, Read, Seek, SeekFrom, Write};

/// How a scheduled fault behaves when its operation ordinal comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fails once with [`io::ErrorKind::TimedOut`] (a retryable,
    /// transient error), then the operation succeeds on retry.
    Transient,
    /// Fails with [`io::ErrorKind::Other`] and keeps failing: every
    /// subsequent read or write on the shim errors too, like a device
    /// that dropped off the bus.
    Permanent,
}

/// A `Read + Write + Seek` wrapper that injects deterministic faults.
///
/// Operations (reads and writes) are numbered from 0 in call order;
/// faults scheduled with [`FaultyIo::fail_op`] trigger when their ordinal
/// comes up. Short I/O and truncation compose with the schedule: an
/// operation that isn't scheduled to fail can still be shortened or
/// cut off at the truncation boundary.
#[derive(Debug)]
pub struct FaultyIo<T> {
    inner: T,
    rng: Rng64,
    short_io: bool,
    truncate_at: Option<u64>,
    fail_ops: BTreeMap<u64, FaultKind>,
    tripped_permanent: bool,
    op: u64,
    offset: u64,
}

impl<T> FaultyIo<T> {
    /// Wraps `inner` with no faults scheduled; `seed` drives the short-I/O
    /// length draws.
    pub fn new(inner: T, seed: u64) -> Self {
        FaultyIo {
            inner,
            rng: Rng64::seed_from_u64(seed),
            short_io: false,
            truncate_at: None,
            fail_ops: BTreeMap::new(),
            tripped_permanent: false,
            op: 0,
            offset: 0,
        }
    }

    /// Makes every read and write transfer a seeded prefix of the
    /// requested bytes (at least one), exercising callers' `read_exact` /
    /// retry loops.
    #[must_use]
    pub fn with_short_io(mut self) -> Self {
        self.short_io = true;
        self
    }

    /// Caps the transport at `len` bytes: reads at or past it hit EOF and
    /// writes past it are silently dropped — a crash mid-stream, as seen
    /// on re-open.
    #[must_use]
    pub fn with_truncation_at(mut self, len: u64) -> Self {
        self.truncate_at = Some(len);
        self
    }

    /// Schedules operation number `op` (0-based, reads and writes share
    /// the counter) to fail with the given kind.
    #[must_use]
    pub fn fail_op(mut self, op: u64, kind: FaultKind) -> Self {
        self.fail_ops.insert(op, kind);
        self
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Shared-by-read-and-write fault gate: returns the error to inject
    /// for the current operation, if any, and advances the op counter.
    fn gate(&mut self) -> io::Result<()> {
        let op = self.op;
        self.op += 1;
        if self.tripped_permanent {
            return Err(io::Error::other("injected permanent fault (tripped)"));
        }
        match self.fail_ops.get(&op).copied() {
            Some(FaultKind::Transient) => {
                self.fail_ops.remove(&op);
                // the retry will arrive as a *new* op number; reschedule
                // nothing — one transient failure per scheduled ordinal
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("injected transient fault at op {op}"),
                ))
            }
            Some(FaultKind::Permanent) => {
                self.tripped_permanent = true;
                Err(io::Error::other(format!(
                    "injected permanent fault at op {op}"
                )))
            }
            None => Ok(()),
        }
    }

    fn short_len(&mut self, requested: usize) -> usize {
        if self.short_io && requested > 1 {
            self.rng.gen_range_usize(1, requested + 1)
        } else {
            requested
        }
    }
}

impl<T: Read> Read for FaultyIo<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.gate()?;
        let mut cap = self.short_len(buf.len());
        if let Some(limit) = self.truncate_at {
            let left = limit.saturating_sub(self.offset);
            cap = cap.min(left as usize);
            if cap == 0 && !buf.is_empty() {
                return Ok(0); // EOF at the truncation boundary
            }
        }
        let n = self.inner.read(&mut buf[..cap])?;
        self.offset += n as u64;
        Ok(n)
    }
}

impl<T: Write> Write for FaultyIo<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.gate()?;
        let cap = self.short_len(buf.len());
        if let Some(limit) = self.truncate_at {
            if self.offset >= limit {
                // the crash already happened; pretend the bytes landed
                self.offset += cap as u64;
                return Ok(cap);
            }
        }
        let n = self.inner.write(&buf[..cap])?;
        self.offset += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.tripped_permanent {
            return Err(io::Error::other("injected permanent fault (tripped)"));
        }
        self.inner.flush()
    }
}

impl<T: Seek> Seek for FaultyIo<T> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let at = self.inner.seek(pos)?;
        self.offset = at;
        Ok(at)
    }
}

/// Flips `flips` distinct bits of `bytes` in place at positions drawn
/// from `seed`, never touching the first `protect_prefix` bytes. Returns
/// the flipped byte offsets (sorted, deduplicated) so tests can map each
/// corruption onto the chunk it hit.
///
/// Distinctness matters: flipping the same bit twice is a no-op, which
/// would silently weaken a fuzz case. Positions are redrawn until unique.
///
/// # Panics
///
/// If the protected prefix leaves fewer distinct bit positions than
/// `flips` (a test-harness misuse, not a runtime condition).
pub fn flip_bits(bytes: &mut [u8], seed: u64, flips: usize, protect_prefix: usize) -> Vec<usize> {
    let usable = bytes.len().saturating_sub(protect_prefix);
    assert!(
        usable * 8 >= flips,
        "cannot place {flips} distinct bit flips in {usable} unprotected bytes"
    );
    let mut rng = Rng64::seed_from_u64(seed);
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < flips {
        let byte = rng.gen_range_usize(protect_prefix, bytes.len());
        let bit = rng.gen_below(8) as usize;
        chosen.insert((byte, bit));
    }
    let mut offsets: Vec<usize> = Vec::with_capacity(flips);
    for &(byte, bit) in &chosen {
        bytes[byte] ^= 1 << bit;
        offsets.push(byte);
    }
    offsets.dedup();
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn short_reads_still_deliver_everything_via_read_exact() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4000).collect();
        let mut io = FaultyIo::new(Cursor::new(data.clone()), 7).with_short_io();
        let mut back = vec![0u8; data.len()];
        io.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn short_writes_still_land_everything_via_write_all() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4000).collect();
        let mut io = FaultyIo::new(Cursor::new(Vec::new()), 7).with_short_io();
        io.write_all(&data).unwrap();
        assert_eq!(io.into_inner().into_inner(), data);
    }

    #[test]
    fn truncation_cuts_reads_at_the_boundary() {
        let data = vec![0xABu8; 100];
        let mut io = FaultyIo::new(Cursor::new(data), 1).with_truncation_at(40);
        let mut back = Vec::new();
        io.read_to_end(&mut back).unwrap();
        assert_eq!(back.len(), 40);
    }

    #[test]
    fn transient_fault_fires_once_then_clears() {
        let mut io = FaultyIo::new(Cursor::new(Vec::new()), 1).fail_op(1, FaultKind::Transient);
        io.write_all(b"ok").unwrap(); // op 0
        let err = io.write(b"boom").unwrap_err(); // op 1
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        io.write_all(b"fine").unwrap(); // ops 2..
        assert_eq!(io.into_inner().into_inner(), b"okfine");
    }

    #[test]
    fn permanent_fault_latches() {
        let mut io = FaultyIo::new(Cursor::new(Vec::new()), 1).fail_op(0, FaultKind::Permanent);
        assert!(io.write(b"x").is_err());
        assert!(io.write(b"x").is_err(), "still broken");
        assert!(io.flush().is_err());
    }

    #[test]
    fn same_seed_same_faults() {
        let data: Vec<u8> = (0..200u8).collect();
        let run = |seed| {
            let mut io = FaultyIo::new(Cursor::new(data.clone()), seed).with_short_io();
            let mut lens = Vec::new();
            let mut buf = [0u8; 32];
            loop {
                let n = io.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                lens.push(n);
            }
            lens
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds, different schedule");
    }

    #[test]
    fn flip_bits_is_deterministic_distinct_and_respects_the_prefix() {
        let orig: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        let mut a = orig.clone();
        let mut b = orig.clone();
        let offs_a = flip_bits(&mut a, 99, 16, 5);
        let offs_b = flip_bits(&mut b, 99, 16, 5);
        assert_eq!(a, b);
        assert_eq!(offs_a, offs_b);
        assert_eq!(a[..5], orig[..5], "protected prefix untouched");
        // 16 distinct bit flips -> exactly 16 bit differences
        let diff_bits: u32 = orig.iter().zip(&a).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert_eq!(diff_bits, 16);
        assert!(offs_a.iter().all(|&o| o >= 5));
    }
}
