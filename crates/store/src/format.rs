//! The `.ptrc` on-disk layout: chunk encoding and the footer index.
//!
//! Format **v2** (current — written by [`crate::StoreWriter`]):
//!
//! ```text
//! file    := header record* footer trailer
//! header  := "PTRC" version:u8                      (version = 2)
//! record  := "PTCK" payload_len:u32le payload_crc:u32le payload
//! payload := count:varint column{6}
//! column  := byte_len:varint bytes
//! footer  := labels markers chunk_index total_events:varint
//! trailer := footer_start:u64le footer_crc:u32le "PTRC"
//! ```
//!
//! Format **v1** (still read transparently) differs only in the framing:
//! records are bare payloads (no per-chunk magic, length, or CRC), chunk
//! index entries carry no checksum, and the trailer is 12 bytes
//! (`footer_start:u64le "PTRC"`, no footer CRC).
//!
//! The six per-chunk columns, in order:
//!
//! 1. **time** — zigzag varint deltas between consecutive event
//!    timestamps (first value is the delta from 0, i.e. absolute);
//! 2. **meta** — one byte per event: event kind (2 bits), memory kind
//!    (3 bits), has-op flag (1 bit);
//! 3. **block** — zigzag varint deltas between consecutive block ids;
//! 4. **size** — plain varints;
//! 5. **offset** — plain varints;
//! 6. **op** — one varint per event whose has-op flag is set.
//!
//! Chunks are self-contained (deltas restart at every chunk), so any chunk
//! decodes without touching its neighbors — the property the predicate-
//! pushdown query path, the parallel decoder, and the v2 salvage scan all
//! rely on.
//!
//! The footer holds the interned label table, the boundary markers, and
//! one [`ChunkMeta`] per chunk recording its byte extent plus the
//! min/max timestamp, min/max block id, an event-kind bitmask, a paper-
//! category bitmask, the largest block size, and (v2) the payload CRC-32 —
//! everything a predicate needs to skip the chunk without decoding it, and
//! everything the reader needs to verify it without the chunk header.
//!
//! All checksums are CRC-32/IEEE (see [`crate::crc32`]). In a v2 file every
//! byte between the 5-byte header and the trailer is covered by exactly one
//! CRC — either a chunk payload's (stored twice: chunk header and index
//! entry) or the footer's (stored in the trailer) — so any single corrupted
//! byte is detectable, and the salvage scan can rebuild the index from the
//! chunk headers alone when the footer itself is damaged.

use crate::crc32::crc32;
use crate::error::StoreError;
use crate::varint::{read_i64, read_u64, write_i64, write_u64};
use pinpoint_trace::{Category, EventKind, Marker, MemEvent, MemoryKind};

/// Leading file magic; also the format-sniffing prefix (`PTRC`).
pub const MAGIC: &[u8; 4] = b"PTRC";
/// Current format version, written right after [`MAGIC`].
pub const VERSION: u8 = 2;
/// The original checksum-less format version; still read transparently.
pub const VERSION_V1: u8 = 1;
/// Per-chunk record magic in v2 files (`PTCK`), the anchor the salvage
/// scan looks for when the footer is gone.
pub const CHUNK_MAGIC: &[u8; 4] = b"PTCK";
/// v2 chunk record header: [`CHUNK_MAGIC`] + payload_len:u32le + crc:u32le.
pub const CHUNK_HEADER_LEN: usize = 12;
/// File header length: [`MAGIC`] plus the version byte.
pub const HEADER_LEN: usize = 5;
/// v1 trailer length: an 8-byte little-endian footer offset plus [`MAGIC`].
pub const TRAILER_LEN: usize = 12;
/// v2 trailer length: footer offset, footer CRC-32, then [`MAGIC`].
pub const TRAILER_LEN_V2: usize = 16;
/// Default number of events per chunk.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

/// Trailer length for a given format version.
pub(crate) fn trailer_len(version: u8) -> usize {
    if version >= 2 {
        TRAILER_LEN_V2
    } else {
        TRAILER_LEN
    }
}

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

pub(crate) fn kind_code(k: EventKind) -> u8 {
    match k {
        EventKind::Malloc => 0,
        EventKind::Free => 1,
        EventKind::Read => 2,
        EventKind::Write => 3,
    }
}

pub(crate) fn kind_from_code(c: u8) -> Option<EventKind> {
    Some(match c {
        0 => EventKind::Malloc,
        1 => EventKind::Free,
        2 => EventKind::Read,
        3 => EventKind::Write,
        _ => return None,
    })
}

pub(crate) fn mem_kind_code(k: MemoryKind) -> u8 {
    match k {
        MemoryKind::Input => 0,
        MemoryKind::Weight => 1,
        MemoryKind::WeightGrad => 2,
        MemoryKind::OptimizerState => 3,
        MemoryKind::Activation => 4,
        MemoryKind::ActivationGrad => 5,
        MemoryKind::Workspace => 6,
        MemoryKind::Other => 7,
    }
}

pub(crate) fn mem_kind_from_code(c: u8) -> Option<MemoryKind> {
    Some(match c {
        0 => MemoryKind::Input,
        1 => MemoryKind::Weight,
        2 => MemoryKind::WeightGrad,
        3 => MemoryKind::OptimizerState,
        4 => MemoryKind::Activation,
        5 => MemoryKind::ActivationGrad,
        6 => MemoryKind::Workspace,
        7 => MemoryKind::Other,
        _ => return None,
    })
}

/// Bit of `c` in a [`ChunkMeta::category_mask`].
pub fn category_bit(c: Category) -> u8 {
    match c {
        Category::InputData => 1,
        Category::Parameters => 1 << 1,
        Category::Intermediates => 1 << 2,
    }
}

/// Bit of `k` in a [`ChunkMeta::kind_mask`].
pub fn kind_bit(k: EventKind) -> u8 {
    1 << kind_code(k)
}

/// Per-chunk index entry: byte extent plus the pruning statistics.
///
/// `offset`/`byte_len` always describe the *payload* (the columnar bytes),
/// not the v2 record header, so the read path is identical across format
/// versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// File offset of the chunk payload's first byte.
    pub offset: u64,
    /// Encoded payload length in bytes.
    pub byte_len: u64,
    /// Events in the chunk.
    pub count: u64,
    /// Smallest event timestamp.
    pub min_time_ns: u64,
    /// Largest event timestamp.
    pub max_time_ns: u64,
    /// Smallest block id.
    pub min_block: u64,
    /// Largest block id.
    pub max_block: u64,
    /// Bitmask of [`EventKind`]s present (see [`kind_bit`]).
    pub kind_mask: u8,
    /// Bitmask of paper [`Category`]s present (see [`category_bit`]).
    pub category_mask: u8,
    /// Largest block size in the chunk, in bytes.
    pub max_size: u64,
    /// CRC-32 of the payload bytes (0 in v1 stores, which predate it).
    pub crc32: u32,
}

/// Computes a chunk's index statistics from its events (`offset`,
/// `byte_len`, and `crc32` are left at 0 for the caller to fill in).
///
/// # Panics
///
/// Panics if `events` is empty — chunks are never empty.
pub(crate) fn meta_from_events(events: &[MemEvent]) -> ChunkMeta {
    assert!(!events.is_empty(), "chunks are never empty");
    let mut meta = ChunkMeta {
        offset: 0,
        byte_len: 0,
        count: events.len() as u64,
        min_time_ns: u64::MAX,
        max_time_ns: 0,
        min_block: u64::MAX,
        max_block: 0,
        kind_mask: 0,
        category_mask: 0,
        max_size: 0,
        crc32: 0,
    };
    for e in events {
        meta.min_time_ns = meta.min_time_ns.min(e.time_ns);
        meta.max_time_ns = meta.max_time_ns.max(e.time_ns);
        meta.min_block = meta.min_block.min(e.block.0);
        meta.max_block = meta.max_block.max(e.block.0);
        meta.kind_mask |= kind_bit(e.kind);
        meta.category_mask |= category_bit(e.mem_kind.category());
        meta.max_size = meta.max_size.max(e.size as u64);
    }
    meta
}

/// Encodes one chunk of events into its columnar payload form, returning
/// the bytes and the chunk's index entry (with `offset` left at 0 for the
/// writer to fill in; `byte_len` and `crc32` describe the payload).
///
/// # Panics
///
/// Panics if `events` is empty — the writer never flushes empty chunks.
pub fn encode_chunk(events: &[MemEvent]) -> (Vec<u8>, ChunkMeta) {
    let mut meta = meta_from_events(events);
    let n = events.len();
    let mut time_col = Vec::with_capacity(n * 2);
    let mut meta_col = Vec::with_capacity(n);
    let mut block_col = Vec::with_capacity(n * 2);
    let mut size_col = Vec::with_capacity(n * 3);
    let mut offset_col = Vec::with_capacity(n * 3);
    let mut op_col = Vec::new();

    let mut prev_time = 0i64;
    let mut prev_block = 0i64;
    for e in events {
        write_i64(&mut time_col, e.time_ns as i64 - prev_time);
        prev_time = e.time_ns as i64;
        let byte = kind_code(e.kind)
            | (mem_kind_code(e.mem_kind) << 2)
            | (u8::from(e.op_label.is_some()) << 5);
        meta_col.push(byte);
        write_i64(&mut block_col, e.block.0 as i64 - prev_block);
        prev_block = e.block.0 as i64;
        write_u64(&mut size_col, e.size as u64);
        write_u64(&mut offset_col, e.offset as u64);
        if let Some(op) = e.op_label {
            write_u64(&mut op_col, u64::from(op));
        }
    }

    let mut out = Vec::with_capacity(
        time_col.len()
            + meta_col.len()
            + block_col.len()
            + size_col.len()
            + offset_col.len()
            + op_col.len()
            + 16,
    );
    write_u64(&mut out, n as u64);
    for col in [
        &time_col,
        &meta_col,
        &block_col,
        &size_col,
        &offset_col,
        &op_col,
    ] {
        write_u64(&mut out, col.len() as u64);
        out.extend_from_slice(col);
    }
    meta.byte_len = out.len() as u64;
    meta.crc32 = crc32(&out);
    (out, meta)
}

/// Builds the 12-byte v2 chunk record header for a payload.
pub(crate) fn chunk_record_header(payload_len: u32, crc: u32) -> [u8; CHUNK_HEADER_LEN] {
    let mut hdr = [0u8; CHUNK_HEADER_LEN];
    hdr[..4].copy_from_slice(CHUNK_MAGIC);
    hdr[4..8].copy_from_slice(&payload_len.to_le_bytes());
    hdr[8..12].copy_from_slice(&crc.to_le_bytes());
    hdr
}

/// Decodes a chunk payload, returning the events and the number of bytes
/// consumed. Used by [`decode_chunk`] (which then requires full
/// consumption) and by the v1 salvage walk (which needs the length to
/// advance to the next chunk).
fn decode_chunk_body(bytes: &[u8]) -> Result<(Vec<MemEvent>, usize), StoreError> {
    let mut pos = 0usize;
    let n = read_u64(bytes, &mut pos)? as usize;
    let mut cols = [(0usize, 0usize); 6]; // (start, len) per column
    for c in cols.iter_mut() {
        let len = read_u64(bytes, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| corrupt("column extends past chunk end"))?;
        *c = (pos, len);
        pos = end;
    }
    let (meta_start, meta_len) = cols[1];
    if meta_len != n {
        return Err(corrupt(format!(
            "meta column holds {meta_len} of {n} events"
        )));
    }
    let mut events = Vec::with_capacity(n);
    let mut time_pos = cols[0].0;
    let mut block_pos = cols[2].0;
    let mut size_pos = cols[3].0;
    let mut offset_pos = cols[4].0;
    let mut op_pos = cols[5].0;
    let mut prev_time = 0i64;
    let mut prev_block = 0i64;
    for i in 0..n {
        let byte = bytes[meta_start + i];
        let kind = kind_from_code(byte & 0b11).ok_or_else(|| corrupt("bad event kind code"))?;
        let mem_kind = mem_kind_from_code((byte >> 2) & 0b111)
            .ok_or_else(|| corrupt("bad memory kind code"))?;
        let has_op = byte & (1 << 5) != 0;
        prev_time += read_i64(bytes, &mut time_pos)?;
        if prev_time < 0 {
            return Err(corrupt("negative timestamp after delta decode"));
        }
        prev_block += read_i64(bytes, &mut block_pos)?;
        if prev_block < 0 {
            return Err(corrupt("negative block id after delta decode"));
        }
        let size = read_u64(bytes, &mut size_pos)?;
        let offset = read_u64(bytes, &mut offset_pos)?;
        let op_label = if has_op {
            Some(read_u64(bytes, &mut op_pos)? as u32)
        } else {
            None
        };
        events.push(MemEvent {
            time_ns: prev_time as u64,
            kind,
            block: pinpoint_trace::BlockId(prev_block as u64),
            size: size as usize,
            offset: offset as usize,
            mem_kind,
            op_label,
        });
    }
    // every column must be consumed exactly: varints bleeding across a
    // column boundary decode to garbage even when they stay in-bounds
    let ends = [
        (time_pos, cols[0]),
        (block_pos, cols[2]),
        (size_pos, cols[3]),
        (offset_pos, cols[4]),
        (op_pos, cols[5]),
    ];
    for (at, (start, len)) in ends {
        if at != start + len {
            return Err(corrupt("column length does not match its contents"));
        }
    }
    Ok((events, pos))
}

/// Decodes one chunk's payload bytes back into events.
///
/// # Errors
///
/// A typed [`StoreError`] on truncation, unknown codes, column-length
/// mismatch, or trailing bytes. Never panics, whatever the input bytes.
pub fn decode_chunk(bytes: &[u8]) -> Result<Vec<MemEvent>, StoreError> {
    let (events, consumed) = decode_chunk_body(bytes)?;
    if consumed != bytes.len() {
        return Err(corrupt("trailing bytes after chunk payload"));
    }
    Ok(events)
}

/// Decodes a chunk payload sitting at the start of `bytes`, tolerating
/// trailing data; returns the events and the payload's byte length. The
/// v1 salvage walk uses this to step chunk-by-chunk without an index.
pub(crate) fn decode_chunk_prefix(bytes: &[u8]) -> Result<(Vec<MemEvent>, usize), StoreError> {
    decode_chunk_body(bytes)
}

/// Decodes a chunk payload and cross-checks it against its index entry:
/// CRC-32 first (when `verify_crc` — i.e. on v2 stores), then the decoded
/// event count. `chunk` is the ordinal used in error detail.
///
/// # Errors
///
/// [`StoreError::ChecksumMismatch`] / [`StoreError::CountMismatch`] on
/// index disagreement, or any [`decode_chunk`] error.
pub fn decode_chunk_verified(
    bytes: &[u8],
    meta: &ChunkMeta,
    chunk: usize,
    verify_crc: bool,
) -> Result<Vec<MemEvent>, StoreError> {
    if verify_crc {
        let got = crc32(bytes);
        if got != meta.crc32 {
            return Err(StoreError::ChecksumMismatch {
                chunk,
                expected: meta.crc32,
                got,
            });
        }
    }
    let events = decode_chunk(bytes)?;
    if events.len() as u64 != meta.count {
        return Err(StoreError::CountMismatch {
            chunk,
            indexed: meta.count,
            decoded: events.len() as u64,
        });
    }
    Ok(events)
}

/// Everything the footer holds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Footer {
    /// Interned op-label table, in index order.
    pub labels: Vec<String>,
    /// Boundary markers, in record order.
    pub markers: Vec<Marker>,
    /// One entry per chunk, in file order.
    pub chunks: Vec<ChunkMeta>,
    /// Total events across all chunks.
    pub total_events: u64,
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(bytes: &[u8], pos: &mut usize) -> Result<String, StoreError> {
    let len = read_u64(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| corrupt("string extends past footer end"))?;
    let s = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|e| corrupt(format!("label is not UTF-8: {e}")))?
        .to_string();
    *pos = end;
    Ok(s)
}

/// Encodes the footer for the given format version (v2 stores a CRC-32
/// per chunk index entry; v1 omits it).
pub fn encode_footer(footer: &Footer, version: u8) -> Vec<u8> {
    let mut out = Vec::new();
    write_u64(&mut out, footer.labels.len() as u64);
    for l in &footer.labels {
        write_str(&mut out, l);
    }
    write_u64(&mut out, footer.markers.len() as u64);
    for m in &footer.markers {
        write_u64(&mut out, m.time_ns);
        write_u64(&mut out, m.event_index as u64);
        write_str(&mut out, &m.label);
    }
    write_u64(&mut out, footer.chunks.len() as u64);
    for c in &footer.chunks {
        write_u64(&mut out, c.offset);
        write_u64(&mut out, c.byte_len);
        write_u64(&mut out, c.count);
        write_u64(&mut out, c.min_time_ns);
        write_u64(&mut out, c.max_time_ns);
        write_u64(&mut out, c.min_block);
        write_u64(&mut out, c.max_block);
        out.push(c.kind_mask);
        out.push(c.category_mask);
        write_u64(&mut out, c.max_size);
        if version >= 2 {
            out.extend_from_slice(&c.crc32.to_le_bytes());
        }
    }
    write_u64(&mut out, footer.total_events);
    out
}

/// Decodes a footer previously written by [`encode_footer`] with the same
/// format version.
///
/// # Errors
///
/// A typed [`StoreError`] on truncation or malformed strings. Never
/// panics, whatever the input bytes.
pub fn decode_footer(bytes: &[u8], version: u8) -> Result<Footer, StoreError> {
    let mut pos = 0usize;
    let n_labels = read_u64(bytes, &mut pos)? as usize;
    let mut labels = Vec::with_capacity(n_labels.min(1 << 20));
    for _ in 0..n_labels {
        labels.push(read_str(bytes, &mut pos)?);
    }
    let n_markers = read_u64(bytes, &mut pos)? as usize;
    let mut markers = Vec::with_capacity(n_markers.min(1 << 20));
    for _ in 0..n_markers {
        let time_ns = read_u64(bytes, &mut pos)?;
        let event_index = read_u64(bytes, &mut pos)? as usize;
        let label = read_str(bytes, &mut pos)?;
        markers.push(Marker {
            time_ns,
            event_index,
            label,
        });
    }
    let n_chunks = read_u64(bytes, &mut pos)? as usize;
    let mut chunks = Vec::with_capacity(n_chunks.min(1 << 20));
    for _ in 0..n_chunks {
        let offset = read_u64(bytes, &mut pos)?;
        let byte_len = read_u64(bytes, &mut pos)?;
        let count = read_u64(bytes, &mut pos)?;
        let min_time_ns = read_u64(bytes, &mut pos)?;
        let max_time_ns = read_u64(bytes, &mut pos)?;
        let min_block = read_u64(bytes, &mut pos)?;
        let max_block = read_u64(bytes, &mut pos)?;
        let kind_mask = *bytes.get(pos).ok_or(StoreError::Truncated("chunk index"))?;
        let category_mask = *bytes
            .get(pos + 1)
            .ok_or(StoreError::Truncated("chunk index"))?;
        pos += 2;
        let max_size = read_u64(bytes, &mut pos)?;
        let crc = if version >= 2 {
            let end = pos
                .checked_add(4)
                .filter(|&e| e <= bytes.len())
                .ok_or(StoreError::Truncated("chunk index"))?;
            let mut le = [0u8; 4];
            le.copy_from_slice(&bytes[pos..end]);
            pos = end;
            u32::from_le_bytes(le)
        } else {
            0
        };
        chunks.push(ChunkMeta {
            offset,
            byte_len,
            count,
            min_time_ns,
            max_time_ns,
            min_block,
            max_block,
            kind_mask,
            category_mask,
            max_size,
            crc32: crc,
        });
    }
    let total_events = read_u64(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after footer"));
    }
    Ok(Footer {
        labels,
        markers,
        chunks,
        total_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::BlockId;

    fn events() -> Vec<MemEvent> {
        vec![
            MemEvent {
                time_ns: 100,
                kind: EventKind::Malloc,
                block: BlockId(7),
                size: 4096,
                offset: 0,
                mem_kind: MemoryKind::Weight,
                op_label: Some(3),
            },
            MemEvent {
                time_ns: 100,
                kind: EventKind::Write,
                block: BlockId(7),
                size: 4096,
                offset: 0,
                mem_kind: MemoryKind::Weight,
                op_label: None,
            },
            MemEvent {
                time_ns: 250,
                kind: EventKind::Read,
                block: BlockId(2),
                size: 64,
                offset: 8192,
                mem_kind: MemoryKind::Activation,
                op_label: Some(0),
            },
        ]
    }

    #[test]
    fn chunk_round_trips_and_meta_summarizes() {
        let evs = events();
        let (bytes, meta) = encode_chunk(&evs);
        assert_eq!(meta.count, 3);
        assert_eq!(meta.min_time_ns, 100);
        assert_eq!(meta.max_time_ns, 250);
        assert_eq!(meta.min_block, 2);
        assert_eq!(meta.max_block, 7);
        assert_eq!(meta.max_size, 4096);
        assert_eq!(
            meta.kind_mask,
            kind_bit(EventKind::Malloc) | kind_bit(EventKind::Write) | kind_bit(EventKind::Read)
        );
        assert_eq!(
            meta.category_mask,
            category_bit(Category::Parameters) | category_bit(Category::Intermediates)
        );
        assert_eq!(meta.crc32, crc32(&bytes));
        assert_eq!(decode_chunk(&bytes).unwrap(), evs);
        assert_eq!(decode_chunk_verified(&bytes, &meta, 0, true).unwrap(), evs);
    }

    #[test]
    fn chunk_decode_rejects_truncation() {
        let (bytes, _) = encode_chunk(&events());
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_chunk(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn chunk_decode_rejects_trailing_bytes_but_prefix_tolerates_them() {
        let (mut bytes, _) = encode_chunk(&events());
        let payload_len = bytes.len();
        bytes.extend_from_slice(&[0xAB, 0xCD]);
        assert!(decode_chunk(&bytes).is_err());
        let (evs, consumed) = decode_chunk_prefix(&bytes).unwrap();
        assert_eq!(evs, events());
        assert_eq!(consumed, payload_len);
    }

    #[test]
    fn verified_decode_catches_a_flipped_bit() {
        let (mut bytes, meta) = encode_chunk(&events());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        match decode_chunk_verified(&bytes, &meta, 5, true) {
            Err(StoreError::ChecksumMismatch { chunk: 5, .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        // without CRC verification the same flip is either a decode error
        // or silently different data — but never a panic
        let _ = decode_chunk_verified(&bytes, &meta, 5, false);
    }

    #[test]
    fn verified_decode_catches_count_disagreement() {
        let (bytes, mut meta) = encode_chunk(&events());
        meta.count += 1;
        meta.crc32 = crc32(&bytes); // keep CRC valid so count check is reached
        match decode_chunk_verified(&bytes, &meta, 2, true) {
            Err(StoreError::CountMismatch {
                chunk: 2,
                indexed: 4,
                decoded: 3,
            }) => {}
            other => panic!("expected count mismatch, got {other:?}"),
        }
    }

    #[test]
    fn meta_from_events_matches_encode_chunk() {
        let evs = events();
        let (_, full) = encode_chunk(&evs);
        let stats = meta_from_events(&evs);
        assert_eq!(stats.count, full.count);
        assert_eq!(stats.min_time_ns, full.min_time_ns);
        assert_eq!(stats.max_time_ns, full.max_time_ns);
        assert_eq!(stats.min_block, full.min_block);
        assert_eq!(stats.max_block, full.max_block);
        assert_eq!(stats.kind_mask, full.kind_mask);
        assert_eq!(stats.category_mask, full.category_mask);
        assert_eq!(stats.max_size, full.max_size);
    }

    #[test]
    fn footer_round_trips_in_both_versions() {
        let f = Footer {
            labels: vec!["matmul".into(), "re\"lu\n".into()],
            markers: vec![Marker {
                time_ns: 9,
                event_index: 2,
                label: "iter:0".into(),
            }],
            chunks: vec![ChunkMeta {
                offset: 5,
                byte_len: 100,
                count: 3,
                min_time_ns: 100,
                max_time_ns: 250,
                min_block: 2,
                max_block: 7,
                kind_mask: 0b1011,
                category_mask: 0b110,
                max_size: 4096,
                crc32: 0xDEAD_BEEF,
            }],
            total_events: 3,
        };
        let v2 = encode_footer(&f, VERSION);
        assert_eq!(decode_footer(&v2, VERSION).unwrap(), f);
        assert!(decode_footer(&v2[..v2.len() - 1], VERSION).is_err());

        let mut f1 = f.clone();
        f1.chunks[0].crc32 = 0; // v1 cannot carry a checksum
        let v1 = encode_footer(&f1, VERSION_V1);
        assert_eq!(decode_footer(&v1, VERSION_V1).unwrap(), f1);
        assert!(v1.len() < v2.len());
    }

    #[test]
    fn chunk_record_header_layout() {
        let hdr = chunk_record_header(0x0102_0304, 0xA1B2_C3D4);
        assert_eq!(&hdr[..4], CHUNK_MAGIC);
        assert_eq!(
            u32::from_le_bytes(hdr[4..8].try_into().unwrap()),
            0x0102_0304
        );
        assert_eq!(
            u32::from_le_bytes(hdr[8..12].try_into().unwrap()),
            0xA1B2_C3D4
        );
    }

    #[test]
    fn all_codes_round_trip() {
        for k in [
            EventKind::Malloc,
            EventKind::Free,
            EventKind::Read,
            EventKind::Write,
        ] {
            assert_eq!(kind_from_code(kind_code(k)), Some(k));
        }
        for m in [
            MemoryKind::Input,
            MemoryKind::Weight,
            MemoryKind::WeightGrad,
            MemoryKind::OptimizerState,
            MemoryKind::Activation,
            MemoryKind::ActivationGrad,
            MemoryKind::Workspace,
            MemoryKind::Other,
        ] {
            assert_eq!(mem_kind_from_code(mem_kind_code(m)), Some(m));
        }
    }
}
