//! The `.ptrc` on-disk layout: chunk encoding and the footer index.
//!
//! Format **v3** (current — written by [`crate::StoreWriter`]):
//!
//! ```text
//! file    := header record* footer trailer
//! header  := "PTRC" version:u8                      (version = 3)
//! record  := "PTCK" payload_len:u32le payload_crc:u32le payload
//! payload := count:varint tag:u8{6} column{6}
//! column  := byte_len:varint bytes
//! footer  := labels markers chunk_index total_events:varint
//! trailer := footer_start:u64le footer_crc:u32le "PTRC"
//! ```
//!
//! Each of the six tag bytes selects that column's encoding for this
//! chunk — plain (the v2-native stream), run-length, fixed-width
//! bit-packing, or (time column only) delta-of-delta — chosen at write
//! time by exact encoded-size comparison. The codecs, the batched SoA
//! decoder that replaces the old event-at-a-time loop, and the reusable
//! [`crate::DecodeScratch`] buffers all live in [`crate::columns`].
//!
//! Format **v2** (still read transparently) has no tag bytes — every
//! column uses the plain encoding — and its chunk index entries stop at
//! the payload CRC, without the v3 zone-map fields. Format **v1** further
//! drops the framing: records are bare payloads (no per-chunk magic,
//! length, or CRC), chunk index entries carry no checksum, and the
//! trailer is 12 bytes (`footer_start:u64le "PTRC"`, no footer CRC).
//!
//! The six per-chunk columns, in order (logical content is identical in
//! every version; only the per-column byte encoding varies in v3):
//!
//! 1. **time** — zigzag deltas between consecutive event timestamps
//!    (first value is the delta from 0, i.e. absolute);
//! 2. **meta** — one byte per event: event kind (2 bits), memory kind
//!    (3 bits), has-op flag (1 bit);
//! 3. **block** — zigzag deltas between consecutive block ids;
//! 4. **size** — plain values;
//! 5. **offset** — plain values;
//! 6. **op** — one value per event whose has-op flag is set.
//!
//! Chunks are self-contained (deltas restart at every chunk), so any chunk
//! decodes without touching its neighbors — the property the predicate-
//! pushdown query path, the parallel decoder, and the v2+ salvage scan all
//! rely on.
//!
//! The footer holds the interned label table, the boundary markers, and
//! one [`ChunkMeta`] per chunk recording its byte extent plus the
//! min/max timestamp, min/max block id, an event-kind bitmask, a paper-
//! category bitmask, the largest block size, (v2+) the payload CRC-32,
//! and (v3) the finer zone maps: min block size, min/max offset, and a
//! 64-bit op-label bitset — everything a predicate needs to skip the
//! chunk without decoding it, and everything the reader needs to verify
//! it without the chunk header.
//!
//! All checksums are CRC-32/IEEE (see [`crate::crc32`]). In a v2+ file
//! every byte between the 5-byte header and the trailer is covered by
//! exactly one CRC — either a chunk payload's (stored twice: chunk header
//! and index entry) or the footer's (stored in the trailer) — so any
//! single corrupted byte is detectable, and the salvage scan can rebuild
//! the index from the chunk headers alone when the footer itself is
//! damaged.

use crate::columns::ColumnBatch;
use crate::crc32::crc32;
use crate::error::StoreError;
use crate::varint::{read_u64, write_i64, write_u64};
use pinpoint_trace::{Category, EventKind, Marker, MemEvent, MemoryKind};

/// Leading file magic; also the format-sniffing prefix (`PTRC`).
pub const MAGIC: &[u8; 4] = b"PTRC";
/// Current format version, written right after [`MAGIC`].
pub const VERSION: u8 = 3;
/// The plain-encoding checksummed format version; still read transparently.
pub const VERSION_V2: u8 = 2;
/// The original checksum-less format version; still read transparently.
pub const VERSION_V1: u8 = 1;
/// Per-chunk record magic in v2 files (`PTCK`), the anchor the salvage
/// scan looks for when the footer is gone.
pub const CHUNK_MAGIC: &[u8; 4] = b"PTCK";
/// v2 chunk record header: [`CHUNK_MAGIC`] + payload_len:u32le + crc:u32le.
pub const CHUNK_HEADER_LEN: usize = 12;
/// File header length: [`MAGIC`] plus the version byte.
pub const HEADER_LEN: usize = 5;
/// v1 trailer length: an 8-byte little-endian footer offset plus [`MAGIC`].
pub const TRAILER_LEN: usize = 12;
/// v2 trailer length: footer offset, footer CRC-32, then [`MAGIC`].
pub const TRAILER_LEN_V2: usize = 16;
/// Default number of events per chunk.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

/// Trailer length for a given format version.
pub(crate) fn trailer_len(version: u8) -> usize {
    if version >= 2 {
        TRAILER_LEN_V2
    } else {
        TRAILER_LEN
    }
}

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

pub(crate) fn kind_code(k: EventKind) -> u8 {
    match k {
        EventKind::Malloc => 0,
        EventKind::Free => 1,
        EventKind::Read => 2,
        EventKind::Write => 3,
    }
}

pub(crate) fn kind_from_code(c: u8) -> Option<EventKind> {
    Some(match c {
        0 => EventKind::Malloc,
        1 => EventKind::Free,
        2 => EventKind::Read,
        3 => EventKind::Write,
        _ => return None,
    })
}

pub(crate) fn mem_kind_code(k: MemoryKind) -> u8 {
    match k {
        MemoryKind::Input => 0,
        MemoryKind::Weight => 1,
        MemoryKind::WeightGrad => 2,
        MemoryKind::OptimizerState => 3,
        MemoryKind::Activation => 4,
        MemoryKind::ActivationGrad => 5,
        MemoryKind::Workspace => 6,
        MemoryKind::Other => 7,
    }
}

pub(crate) fn mem_kind_from_code(c: u8) -> Option<MemoryKind> {
    Some(match c {
        0 => MemoryKind::Input,
        1 => MemoryKind::Weight,
        2 => MemoryKind::WeightGrad,
        3 => MemoryKind::OptimizerState,
        4 => MemoryKind::Activation,
        5 => MemoryKind::ActivationGrad,
        6 => MemoryKind::Workspace,
        7 => MemoryKind::Other,
        _ => return None,
    })
}

/// Bit of `c` in a [`ChunkMeta::category_mask`].
pub fn category_bit(c: Category) -> u8 {
    match c {
        Category::InputData => 1,
        Category::Parameters => 1 << 1,
        Category::Intermediates => 1 << 2,
    }
}

/// Bit of `k` in a [`ChunkMeta::kind_mask`].
pub fn kind_bit(k: EventKind) -> u8 {
    1 << kind_code(k)
}

/// Per-chunk index entry: byte extent plus the pruning statistics.
///
/// `offset`/`byte_len` always describe the *payload* (the columnar bytes),
/// not the v2 record header, so the read path is identical across format
/// versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// File offset of the chunk payload's first byte.
    pub offset: u64,
    /// Encoded payload length in bytes.
    pub byte_len: u64,
    /// Events in the chunk.
    pub count: u64,
    /// Smallest event timestamp.
    pub min_time_ns: u64,
    /// Largest event timestamp.
    pub max_time_ns: u64,
    /// Smallest block id.
    pub min_block: u64,
    /// Largest block id.
    pub max_block: u64,
    /// Bitmask of [`EventKind`]s present (see [`kind_bit`]).
    pub kind_mask: u8,
    /// Bitmask of paper [`Category`]s present (see [`category_bit`]).
    pub category_mask: u8,
    /// Largest block size in the chunk, in bytes.
    pub max_size: u64,
    /// CRC-32 of the payload bytes (0 in v1 stores, which predate it).
    pub crc32: u32,
    /// Smallest block size in the chunk, in bytes (0 in pre-v3 stores,
    /// which predate the finer zone maps — the sound "could be anything"
    /// default).
    pub min_size: u64,
    /// Smallest intra-block offset (0 in pre-v3 stores).
    pub min_offset: u64,
    /// Largest intra-block offset (`u64::MAX` in pre-v3 stores).
    pub max_offset: u64,
    /// Bitset of op labels present: bit `min(label, 63)` is set for every
    /// labeled event, so bit 63 is the catch-all for labels ≥ 63. Events
    /// without a label set no bit. `u64::MAX` in pre-v3 stores (every
    /// label possible).
    pub label_bits: u64,
}

/// Computes a chunk's index statistics from its events (`offset`,
/// `byte_len`, and `crc32` are left at 0 for the caller to fill in).
///
/// # Panics
///
/// Panics if `events` is empty — chunks are never empty.
pub(crate) fn meta_from_events(events: &[MemEvent]) -> ChunkMeta {
    assert!(!events.is_empty(), "chunks are never empty");
    let mut meta = ChunkMeta {
        offset: 0,
        byte_len: 0,
        count: events.len() as u64,
        min_time_ns: u64::MAX,
        max_time_ns: 0,
        min_block: u64::MAX,
        max_block: 0,
        kind_mask: 0,
        category_mask: 0,
        max_size: 0,
        crc32: 0,
        min_size: u64::MAX,
        min_offset: u64::MAX,
        max_offset: 0,
        label_bits: 0,
    };
    for e in events {
        meta.min_time_ns = meta.min_time_ns.min(e.time_ns);
        meta.max_time_ns = meta.max_time_ns.max(e.time_ns);
        meta.min_block = meta.min_block.min(e.block.0);
        meta.max_block = meta.max_block.max(e.block.0);
        meta.kind_mask |= kind_bit(e.kind);
        meta.category_mask |= category_bit(e.mem_kind.category());
        meta.max_size = meta.max_size.max(e.size as u64);
        meta.min_size = meta.min_size.min(e.size as u64);
        meta.min_offset = meta.min_offset.min(e.offset as u64);
        meta.max_offset = meta.max_offset.max(e.offset as u64);
        if let Some(op) = e.op_label {
            meta.label_bits |= 1u64 << u64::from(op).min(63);
        }
    }
    meta
}

/// Encodes one chunk of events into its columnar payload form, returning
/// the bytes and the chunk's index entry (with `offset` left at 0 for the
/// writer to fill in; `byte_len` and `crc32` describe the payload).
///
/// # Panics
///
/// Panics if `events` is empty — the writer never flushes empty chunks.
pub fn encode_chunk(events: &[MemEvent]) -> (Vec<u8>, ChunkMeta) {
    let mut meta = meta_from_events(events);
    let n = events.len();
    let mut time_col = Vec::with_capacity(n * 2);
    let mut meta_col = Vec::with_capacity(n);
    let mut block_col = Vec::with_capacity(n * 2);
    let mut size_col = Vec::with_capacity(n * 3);
    let mut offset_col = Vec::with_capacity(n * 3);
    let mut op_col = Vec::new();

    let mut prev_time = 0i64;
    let mut prev_block = 0i64;
    for e in events {
        write_i64(&mut time_col, e.time_ns as i64 - prev_time);
        prev_time = e.time_ns as i64;
        let byte = kind_code(e.kind)
            | (mem_kind_code(e.mem_kind) << 2)
            | (u8::from(e.op_label.is_some()) << 5);
        meta_col.push(byte);
        write_i64(&mut block_col, e.block.0 as i64 - prev_block);
        prev_block = e.block.0 as i64;
        write_u64(&mut size_col, e.size as u64);
        write_u64(&mut offset_col, e.offset as u64);
        if let Some(op) = e.op_label {
            write_u64(&mut op_col, u64::from(op));
        }
    }

    let mut out = Vec::with_capacity(
        time_col.len()
            + meta_col.len()
            + block_col.len()
            + size_col.len()
            + offset_col.len()
            + op_col.len()
            + 16,
    );
    write_u64(&mut out, n as u64);
    for col in [
        &time_col,
        &meta_col,
        &block_col,
        &size_col,
        &offset_col,
        &op_col,
    ] {
        write_u64(&mut out, col.len() as u64);
        out.extend_from_slice(col);
    }
    meta.byte_len = out.len() as u64;
    meta.crc32 = crc32(&out);
    (out, meta)
}

/// Builds the 12-byte v2 chunk record header for a payload.
pub(crate) fn chunk_record_header(payload_len: u32, crc: u32) -> [u8; CHUNK_HEADER_LEN] {
    let mut hdr = [0u8; CHUNK_HEADER_LEN];
    hdr[..4].copy_from_slice(CHUNK_MAGIC);
    hdr[4..8].copy_from_slice(&payload_len.to_le_bytes());
    hdr[8..12].copy_from_slice(&crc.to_le_bytes());
    hdr
}

/// Decodes one chunk's payload bytes of the given format version back
/// into events.
///
/// This is the compatibility path, allocating a fresh [`ColumnBatch`] and
/// materializing owned events; hot loops go through
/// [`crate::DecodeScratch`] instead and read the columns in place.
///
/// # Errors
///
/// A typed [`StoreError`] on truncation, bad encoding tags, column-length
/// mismatch, or trailing bytes. Never panics, whatever the input bytes.
pub fn decode_chunk(bytes: &[u8], version: u8) -> Result<Vec<MemEvent>, StoreError> {
    let mut batch = ColumnBatch::new();
    let consumed = crate::columns::decode_body(bytes, version, &mut batch)?;
    if consumed != bytes.len() {
        return Err(corrupt("trailing bytes after chunk payload"));
    }
    Ok(batch.to_events())
}

/// Decodes a chunk payload sitting at the start of `bytes`, tolerating
/// trailing data; returns the events and the payload's byte length. The
/// v1 salvage walk uses this to step chunk-by-chunk without an index.
pub(crate) fn decode_chunk_prefix(
    bytes: &[u8],
    version: u8,
) -> Result<(Vec<MemEvent>, usize), StoreError> {
    let mut batch = ColumnBatch::new();
    let consumed = crate::columns::decode_body(bytes, version, &mut batch)?;
    Ok((batch.to_events(), consumed))
}

/// Decodes a chunk payload and cross-checks it against its index entry:
/// CRC-32 first (when `verify_crc` — i.e. on v2+ stores), then the
/// decoded event count. `chunk` is the ordinal used in error detail.
///
/// # Errors
///
/// [`StoreError::ChecksumMismatch`] / [`StoreError::CountMismatch`] on
/// index disagreement, or any [`decode_chunk`] error.
pub fn decode_chunk_verified(
    bytes: &[u8],
    meta: &ChunkMeta,
    chunk: usize,
    verify_crc: bool,
    version: u8,
) -> Result<Vec<MemEvent>, StoreError> {
    if verify_crc {
        let got = crc32(bytes);
        if got != meta.crc32 {
            return Err(StoreError::ChecksumMismatch {
                chunk,
                expected: meta.crc32,
                got,
            });
        }
    }
    let events = decode_chunk(bytes, version)?;
    if events.len() as u64 != meta.count {
        return Err(StoreError::CountMismatch {
            chunk,
            indexed: meta.count,
            decoded: events.len() as u64,
        });
    }
    Ok(events)
}

/// Everything the footer holds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Footer {
    /// Interned op-label table, in index order.
    pub labels: Vec<String>,
    /// Boundary markers, in record order.
    pub markers: Vec<Marker>,
    /// One entry per chunk, in file order.
    pub chunks: Vec<ChunkMeta>,
    /// Total events across all chunks.
    pub total_events: u64,
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(bytes: &[u8], pos: &mut usize) -> Result<String, StoreError> {
    let len = read_u64(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| corrupt("string extends past footer end"))?;
    let s = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|e| corrupt(format!("label is not UTF-8: {e}")))?
        .to_string();
    *pos = end;
    Ok(s)
}

/// Encodes the footer for the given format version (v2+ stores a CRC-32
/// per chunk index entry and v3 adds the finer zone-map fields; v1 omits
/// both).
pub fn encode_footer(footer: &Footer, version: u8) -> Vec<u8> {
    let mut out = Vec::new();
    write_u64(&mut out, footer.labels.len() as u64);
    for l in &footer.labels {
        write_str(&mut out, l);
    }
    write_u64(&mut out, footer.markers.len() as u64);
    for m in &footer.markers {
        write_u64(&mut out, m.time_ns);
        write_u64(&mut out, m.event_index as u64);
        write_str(&mut out, &m.label);
    }
    write_u64(&mut out, footer.chunks.len() as u64);
    for c in &footer.chunks {
        write_u64(&mut out, c.offset);
        write_u64(&mut out, c.byte_len);
        write_u64(&mut out, c.count);
        write_u64(&mut out, c.min_time_ns);
        write_u64(&mut out, c.max_time_ns);
        write_u64(&mut out, c.min_block);
        write_u64(&mut out, c.max_block);
        out.push(c.kind_mask);
        out.push(c.category_mask);
        write_u64(&mut out, c.max_size);
        if version >= 3 {
            write_u64(&mut out, c.min_size);
            write_u64(&mut out, c.min_offset);
            write_u64(&mut out, c.max_offset);
            out.extend_from_slice(&c.label_bits.to_le_bytes());
        }
        if version >= 2 {
            out.extend_from_slice(&c.crc32.to_le_bytes());
        }
    }
    write_u64(&mut out, footer.total_events);
    out
}

/// Decodes a footer previously written by [`encode_footer`] with the same
/// format version.
///
/// # Errors
///
/// A typed [`StoreError`] on truncation or malformed strings. Never
/// panics, whatever the input bytes.
pub fn decode_footer(bytes: &[u8], version: u8) -> Result<Footer, StoreError> {
    let mut pos = 0usize;
    let n_labels = read_u64(bytes, &mut pos)? as usize;
    let mut labels = Vec::with_capacity(n_labels.min(1 << 20));
    for _ in 0..n_labels {
        labels.push(read_str(bytes, &mut pos)?);
    }
    let n_markers = read_u64(bytes, &mut pos)? as usize;
    let mut markers = Vec::with_capacity(n_markers.min(1 << 20));
    for _ in 0..n_markers {
        let time_ns = read_u64(bytes, &mut pos)?;
        let event_index = read_u64(bytes, &mut pos)? as usize;
        let label = read_str(bytes, &mut pos)?;
        markers.push(Marker {
            time_ns,
            event_index,
            label,
        });
    }
    let n_chunks = read_u64(bytes, &mut pos)? as usize;
    let mut chunks = Vec::with_capacity(n_chunks.min(1 << 20));
    for _ in 0..n_chunks {
        let offset = read_u64(bytes, &mut pos)?;
        let byte_len = read_u64(bytes, &mut pos)?;
        let count = read_u64(bytes, &mut pos)?;
        let min_time_ns = read_u64(bytes, &mut pos)?;
        let max_time_ns = read_u64(bytes, &mut pos)?;
        let min_block = read_u64(bytes, &mut pos)?;
        let max_block = read_u64(bytes, &mut pos)?;
        let kind_mask = *bytes.get(pos).ok_or(StoreError::Truncated("chunk index"))?;
        let category_mask = *bytes
            .get(pos + 1)
            .ok_or(StoreError::Truncated("chunk index"))?;
        pos += 2;
        let max_size = read_u64(bytes, &mut pos)?;
        // pre-v3 entries carry no fine zone maps; the defaults below are
        // the sound "could be anything" hull, so pushdown stays exact
        let (min_size, min_offset, max_offset, label_bits) = if version >= 3 {
            let min_size = read_u64(bytes, &mut pos)?;
            let min_offset = read_u64(bytes, &mut pos)?;
            let max_offset = read_u64(bytes, &mut pos)?;
            let end = pos
                .checked_add(8)
                .filter(|&e| e <= bytes.len())
                .ok_or(StoreError::Truncated("chunk index"))?;
            let mut le = [0u8; 8];
            le.copy_from_slice(&bytes[pos..end]);
            pos = end;
            (min_size, min_offset, max_offset, u64::from_le_bytes(le))
        } else {
            (0, 0, u64::MAX, u64::MAX)
        };
        let crc = if version >= 2 {
            let end = pos
                .checked_add(4)
                .filter(|&e| e <= bytes.len())
                .ok_or(StoreError::Truncated("chunk index"))?;
            let mut le = [0u8; 4];
            le.copy_from_slice(&bytes[pos..end]);
            pos = end;
            u32::from_le_bytes(le)
        } else {
            0
        };
        chunks.push(ChunkMeta {
            offset,
            byte_len,
            count,
            min_time_ns,
            max_time_ns,
            min_block,
            max_block,
            kind_mask,
            category_mask,
            max_size,
            crc32: crc,
            min_size,
            min_offset,
            max_offset,
            label_bits,
        });
    }
    let total_events = read_u64(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after footer"));
    }
    Ok(Footer {
        labels,
        markers,
        chunks,
        total_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_trace::BlockId;

    fn events() -> Vec<MemEvent> {
        vec![
            MemEvent {
                time_ns: 100,
                kind: EventKind::Malloc,
                block: BlockId(7),
                size: 4096,
                offset: 0,
                mem_kind: MemoryKind::Weight,
                op_label: Some(3),
            },
            MemEvent {
                time_ns: 100,
                kind: EventKind::Write,
                block: BlockId(7),
                size: 4096,
                offset: 0,
                mem_kind: MemoryKind::Weight,
                op_label: None,
            },
            MemEvent {
                time_ns: 250,
                kind: EventKind::Read,
                block: BlockId(2),
                size: 64,
                offset: 8192,
                mem_kind: MemoryKind::Activation,
                op_label: Some(0),
            },
        ]
    }

    #[test]
    fn chunk_round_trips_and_meta_summarizes() {
        let evs = events();
        let (bytes, meta) = encode_chunk(&evs);
        assert_eq!(meta.count, 3);
        assert_eq!(meta.min_time_ns, 100);
        assert_eq!(meta.max_time_ns, 250);
        assert_eq!(meta.min_block, 2);
        assert_eq!(meta.max_block, 7);
        assert_eq!(meta.max_size, 4096);
        assert_eq!(
            meta.kind_mask,
            kind_bit(EventKind::Malloc) | kind_bit(EventKind::Write) | kind_bit(EventKind::Read)
        );
        assert_eq!(
            meta.category_mask,
            category_bit(Category::Parameters) | category_bit(Category::Intermediates)
        );
        assert_eq!(meta.crc32, crc32(&bytes));
        assert_eq!(meta.min_size, 64);
        assert_eq!(meta.min_offset, 0);
        assert_eq!(meta.max_offset, 8192);
        assert_eq!(meta.label_bits, (1 << 3) | 1);
        assert_eq!(decode_chunk(&bytes, VERSION_V2).unwrap(), evs);
        assert_eq!(
            decode_chunk_verified(&bytes, &meta, 0, true, VERSION_V2).unwrap(),
            evs
        );
    }

    #[test]
    fn chunk_decode_rejects_truncation() {
        let (bytes, _) = encode_chunk(&events());
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_chunk(&bytes[..cut], VERSION_V2).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn chunk_decode_rejects_trailing_bytes_but_prefix_tolerates_them() {
        let (mut bytes, _) = encode_chunk(&events());
        let payload_len = bytes.len();
        bytes.extend_from_slice(&[0xAB, 0xCD]);
        assert!(decode_chunk(&bytes, VERSION_V2).is_err());
        let (evs, consumed) = decode_chunk_prefix(&bytes, VERSION_V2).unwrap();
        assert_eq!(evs, events());
        assert_eq!(consumed, payload_len);
    }

    #[test]
    fn verified_decode_catches_a_flipped_bit() {
        let (mut bytes, meta) = encode_chunk(&events());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        match decode_chunk_verified(&bytes, &meta, 5, true, VERSION_V2) {
            Err(StoreError::ChecksumMismatch { chunk: 5, .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        // without CRC verification the same flip is either a decode error
        // or silently different data — but never a panic
        let _ = decode_chunk_verified(&bytes, &meta, 5, false, VERSION_V2);
    }

    #[test]
    fn verified_decode_catches_count_disagreement() {
        let (bytes, mut meta) = encode_chunk(&events());
        meta.count += 1;
        meta.crc32 = crc32(&bytes); // keep CRC valid so count check is reached
        match decode_chunk_verified(&bytes, &meta, 2, true, VERSION_V2) {
            Err(StoreError::CountMismatch {
                chunk: 2,
                indexed: 4,
                decoded: 3,
            }) => {}
            other => panic!("expected count mismatch, got {other:?}"),
        }
    }

    #[test]
    fn meta_from_events_matches_encode_chunk() {
        let evs = events();
        let (_, full) = encode_chunk(&evs);
        let stats = meta_from_events(&evs);
        assert_eq!(stats.count, full.count);
        assert_eq!(stats.min_time_ns, full.min_time_ns);
        assert_eq!(stats.max_time_ns, full.max_time_ns);
        assert_eq!(stats.min_block, full.min_block);
        assert_eq!(stats.max_block, full.max_block);
        assert_eq!(stats.kind_mask, full.kind_mask);
        assert_eq!(stats.category_mask, full.category_mask);
        assert_eq!(stats.max_size, full.max_size);
    }

    #[test]
    fn footer_round_trips_in_all_versions() {
        let f = Footer {
            labels: vec!["matmul".into(), "re\"lu\n".into()],
            markers: vec![Marker {
                time_ns: 9,
                event_index: 2,
                label: "iter:0".into(),
            }],
            chunks: vec![ChunkMeta {
                offset: 5,
                byte_len: 100,
                count: 3,
                min_time_ns: 100,
                max_time_ns: 250,
                min_block: 2,
                max_block: 7,
                kind_mask: 0b1011,
                category_mask: 0b110,
                max_size: 4096,
                crc32: 0xDEAD_BEEF,
                min_size: 64,
                min_offset: 8,
                max_offset: 8192,
                label_bits: 0b1001,
            }],
            total_events: 3,
        };
        let v3 = encode_footer(&f, VERSION);
        assert_eq!(decode_footer(&v3, VERSION).unwrap(), f);
        assert!(decode_footer(&v3[..v3.len() - 1], VERSION).is_err());

        // pre-v3 footers drop the fine zone maps; decoding restores the
        // sound "could be anything" defaults instead
        let mut f2 = f.clone();
        f2.chunks[0].min_size = 0;
        f2.chunks[0].min_offset = 0;
        f2.chunks[0].max_offset = u64::MAX;
        f2.chunks[0].label_bits = u64::MAX;
        let v2 = encode_footer(&f, VERSION_V2);
        assert_eq!(decode_footer(&v2, VERSION_V2).unwrap(), f2);
        assert!(v2.len() < v3.len());

        let mut f1 = f2.clone();
        f1.chunks[0].crc32 = 0; // v1 cannot carry a checksum
        let v1 = encode_footer(&f1, VERSION_V1);
        assert_eq!(decode_footer(&v1, VERSION_V1).unwrap(), f1);
        assert!(v1.len() < v2.len());
    }

    #[test]
    fn chunk_record_header_layout() {
        let hdr = chunk_record_header(0x0102_0304, 0xA1B2_C3D4);
        assert_eq!(&hdr[..4], CHUNK_MAGIC);
        assert_eq!(
            u32::from_le_bytes(hdr[4..8].try_into().unwrap()),
            0x0102_0304
        );
        assert_eq!(
            u32::from_le_bytes(hdr[8..12].try_into().unwrap()),
            0xA1B2_C3D4
        );
    }

    #[test]
    fn all_codes_round_trip() {
        for k in [
            EventKind::Malloc,
            EventKind::Free,
            EventKind::Read,
            EventKind::Write,
        ] {
            assert_eq!(kind_from_code(kind_code(k)), Some(k));
        }
        for m in [
            MemoryKind::Input,
            MemoryKind::Weight,
            MemoryKind::WeightGrad,
            MemoryKind::OptimizerState,
            MemoryKind::Activation,
            MemoryKind::ActivationGrad,
            MemoryKind::Workspace,
            MemoryKind::Other,
        ] {
            assert_eq!(mem_kind_from_code(mem_kind_code(m)), Some(m));
        }
    }
}
