//! # pinpoint-store
//!
//! A chunked columnar on-disk trace store for pinpoint memory traces.
//!
//! JSON traces are convenient but bulky and must be fully parsed before a
//! single event is usable. The `.ptrc` format fixes both: events live in
//! fixed-size chunks of per-column varint streams (delta-coded timestamps
//! and block ids, a packed kind/memory-kind meta byte, raw size/offset
//! varints, interned op labels), and a footer index records each chunk's
//! byte range, time span, block-id range, kind/category masks, and max
//! block size. That index is what makes queries cheap: a time-range or
//! category filter skips whole chunks without reading their bytes.
//!
//! Three faces:
//!
//! - **Streaming ingest** — [`StoreWriter`] implements
//!   [`pinpoint_trace::TraceSink`], so the profiler can spill events to
//!   disk chunk-by-chunk during a run instead of accumulating an in-memory
//!   [`pinpoint_trace::Trace`].
//! - **Streaming reads** — [`StoreReader`] loads only the footer up
//!   front; [`StoreReader::for_each_event`] decodes one chunk at a time,
//!   and [`StoreReader::query`] prunes chunks with a [`Predicate`] before
//!   fanning surviving chunks out over `pinpoint-parallel` workers
//!   (bit-identical output at every thread count).
//! - **Batch conversion** — [`write_store`] / [`StoreReader::read_trace`]
//!   bridge to and from the in-memory `Trace` for the existing JSON
//!   tooling and analyses.
//!
//! Format v2 adds integrity end to end: every chunk is framed by a
//! `PTCK` record header carrying its byte length and CRC-32, and the
//! footer is covered by its own checksum in the trailer. Writers stream
//! into a temp file and atomically rename on successful
//! [`StoreWriter::finish`], with bounded seeded retry for transient write
//! errors ([`RetryPolicy`]). Readers take a [`ReadPolicy`]: `Strict`
//! (default) fails fast with a typed [`StoreError`], while `Salvage`
//! skips corrupt chunks with exact accounting and rebuilds the index by
//! rescanning when the footer itself is damaged. The [`fault`] module is
//! a deterministic fault-injection harness (seeded bit-flips,
//! truncations, short and failing I/O) used by the corruption-matrix
//! tests to prove all of the above.
//!
//! Format v3 (current) makes the decode hardware-fast: chunks decode
//! column-at-a-time into a reused [`ColumnBatch`] instead of
//! event-at-a-time ([`columns`]), every column picks the cheapest of four
//! encodings per chunk (plain, run-length, bit-packed, delta-of-delta
//! timestamps), the index grows finer zone maps (per-chunk op-label
//! bitset, min/max size and offset) for sharper [`Predicate`] pushdown,
//! and [`DecodeScratch`] buffers recycle through the reader so
//! steady-state scans allocate nothing per chunk
//! ([`StoreReader::decode_reallocs`]). v1 and v2 files remain fully,
//! bit-identically readable.
//!
//! ```
//! use pinpoint_store::{write_store, Predicate, StoreReader};
//! use pinpoint_trace::{BlockId, EventKind, MemoryKind, Trace};
//! use std::io::Cursor;
//!
//! let mut trace = Trace::new();
//! trace.record(10, EventKind::Malloc, BlockId(1), 4096, 0, MemoryKind::Weight, None);
//! trace.record(20, EventKind::Read, BlockId(1), 4096, 0, MemoryKind::Weight, None);
//!
//! let mut bytes = Vec::new();
//! write_store(&trace, &mut bytes).unwrap();
//!
//! let mut reader = StoreReader::new(Cursor::new(bytes)).unwrap();
//! let q = reader.query(&Predicate::any().with_kind(EventKind::Read), 1).unwrap();
//! assert_eq!(q.events.len(), 1);
//! assert_eq!(reader.read_trace().unwrap(), trace);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cancel;
pub mod columns;
pub mod crc32;
pub mod error;
pub mod fault;
pub mod format;
pub mod reader;
pub mod shared;
mod varint;
pub mod writer;

pub use cancel::CancelToken;
pub use columns::{
    chunk_encoding_tags, encode_chunk_v3, ColumnBatch, DecodeScratch, MAX_CHUNK_EVENTS, TAG_DOD,
    TAG_PACK, TAG_PLAIN, TAG_RLE,
};
pub use error::StoreError;
pub use format::{ChunkMeta, Footer, DEFAULT_CHUNK_EVENTS, MAGIC, VERSION, VERSION_V1, VERSION_V2};
pub use reader::{
    ChunkFault, Predicate, QueryResult, QueryStats, ReadPolicy, SalvageSummary, ScrubStats,
    StoreReader,
};
pub use shared::SharedStoreReader;
pub use writer::{
    write_store, write_store_chunked, write_store_chunked_v1, write_store_chunked_v2,
    write_store_file, RetryPolicy, StoreWriter,
};
